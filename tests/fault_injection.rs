//! Fault-injection integration tests: determinism of faulted runs, fault
//! accounting, and structural soundness around stalled and killed threads.

mod common;

use common::{
    build_env, build_env_cfg, check_instance, run_mix_faulted, snapshot, stall_storm_plan, Target,
    MS,
};
use st_machine::FaultPlan;
use st_reclaim::{ReclaimConfig, Scheme};

/// The tentpole guarantee: one seed plus one fault plan is one execution.
/// Two runs must agree on every metric, byte for byte.
#[test]
fn identical_seed_and_plan_reproduce_identical_metrics() {
    let mk = || {
        let env = build_env(Target::List, Scheme::StackTrack, 4, 150, 7);
        let (report, workers) = run_mix_faulted(&env, 4, 2, 300, 7, stall_storm_plan());
        snapshot(&report, &workers)
    };
    let first = mk();
    let second = mk();
    assert_eq!(first, second, "faulted runs must be reproducible");
}

/// A different seed must actually change the execution — otherwise the
/// determinism assertion above would be vacuous.
#[test]
fn different_seed_changes_the_execution() {
    let env_a = build_env(Target::List, Scheme::StackTrack, 4, 150, 7);
    let (report_a, workers_a) = run_mix_faulted(&env_a, 4, 2, 300, 7, stall_storm_plan());
    let env_b = build_env(Target::List, Scheme::StackTrack, 4, 150, 8);
    let (report_b, workers_b) = run_mix_faulted(&env_b, 4, 2, 300, 8, stall_storm_plan());
    assert_ne!(
        snapshot(&report_a, &workers_a),
        snapshot(&report_b, &workers_b)
    );
}

/// Fault accounting: the report carries the stall and its length.
#[test]
fn stall_is_accounted_and_costs_the_victim_ops() {
    // Hazard pointers: peers are unaffected by a stalled thread, so the
    // ops contrast cleanly isolates the fault's cost to the victim.
    let env = build_env(Target::List, Scheme::Hazard, 4, 150, 11);
    let stall_for = MS; // 1 ms of a 2 ms run
    let (report, _workers) = run_mix_faulted(
        &env,
        4,
        2,
        300,
        11,
        FaultPlan::default().stall(3, MS / 2, stall_for),
    );
    assert_eq!(report.faults.stalls, 1);
    assert!(report.faults.stall_cycles >= stall_for);
    assert_eq!(report.faults.kills, 0);

    // The victim loses half its run time; every peer does not.
    let victim_ops = report.threads[3].ops;
    let peer_ops = report.threads[0].ops;
    assert!(
        victim_ops < peer_ops * 2 / 3,
        "stalled thread should complete far fewer ops ({victim_ops} vs {peer_ops})"
    );
}

/// A killed thread disappears mid-run; the structure must stay sound and
/// the survivors must keep completing operations. Run under every scheme
/// that supports the list.
#[test]
fn killed_thread_leaves_structure_sound() {
    for scheme in [
        Scheme::None,
        Scheme::Hazard,
        Scheme::Epoch,
        Scheme::StackTrack,
        Scheme::Dta,
    ] {
        let env = build_env(Target::List, scheme, 4, 150, 13);
        let (report, _workers) =
            run_mix_faulted(&env, 4, 2, 300, 13, FaultPlan::default().kill(1, MS / 2));
        assert_eq!(report.faults.kills, 1, "{scheme:?}");
        assert!(
            report.threads[1].final_time <= MS + MS / 10,
            "{scheme:?}: killed thread must stop accruing time"
        );
        let survivors: u64 = [0, 2, 3].iter().map(|&t| report.threads[t].ops).sum();
        assert!(survivors > 0, "{scheme:?}: survivors made no progress");
        check_instance(&env);
    }
}

/// Epoch recovery after a transient stall: while one thread is parked
/// mid-operation every reclaimer burns its wait budget, abandons the
/// snapshot, and hoards limbo. Once the straggler resumes, each reclaimer
/// must re-arm from a *fresh* deadline (not the expired one) and drain —
/// a stale `give_up_at` would make every post-resume wait give up
/// immediately and the hoard would never shrink.
#[test]
fn epoch_garbage_drains_after_a_stall_resumes() {
    // Guard slots come from the structures' declared requirements, via
    // `guard_requirement` in `build_env_cfg`.
    let mut rc = ReclaimConfig::default();
    // A quarter-millisecond budget: cheap to burn during the stall, and
    // several re-arm opportunities fit in the post-resume window.
    rc.epoch_wait_budget = MS / 4;
    let plan = |stall_for| FaultPlan::default().stall(0, MS / 2, stall_for);
    let garbage = |workers: &[common::MixWorker]| -> u64 {
        workers
            .iter()
            .map(|w| w.executor().outstanding_garbage())
            .sum()
    };

    // Reference: the straggler never comes back, so limbo hoards to the end.
    let env = build_env_cfg(Target::List, Scheme::Epoch, 4, 150, 19, rc.clone());
    let (_report, workers) = run_mix_faulted(&env, 4, 4, 300, 19, plan(10 * MS));
    let hoarded = garbage(&workers);
    assert!(hoarded > 0, "a run-long stall must hoard limbo garbage");

    // Same seed, but the stall ends mid-run: 2.5 virtual ms of recovery.
    let env = build_env_cfg(Target::List, Scheme::Epoch, 4, 150, 19, rc);
    let (report, workers) = run_mix_faulted(&env, 4, 4, 300, 19, plan(MS));
    assert_eq!(report.faults.stalls, 1);
    let drained = garbage(&workers);
    assert!(
        drained < hoarded / 5,
        "reclaimers must drain after the straggler resumes \
         (post-resume garbage {drained} vs hoarded {hoarded})"
    );
    check_instance(&env);
}

/// A preemption storm on one context slows its tenants but the run stays
/// deterministic and sound.
#[test]
fn preemption_storm_costs_throughput() {
    let quiet = build_env(Target::List, Scheme::StackTrack, 4, 150, 17);
    let (report_quiet, _w) = run_mix_faulted(&quiet, 4, 2, 300, 17, FaultPlan::default());

    let stormy = build_env(Target::List, Scheme::StackTrack, 4, 150, 17);
    let (report_storm, _w) = run_mix_faulted(
        &stormy,
        4,
        2,
        300,
        17,
        // Storm context 0 for the middle half of the run.
        FaultPlan::default().storm(0, MS / 2, MS),
    );
    assert!(report_storm.faults.storm_switches > 0);
    assert!(
        report_storm.total_ops() < report_quiet.total_ops(),
        "storm should cost throughput ({} vs {})",
        report_storm.total_ops(),
        report_quiet.total_ops()
    );
    check_instance(&stormy);
}
