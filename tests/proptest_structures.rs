//! Property tests: random operation sequences against sequential oracles,
//! for every structure under every scheme.

use proptest::prelude::*;
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_reclaim::{ReclaimConfig, Scheme, SchemeFactory};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::{hash, list, queue, skiplist};
use stacktrack::StConfig;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum SetOp {
    Insert(u64),
    Delete(u64),
    Contains(u64),
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (1u64..64).prop_map(SetOp::Insert),
        (1u64..64).prop_map(SetOp::Delete),
        (1u64..64).prop_map(SetOp::Contains),
    ]
}

fn scheme_under_test() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::None),
        Just(Scheme::Epoch),
        Just(Scheme::Hazard),
        Just(Scheme::Dta),
        Just(Scheme::RefCount),
        Just(Scheme::StackTrack),
    ]
}

fn env(scheme: Scheme) -> (Arc<Heap>, SchemeFactory, Cpu) {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
    let mut rc = ReclaimConfig::default();
    rc.hazard_slots = 2 * skiplist::MAX_LEVEL + 2;
    let factory = SchemeFactory::new(scheme, engine, 1, rc, StConfig::default());
    let topo = Topology::haswell();
    let cpu = Cpu::new(
        0,
        HwContext::new(&topo, 0),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        77,
    );
    (heap, factory, cpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn list_matches_btreeset(scheme in scheme_under_test(), ops in prop::collection::vec(set_op(), 1..80)) {
        let (heap, factory, mut cpu) = env(scheme);
        let shape = list::ListShape::new_untimed(&heap);
        let mut th = factory.thread(0);
        let mut oracle = BTreeSet::new();

        for op in &ops {
            match *op {
                SetOp::Insert(k) => {
                    let mut body = list::insert_body(shape, k);
                    let got = th.run_op(&mut cpu, 1, list::LIST_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.insert(k));
                }
                SetOp::Delete(k) => {
                    let mut body = list::delete_body(shape, k);
                    let got = th.run_op(&mut cpu, 2, list::LIST_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.remove(&k));
                }
                SetOp::Contains(k) => {
                    let mut body = list::contains_body(shape, k);
                    let got = th.run_op(&mut cpu, 0, list::LIST_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.contains(&k));
                }
            }
        }
        prop_assert_eq!(shape.collect_keys_untimed(&heap), oracle.iter().copied().collect::<Vec<_>>());
        shape.check_invariants_untimed(&heap);
    }

    #[test]
    fn skiplist_matches_btreeset(scheme in scheme_under_test(), ops in prop::collection::vec(set_op(), 1..60)) {
        // DTA is list-only by design; substitute the leak-free baseline.
        let scheme = if scheme == Scheme::Dta { Scheme::Epoch } else { scheme };
        let (heap, factory, mut cpu) = env(scheme);
        let shape = skiplist::SkipShape::new_untimed(&heap);
        let mut th = factory.thread(0);
        let mut oracle = BTreeSet::new();

        for op in &ops {
            match *op {
                SetOp::Insert(k) => {
                    let mut body = skiplist::insert_body(shape, k);
                    let got = th.run_op(&mut cpu, 1, skiplist::SKIP_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.insert(k));
                }
                SetOp::Delete(k) => {
                    let mut body = skiplist::delete_body(shape, k);
                    let got = th.run_op(&mut cpu, 2, skiplist::SKIP_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.remove(&k));
                }
                SetOp::Contains(k) => {
                    let mut body = skiplist::contains_body(shape, k);
                    let got = th.run_op(&mut cpu, 0, skiplist::SKIP_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.contains(&k));
                }
            }
        }
        prop_assert_eq!(shape.collect_keys_untimed(&heap), oracle.iter().copied().collect::<Vec<_>>());
        shape.check_invariants_untimed(&heap);
    }

    #[test]
    fn hash_matches_btreeset(scheme in scheme_under_test(), ops in prop::collection::vec(set_op(), 1..80)) {
        let scheme = if scheme == Scheme::Dta { Scheme::Epoch } else { scheme };
        let (heap, factory, mut cpu) = env(scheme);
        let shape = hash::HashShape::new_untimed(&heap, 8);
        let mut th = factory.thread(0);
        let mut oracle = BTreeSet::new();

        for op in &ops {
            match *op {
                SetOp::Insert(k) => {
                    let mut body = hash::insert_body(&shape, k);
                    let got = th.run_op(&mut cpu, 1, list::LIST_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.insert(k));
                }
                SetOp::Delete(k) => {
                    let mut body = hash::delete_body(&shape, k);
                    let got = th.run_op(&mut cpu, 2, list::LIST_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.remove(&k));
                }
                SetOp::Contains(k) => {
                    let mut body = hash::contains_body(&shape, k);
                    let got = th.run_op(&mut cpu, 0, list::LIST_SLOTS, &mut body) == 1;
                    prop_assert_eq!(got, oracle.contains(&k));
                }
            }
        }
        prop_assert_eq!(shape.collect_keys_untimed(&heap), oracle.iter().copied().collect::<Vec<_>>());
        shape.check_invariants_untimed(&heap);
    }

    #[test]
    fn queue_matches_vecdeque(scheme in scheme_under_test(), ops in prop::collection::vec(prop_oneof![
        (1u64..1000).prop_map(Some),
        Just(None),
    ], 1..100)) {
        let scheme = if scheme == Scheme::Dta { Scheme::Epoch } else { scheme };
        let (heap, factory, mut cpu) = env(scheme);
        let shape = queue::QueueShape::new_untimed(&heap);
        let mut th = factory.thread(0);
        let mut oracle: VecDeque<u64> = VecDeque::new();

        for op in &ops {
            match *op {
                Some(v) => {
                    let mut body = queue::enqueue_body(shape, v);
                    th.run_op(&mut cpu, 0, queue::QUEUE_SLOTS, &mut body);
                    oracle.push_back(v);
                }
                None => {
                    let mut body = queue::dequeue_body(shape);
                    let got = th.run_op(&mut cpu, 1, queue::QUEUE_SLOTS, &mut body);
                    let expect = oracle.pop_front().unwrap_or(0);
                    prop_assert_eq!(got, expect);
                }
            }
        }
        prop_assert_eq!(shape.collect_values_untimed(&heap), oracle.iter().copied().collect::<Vec<_>>());
    }
}
