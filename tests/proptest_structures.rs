//! Randomized property tests, driven through the `st-check` explorer.
//!
//! Every case is a [`CheckConfig`]: the seed deterministically generates
//! per-thread operation scripts, the explorer's randomized mode varies
//! the interleaving, and the per-operation history is validated against
//! the structure's sequential specification by the Wing–Gong
//! linearizability checker (with the heap's use-after-free oracle armed
//! throughout). A violation shrinks to a replay token and fails the
//! test with it, so any failure here is reproducible with
//! `st-bench check --replay <token>`.
//!
//! No external property-testing crate: the build must work with no
//! registry access, and explicit (seed, schedule-token) pairs make
//! failures replayable by construction.

use st_check::{check, CheckConfig, ExploreConfig, ExploreMode, Structure};
use st_reclaim::Scheme;

const STRUCTURES: [Structure; 5] = [
    Structure::List,
    Structure::Hash,
    Structure::Queue,
    Structure::SkipList,
    Structure::RbTree,
];

const SCHEMES: [Scheme; 8] = [
    Scheme::None,
    Scheme::Epoch,
    Scheme::Hazard,
    Scheme::Dta,
    Scheme::RefCount,
    Scheme::StackTrack,
    Scheme::Nbr,
    Scheme::Hyaline,
];

/// DTA is list-only by design; substitute the leak-free baseline
/// elsewhere (same convention as the scheme matrix tests).
fn scheme_for(structure: Structure, scheme: Scheme) -> Scheme {
    if scheme == Scheme::Dta && structure != Structure::List {
        Scheme::Epoch
    } else {
        scheme
    }
}

/// Explores one workload and panics with the replay token on violation.
fn explore(config: CheckConfig, explore: ExploreConfig) {
    let report = check(&config, &explore);
    if let Some(f) = report.failure {
        panic!(
            "{}/{} violated an oracle after {} schedules: {:?}\n  \
             reproduce with: st-bench check --replay {}",
            config.structure, config.scheme, report.schedules_run, f.violations, f.token
        );
    }
    assert!(report.schedules_run > 0);
}

/// Single-threaded scripts: with one runnable thread every scheduling
/// decision is forced, so the one explored schedule is the sequential
/// execution and linearizability degenerates to "every return value
/// matches the sequential specification" — the classic
/// structure-vs-oracle property, now routed through the recorder.
#[test]
fn sequential_random_scripts_match_the_specs() {
    for structure in STRUCTURES {
        for scheme in SCHEMES {
            for seed in 1..=4 {
                explore(
                    CheckConfig {
                        structure,
                        scheme: scheme_for(structure, scheme),
                        threads: 1,
                        ops_per_thread: 40,
                        key_range: 16,
                        seed,
                        ..CheckConfig::default()
                    },
                    ExploreConfig {
                        mode: ExploreMode::Random { percent: 0 },
                        max_schedules: 1,
                    },
                );
            }
        }
    }
}

/// Concurrent scripts under randomized interleavings: every structure,
/// every scheme, several seeds, dozens of schedules each. Any torn
/// traversal, premature free, or non-linearizable response fails with a
/// shrunk replay token.
#[test]
fn concurrent_random_schedules_satisfy_oracles() {
    for structure in STRUCTURES {
        for scheme in SCHEMES {
            for seed in 1..=2 {
                explore(
                    CheckConfig {
                        structure,
                        scheme: scheme_for(structure, scheme),
                        threads: 3,
                        ops_per_thread: 5,
                        key_range: 6,
                        seed,
                        ..CheckConfig::default()
                    },
                    ExploreConfig {
                        mode: ExploreMode::Random { percent: 25 },
                        max_schedules: 50,
                    },
                );
            }
        }
    }
}
