//! Randomized tests: random operation sequences against sequential oracles,
//! for every structure under every scheme.
//!
//! Driven by the simulator's own deterministic `Pcg32` (one stream per
//! (scheme, case) pair) instead of an external property-testing crate — the
//! build must work with no registry access, and explicit seeds make
//! failures replayable by construction.

use st_machine::rng::Pcg32;
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_reclaim::{ReclaimConfig, Scheme, SchemeFactory};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::{hash, list, queue, skiplist};
use stacktrack::StConfig;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Cases per (structure, scheme) pair — 6 schemes x 8 cases matches the
/// original 48-case budget per structure.
const CASES: u64 = 8;

const SCHEMES: [Scheme; 6] = [
    Scheme::None,
    Scheme::Epoch,
    Scheme::Hazard,
    Scheme::Dta,
    Scheme::RefCount,
    Scheme::StackTrack,
];

#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64),
    Delete(u64),
    Contains(u64),
}

fn set_op(rng: &mut Pcg32) -> SetOp {
    let k = 1 + rng.below(63);
    match rng.below(3) {
        0 => SetOp::Insert(k),
        1 => SetOp::Delete(k),
        _ => SetOp::Contains(k),
    }
}

fn env(scheme: Scheme) -> (Arc<Heap>, SchemeFactory, Cpu) {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
    let mut rc = ReclaimConfig::default();
    rc.hazard_slots = 2 * skiplist::MAX_LEVEL + 2;
    let factory = SchemeFactory::builder(scheme)
        .engine(engine)
        .reclaim_config(rc)
        .build();
    let topo = Topology::haswell();
    let cpu = Cpu::new(
        0,
        HwContext::new(&topo, 0),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        77,
    );
    (heap, factory, cpu)
}

/// Runs `CASES` random set-operation scripts for `scheme` against a
/// `BTreeSet` oracle, using the structure adapter supplied by `run_case`.
fn check_set_structure(
    seed: u64,
    scheme: Scheme,
    max_ops: u64,
    mut run_case: impl FnMut(Scheme, &[SetOp], u64),
) {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(seed ^ scheme as u64, case);
        let n = 1 + rng.below(max_ops - 1) as usize;
        let ops: Vec<SetOp> = (0..n).map(|_| set_op(&mut rng)).collect();
        run_case(scheme, &ops, case);
    }
}

#[test]
fn list_matches_btreeset() {
    for scheme in SCHEMES {
        check_set_structure(0x11_57ed, scheme, 80, |scheme, ops, case| {
            let (heap, factory, mut cpu) = env(scheme);
            let shape = list::ListShape::new_untimed(&heap);
            let mut th = factory.thread(0);
            let mut oracle = BTreeSet::new();

            for op in ops {
                match *op {
                    SetOp::Insert(k) => {
                        let mut body = list::insert_body(shape, k);
                        let got = th.run_op(&mut cpu, 1, list::LIST_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.insert(k), "{scheme:?} case {case}");
                    }
                    SetOp::Delete(k) => {
                        let mut body = list::delete_body(shape, k);
                        let got = th.run_op(&mut cpu, 2, list::LIST_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.remove(&k), "{scheme:?} case {case}");
                    }
                    SetOp::Contains(k) => {
                        let mut body = list::contains_body(shape, k);
                        let got = th.run_op(&mut cpu, 0, list::LIST_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.contains(&k), "{scheme:?} case {case}");
                    }
                }
            }
            assert_eq!(
                shape.collect_keys_untimed(&heap),
                oracle.iter().copied().collect::<Vec<_>>(),
                "{scheme:?} case {case}"
            );
            shape.check_invariants_untimed(&heap);
        });
    }
}

#[test]
fn skiplist_matches_btreeset() {
    for scheme in SCHEMES {
        // DTA is list-only by design; substitute the leak-free baseline.
        let scheme = if scheme == Scheme::Dta {
            Scheme::Epoch
        } else {
            scheme
        };
        check_set_structure(0x5c1_b0a7, scheme, 60, |scheme, ops, case| {
            let (heap, factory, mut cpu) = env(scheme);
            let shape = skiplist::SkipShape::new_untimed(&heap);
            let mut th = factory.thread(0);
            let mut oracle = BTreeSet::new();

            for op in ops {
                match *op {
                    SetOp::Insert(k) => {
                        let mut body = skiplist::insert_body(shape, k);
                        let got = th.run_op(&mut cpu, 1, skiplist::SKIP_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.insert(k), "{scheme:?} case {case}");
                    }
                    SetOp::Delete(k) => {
                        let mut body = skiplist::delete_body(shape, k);
                        let got = th.run_op(&mut cpu, 2, skiplist::SKIP_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.remove(&k), "{scheme:?} case {case}");
                    }
                    SetOp::Contains(k) => {
                        let mut body = skiplist::contains_body(shape, k);
                        let got = th.run_op(&mut cpu, 0, skiplist::SKIP_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.contains(&k), "{scheme:?} case {case}");
                    }
                }
            }
            assert_eq!(
                shape.collect_keys_untimed(&heap),
                oracle.iter().copied().collect::<Vec<_>>(),
                "{scheme:?} case {case}"
            );
            shape.check_invariants_untimed(&heap);
        });
    }
}

#[test]
fn hash_matches_btreeset() {
    for scheme in SCHEMES {
        let scheme = if scheme == Scheme::Dta {
            Scheme::Epoch
        } else {
            scheme
        };
        check_set_structure(0xba5e_d0, scheme, 80, |scheme, ops, case| {
            let (heap, factory, mut cpu) = env(scheme);
            let shape = hash::HashShape::new_untimed(&heap, 8);
            let mut th = factory.thread(0);
            let mut oracle = BTreeSet::new();

            for op in ops {
                match *op {
                    SetOp::Insert(k) => {
                        let mut body = hash::insert_body(&shape, k);
                        let got = th.run_op(&mut cpu, 1, list::LIST_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.insert(k), "{scheme:?} case {case}");
                    }
                    SetOp::Delete(k) => {
                        let mut body = hash::delete_body(&shape, k);
                        let got = th.run_op(&mut cpu, 2, list::LIST_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.remove(&k), "{scheme:?} case {case}");
                    }
                    SetOp::Contains(k) => {
                        let mut body = hash::contains_body(&shape, k);
                        let got = th.run_op(&mut cpu, 0, list::LIST_SLOTS, &mut body) == 1;
                        assert_eq!(got, oracle.contains(&k), "{scheme:?} case {case}");
                    }
                }
            }
            assert_eq!(
                shape.collect_keys_untimed(&heap),
                oracle.iter().copied().collect::<Vec<_>>(),
                "{scheme:?} case {case}"
            );
            shape.check_invariants_untimed(&heap);
        });
    }
}

#[test]
fn queue_matches_vecdeque() {
    for scheme in SCHEMES {
        let scheme = if scheme == Scheme::Dta {
            Scheme::Epoch
        } else {
            scheme
        };
        for case in 0..CASES {
            let mut rng = Pcg32::new_stream(0x90e0e ^ scheme as u64, case);
            let n = 1 + rng.below(99) as usize;
            let (heap, factory, mut cpu) = env(scheme);
            let shape = queue::QueueShape::new_untimed(&heap);
            let mut th = factory.thread(0);
            let mut oracle: VecDeque<u64> = VecDeque::new();

            for _ in 0..n {
                if rng.chance(0.5) {
                    let v = 1 + rng.below(999);
                    let mut body = queue::enqueue_body(shape, v);
                    th.run_op(&mut cpu, 0, queue::QUEUE_SLOTS, &mut body);
                    oracle.push_back(v);
                } else {
                    let mut body = queue::dequeue_body(shape);
                    let got = th.run_op(&mut cpu, 1, queue::QUEUE_SLOTS, &mut body);
                    let expect = oracle.pop_front().unwrap_or(0);
                    assert_eq!(got, expect, "{scheme:?} case {case}");
                }
            }
            assert_eq!(
                shape.collect_values_untimed(&heap),
                oracle.iter().copied().collect::<Vec<_>>(),
                "{scheme:?} case {case}"
            );
        }
    }
}
