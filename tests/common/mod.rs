#![allow(dead_code)] // each test binary uses a different subset

//! Shared helpers for the workspace integration tests: a generic workload
//! worker that drives any structure under any scheme on the simulated
//! machine.

use st_machine::{
    Cpu, FaultPlan, SimConfig, SimReport, Simulator, StepOutcome, Worker, CYCLES_PER_SECOND,
};
use st_obs::MetricsRegistry;
use st_reclaim::{ReclaimConfig, Scheme, SchemeFactory, SchemeThread};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::{hash, list, queue, skiplist};
use stacktrack::OpBody;
use std::sync::Arc;

/// Virtual cycles per millisecond of simulated time.
pub const MS: u64 = CYCLES_PER_SECOND / 1000;

/// Structures the mixed workload can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    List,
    SkipList,
    Queue,
    Hash,
}

/// A built environment: heap, engine, factory, and the structure.
pub struct Env {
    pub heap: Arc<Heap>,
    pub engine: Arc<HtmEngine>,
    pub factory: SchemeFactory,
    pub instance: Instance,
}

/// The shared structure of a run.
#[derive(Clone)]
pub enum Instance {
    List(list::ListShape),
    SkipList(skiplist::SkipShape),
    Queue(queue::QueueShape),
    Hash(hash::HashShape),
}

/// Builds an environment for `scheme` with `threads` slots and default
/// scheme tuning.
pub fn build_env(target: Target, scheme: Scheme, threads: usize, initial: u64, seed: u64) -> Env {
    build_env_cfg(
        target,
        scheme,
        threads,
        initial,
        seed,
        ReclaimConfig::default(),
    )
}

/// Builds an environment with explicit scheme tuning.
pub fn build_env_cfg(
    target: Target,
    scheme: Scheme,
    threads: usize,
    initial: u64,
    seed: u64,
    rc: ReclaimConfig,
) -> Env {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 21,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), threads));
    let factory = SchemeFactory::builder(scheme)
        .engine(engine.clone())
        .max_threads(threads)
        .reclaim_config(rc)
        // Guard slots derived from the structures' declared requirements
        // rather than hand-computed per harness.
        .guard_requirement(st_structures::max_guard_requirement())
        .build();

    let mut rng = st_machine::Pcg32::new_stream(seed, 0x7e57);
    let instance = match target {
        Target::List => {
            let shape = list::ListShape::new_untimed(&heap);
            let mut n = 0;
            while n < initial {
                if shape.insert_untimed(&heap, rng.below(2 * initial.max(8)) + 1) {
                    n += 1;
                }
            }
            Instance::List(shape)
        }
        Target::SkipList => {
            let shape = skiplist::SkipShape::new_untimed(&heap);
            let mut n = 0;
            while n < initial {
                if shape.insert_untimed(&heap, rng.below(2 * initial.max(8)) + 1, &mut rng) {
                    n += 1;
                }
            }
            Instance::SkipList(shape)
        }
        Target::Queue => {
            let shape = queue::QueueShape::new_untimed(&heap);
            for i in 0..initial {
                shape.enqueue_untimed(&heap, i + 1);
            }
            Instance::Queue(shape)
        }
        Target::Hash => {
            let shape = hash::HashShape::new_untimed(&heap, 64);
            let mut n = 0;
            while n < initial {
                if shape.insert_untimed(&heap, rng.below(2 * initial.max(8)) + 1) {
                    n += 1;
                }
            }
            Instance::Hash(shape)
        }
    };
    Env {
        heap,
        engine,
        factory,
        instance,
    }
}

/// A worker running a 20%-mutation mix against the shared structure.
pub struct MixWorker {
    th: Box<dyn SchemeThread>,
    instance: Instance,
    key_range: u64,
    current: Option<Box<OpBody<'static>>>,
}

impl MixWorker {
    pub fn new(th: Box<dyn SchemeThread>, instance: Instance, key_range: u64) -> Self {
        Self {
            th,
            instance,
            key_range,
            current: None,
        }
    }

    pub fn executor(&self) -> &dyn SchemeThread {
        self.th.as_ref()
    }

    pub fn executor_mut(&mut self) -> &mut dyn SchemeThread {
        self.th.as_mut()
    }

    fn pick(&self, cpu: &mut Cpu) -> (u32, usize, Box<OpBody<'static>>) {
        let roll = cpu.rng.below(100);
        let key = cpu.rng.below(self.key_range) + 1;
        let mutate = roll < 20;
        let alt = roll % 2 == 1;
        match &self.instance {
            Instance::List(s) => {
                let s = *s;
                if !mutate {
                    (0, list::LIST_SLOTS, Box::new(list::contains_body(s, key)))
                } else if alt {
                    (1, list::LIST_SLOTS, Box::new(list::insert_body(s, key)))
                } else {
                    (2, list::LIST_SLOTS, Box::new(list::delete_body(s, key)))
                }
            }
            Instance::SkipList(s) => {
                let s = *s;
                if !mutate {
                    (
                        0,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::contains_body(s, key)),
                    )
                } else if alt {
                    (
                        1,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::insert_body(s, key)),
                    )
                } else {
                    (
                        2,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::delete_body(s, key)),
                    )
                }
            }
            Instance::Queue(s) => {
                let s = *s;
                if !mutate {
                    (2, queue::QUEUE_SLOTS, Box::new(queue::peek_body(s)))
                } else if alt {
                    (0, queue::QUEUE_SLOTS, Box::new(queue::enqueue_body(s, key)))
                } else {
                    (1, queue::QUEUE_SLOTS, Box::new(queue::dequeue_body(s)))
                }
            }
            Instance::Hash(s) => {
                if !mutate {
                    (0, list::LIST_SLOTS, Box::new(hash::contains_body(s, key)))
                } else if alt {
                    (1, list::LIST_SLOTS, Box::new(hash::insert_body(s, key)))
                } else {
                    (2, list::LIST_SLOTS, Box::new(hash::delete_body(s, key)))
                }
            }
        }
    }
}

impl Worker for MixWorker {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        if self.th.idle_work_pending() {
            self.th.step_idle(cpu);
            return StepOutcome::Progress;
        }
        if self.current.is_none() {
            let (op, slots, body) = self.pick(cpu);
            self.th.begin_op(cpu, op, slots);
            self.current = Some(body);
            return StepOutcome::Progress;
        }
        let body = self.current.as_mut().expect("active op");
        match self.th.step_op(cpu, body.as_mut()) {
            Some(_) => {
                self.current = None;
                StepOutcome::OpDone
            }
            None => StepOutcome::Progress,
        }
    }

    fn neutralize(&mut self, cpu: &mut Cpu) {
        self.th.neutralize(cpu);
    }
}

/// Runs `threads` mixed workers for `duration_ms` virtual milliseconds and
/// returns the report plus the workers (for teardown and inspection).
pub fn run_mix(
    env: &Env,
    threads: usize,
    duration_ms: u64,
    key_range: u64,
    seed: u64,
) -> (SimReport, Vec<MixWorker>) {
    run_mix_faulted(
        env,
        threads,
        duration_ms,
        key_range,
        seed,
        FaultPlan::default(),
    )
}

/// [`run_mix`] with a fault schedule applied to the run.
pub fn run_mix_faulted(
    env: &Env,
    threads: usize,
    duration_ms: u64,
    key_range: u64,
    seed: u64,
    faults: FaultPlan,
) -> (SimReport, Vec<MixWorker>) {
    let workers: Vec<MixWorker> = (0..threads)
        .map(|t| MixWorker::new(env.factory.thread(t), env.instance.clone(), key_range))
        .collect();
    let sim = Simulator::new(SimConfig::haswell_ms(duration_ms, seed).with_faults(faults));
    sim.run(workers)
}

/// Collects everything a run observed into one registry (scheme metrics
/// from every worker, machine counters, fault counters), rendered as
/// canonical JSON so tests can compare two runs byte for byte.
pub fn snapshot(report: &SimReport, workers: &[MixWorker]) -> String {
    let mut reg = MetricsRegistry::new();
    for w in workers {
        w.executor().report_metrics(&mut reg);
    }
    reg.add("run.total_ops", report.total_ops());
    reg.add("machine.fences", report.sum_counter(|c| c.fences));
    reg.add("machine.loads", report.sum_counter(|c| c.loads));
    reg.add("machine.stores", report.sum_counter(|c| c.stores));
    reg.add(
        "machine.context_switches",
        report.sum_counter(|c| c.context_switches),
    );
    reg.add("fault.stalls", report.faults.stalls);
    reg.add("fault.stall_cycles", report.faults.stall_cycles);
    reg.add("fault.kills", report.faults.kills);
    reg.add("fault.storm_switches", report.faults.storm_switches);
    reg.to_json().to_string()
}

/// The fault plan shared by the fault-injection tests: a mid-run stall on
/// thread 2 plus a preemption storm on context 0.
pub fn stall_storm_plan() -> FaultPlan {
    FaultPlan::default()
        .stall(2, MS / 2, MS)
        .storm(0, MS / 4, MS / 8)
}

/// Checks the structure's invariants.
pub fn check_instance(env: &Env) {
    match &env.instance {
        Instance::List(s) => s.check_invariants_untimed(&env.heap),
        Instance::SkipList(s) => s.check_invariants_untimed(&env.heap),
        Instance::Hash(s) => s.check_invariants_untimed(&env.heap),
        Instance::Queue(s) => {
            // FIFO structure: just walk it (panics on dangling pointers).
            let _ = s.collect_values_untimed(&env.heap);
        }
    }
}
