//! Memory accounting across schemes: reclaiming schemes keep garbage
//! bounded, the leaky baseline provably leaks, and teardown returns
//! everything that can be returned.

mod common;

use common::{build_env, run_mix, Target};
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_reclaim::Scheme;
use std::sync::Arc;

fn teardown_cpu(t: usize) -> Cpu {
    let topo = Topology::haswell();
    Cpu::new(
        t,
        HwContext::new(&topo, topo.place(t)),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        5,
    )
}

/// Runs a mutation-heavy hash workload and returns (live objects after
/// teardown, live objects before the run, total ops).
fn churn(scheme: Scheme) -> (u64, u64, u64) {
    let env = build_env(Target::Hash, scheme, 4, 64, 7);
    let before = env.heap.stats().alloc.live_objects;
    let (report, mut workers) = run_mix(&env, 4, 2, 128, 7);
    for (t, w) in workers.iter_mut().enumerate() {
        let mut cpu = teardown_cpu(t);
        w.executor_mut().teardown(&mut cpu);
    }
    (
        env.heap.stats().alloc.live_objects,
        before,
        report.total_ops(),
    )
}

#[test]
fn original_leaks_unboundedly() {
    let (after, before, ops) = churn(Scheme::None);
    assert!(ops > 1000, "need real churn (got {ops} ops)");
    // Deletions leave unlinked nodes allocated forever: the population
    // stays bounded but allocation grows with every successful insert.
    assert!(
        after > before + 100,
        "NoReclaim must leak (before {before}, after {after})"
    );
}

#[test]
fn stacktrack_returns_all_garbage() {
    let (after, before, ops) = churn(Scheme::StackTrack);
    assert!(ops > 500);
    // The resident set fluctuates around its initial size; allocation-wise
    // everything retired must be freed, so live objects stay within the
    // key-range bound (128 keys -> at most 128 nodes beyond the baseline).
    assert!(
        after <= before + 128,
        "StackTrack garbage unbounded (before {before}, after {after})"
    );
}

#[test]
fn epoch_and_hazard_keep_garbage_bounded() {
    for scheme in [Scheme::Epoch, Scheme::Hazard] {
        let (after, before, _) = churn(scheme);
        assert!(
            after <= before + 200,
            "{scheme:?} garbage unbounded (before {before}, after {after})"
        );
    }
}

#[test]
fn stalled_thread_blocks_epoch_but_not_stacktrack() {
    // A thread parked inside an operation: epoch reclaimers stall; the
    // StackTrack scan just reads its committed (empty) stack and frees.
    for (scheme, expect_freed) in [(Scheme::Epoch, false), (Scheme::StackTrack, true)] {
        let env = build_env(Target::List, scheme, 2, 8, 3);
        let mut stalled = env.factory.thread(0);
        let mut reclaimer = env.factory.thread(1);
        let mut cpu_a = teardown_cpu(0);
        let mut cpu_b = teardown_cpu(1);

        // Thread 0 parks mid-operation (never completes).
        let common::Instance::List(shape) = env.instance else {
            unreachable!()
        };
        let mut park = st_structures::list::contains_body(shape, 1);
        stalled.begin_op(&mut cpu_a, 0, st_structures::list::LIST_SLOTS);
        stalled.step_op(&mut cpu_a, &mut park);

        // Thread 1 inserts then deletes a key, retiring one node.
        let before = env.heap.stats().alloc.live_objects;
        let mut ins = st_structures::list::insert_body(shape, 5000);
        st_reclaim::SchemeThread::run_op(
            &mut *reclaimer,
            &mut cpu_b,
            1,
            st_structures::list::LIST_SLOTS,
            &mut ins,
        );
        let mut del = st_structures::list::delete_body(shape, 5000);
        st_reclaim::SchemeThread::run_op(
            &mut *reclaimer,
            &mut cpu_b,
            2,
            st_structures::list::LIST_SLOTS,
            &mut del,
        );
        // Bounded teardown attempt.
        reclaimer.teardown(&mut cpu_b);
        let after = env.heap.stats().alloc.live_objects;
        let freed = after == before;
        assert_eq!(
            freed, expect_freed,
            "{scheme:?}: freed={freed} (before {before}, after {after})"
        );
    }
}
