//! Reproducibility: the whole stack is a deterministic function of the
//! seed — same seed, same everything; different seed, different
//! interleavings.

mod common;

use common::{build_env, run_mix, Target};
use st_reclaim::Scheme;

fn fingerprint(seed: u64) -> (u64, Vec<u64>, u64, u64) {
    let env = build_env(Target::SkipList, Scheme::StackTrack, 8, 128, seed);
    let (report, workers) = run_mix(&env, 8, 1, 256, seed);
    let per_thread: Vec<u64> = report.threads.iter().map(|t| t.ops).collect();
    let htm = env.engine.total_stats();
    let garbage: u64 = workers
        .iter()
        .map(|w| w.executor().outstanding_garbage())
        .sum();
    (report.total_ops(), per_thread, htm.total_aborts(), garbage)
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = fingerprint(101);
    let b = fingerprint(101);
    assert_eq!(a, b, "same seed must reproduce the run exactly");
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(101);
    let b = fingerprint(202);
    assert_ne!(
        (a.0, a.2),
        (b.0, b.2),
        "different seeds should change the interleaving"
    );
}

#[test]
fn every_scheme_is_deterministic() {
    for scheme in [
        Scheme::None,
        Scheme::Epoch,
        Scheme::Hazard,
        Scheme::StackTrack,
    ] {
        let run = |seed| {
            let env = build_env(Target::Hash, scheme, 4, 64, seed);
            let (report, _) = run_mix(&env, 4, 1, 128, seed);
            report.total_ops()
        };
        assert_eq!(run(7), run(7), "{scheme:?} must be deterministic");
    }
}
