//! Reproducibility: the whole stack is a deterministic function of the
//! seed — same seed, same everything; different seed, different
//! interleavings.

mod common;

use common::{build_env, run_mix, run_mix_faulted, snapshot, Target, MS};
use st_machine::FaultPlan;
use st_reclaim::Scheme;

fn fingerprint(seed: u64) -> (u64, Vec<u64>, u64, u64) {
    let env = build_env(Target::SkipList, Scheme::StackTrack, 8, 128, seed);
    let (report, workers) = run_mix(&env, 8, 1, 256, seed);
    let per_thread: Vec<u64> = report.threads.iter().map(|t| t.ops).collect();
    let htm = env.engine.total_stats();
    let garbage: u64 = workers
        .iter()
        .map(|w| w.executor().outstanding_garbage())
        .sum();
    (report.total_ops(), per_thread, htm.total_aborts(), garbage)
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = fingerprint(101);
    let b = fingerprint(101);
    assert_eq!(a, b, "same seed must reproduce the run exactly");
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(101);
    let b = fingerprint(202);
    assert_ne!(
        (a.0, a.2),
        (b.0, b.2),
        "different seeds should change the interleaving"
    );
}

/// The full matrix: every reclamation scheme crossed with every fault
/// event kind the plan language offers (stall, kill, preemption storm,
/// and their combination). Each cell runs twice and the complete metric
/// snapshot — scheme counters, machine counters, fault accounting —
/// must match byte for byte. This is the contract the robustness
/// experiments and the fault-injection tests both stand on: a fault
/// plan perturbs the execution, never the determinism.
#[test]
fn every_scheme_times_every_fault_kind_is_byte_identical() {
    let kinds: [(&str, fn() -> FaultPlan); 4] = [
        ("stall", || FaultPlan::default().stall(2, MS / 2, MS / 2)),
        ("kill", || FaultPlan::default().kill(1, MS / 2)),
        ("storm", || FaultPlan::default().storm(0, MS / 4, MS / 2)),
        ("combined", || {
            FaultPlan::default()
                .stall(2, MS / 4, MS / 4)
                .kill(3, MS / 2)
                .storm(0, MS / 2, MS / 4)
        }),
    ];
    for scheme in [
        Scheme::None,
        Scheme::Epoch,
        Scheme::Hazard,
        Scheme::StackTrack,
        Scheme::Dta,
        Scheme::Nbr,
        Scheme::Hyaline,
    ] {
        for (kind, mk_plan) in &kinds {
            let run = || {
                let env = build_env(Target::List, scheme, 4, 100, 23);
                let (report, workers) = run_mix_faulted(&env, 4, 1, 200, 23, mk_plan());
                snapshot(&report, &workers)
            };
            assert_eq!(
                run(),
                run(),
                "{scheme:?} under a {kind} fault must reproduce byte-identically"
            );
        }
    }
}

/// The parallel sweep scheduler's contract end-to-end: one figure driver
/// run serially (`--jobs 1`) and once with four workers must persist
/// byte-identical artifacts — the flat JSON-lines summary, the full
/// metrics snapshot, and the rendered markdown (docs/PERF.md).
#[test]
fn parallel_sweep_artifacts_are_byte_identical_to_serial() {
    use st_bench::figures::{ablation_scanmode, BenchOpts};

    let base = std::env::temp_dir().join(format!("st-sweep-determinism-{}", std::process::id()));
    let run = |jobs: usize, tag: &str| {
        let opts = BenchOpts {
            duration_ms: 1,
            scale: 100,
            max_threads: 2,
            out: base.join(tag),
            jobs,
            ..BenchOpts::default()
        };
        ablation_scanmode(&opts);
        let read = |name: &str| {
            std::fs::read(opts.out.join(name)).unwrap_or_else(|e| panic!("{tag}/{name}: {e}"))
        };
        (
            read("ablation_scanmode.json"),
            read("ablation_scanmode.metrics.json"),
            read("ablation_scanmode.md"),
        )
    };
    let serial = run(1, "serial");
    let parallel = run(4, "parallel");
    assert_eq!(serial, parallel, "artifacts must not depend on --jobs");
    let _ = std::fs::remove_dir_all(&base);
}

/// The same contract for the figure drivers over the typed-API ports:
/// the skip list (figure 1b) and queue (figure 2a) sweeps must persist
/// byte-identical artifacts at `--jobs 1`, `2`, and `4`. This is the
/// regression fence for the migration's central claim — every typed
/// method lowers to the identical raw call sequence, so no artifact
/// byte may move under any worker fan-out.
#[test]
fn typed_structure_figures_are_byte_identical_across_jobs() {
    use st_bench::experiment::RunResult;
    use st_bench::figures::{fig1_skiplist, fig2_queue, BenchOpts};

    let figures: [(&str, fn(&BenchOpts) -> Vec<RunResult>, &str); 2] = [
        ("fig1_skiplist", fig1_skiplist, "fig1_skiplist"),
        ("fig2_queue", fig2_queue, "fig2_queue"),
    ];
    let base = std::env::temp_dir().join(format!("st-fig-determinism-{}", std::process::id()));
    for (tag, driver, stem) in figures {
        let run = |jobs: usize| {
            let opts = BenchOpts {
                duration_ms: 1,
                scale: 100,
                max_threads: 2,
                out: base.join(format!("{tag}-jobs{jobs}")),
                jobs,
                ..BenchOpts::default()
            };
            driver(&opts);
            let read = |name: String| {
                std::fs::read(opts.out.join(&name)).unwrap_or_else(|e| panic!("{name}: {e}"))
            };
            (
                read(format!("{stem}.json")),
                read(format!("{stem}.metrics.json")),
                read(format!("{stem}.md")),
            )
        };
        let jobs1 = run(1);
        assert_eq!(jobs1, run(2), "{tag}: --jobs 2 must match --jobs 1");
        assert_eq!(jobs1, run(4), "{tag}: --jobs 4 must match --jobs 1");
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn every_scheme_is_deterministic() {
    for scheme in [
        Scheme::None,
        Scheme::Epoch,
        Scheme::Hazard,
        Scheme::StackTrack,
    ] {
        let run = |seed| {
            let env = build_env(Target::Hash, scheme, 4, 64, seed);
            let (report, _) = run_mix(&env, 4, 1, 128, seed);
            report.total_ops()
        };
        assert_eq!(run(7), run(7), "{scheme:?} must be deterministic");
    }
}
