//! The full matrix: every structure under every reclamation scheme on the
//! simulated 8-way machine, with structural invariants checked after the
//! storm and memory safety enforced by the heap's poison/bounds panics.
//!
//! Any use-after-free in a scheme surfaces here deterministically: a freed
//! node is poisoned, a poison word dereferenced as a pointer lands outside
//! the heap, and the run panics.

mod common;

use common::{build_env, check_instance, run_mix, run_mix_faulted, Target};
use st_machine::{FaultPlan, CYCLES_PER_SECOND};
use st_reclaim::Scheme;

fn storm(target: Target, scheme: Scheme, threads: usize) {
    let env = build_env(target, scheme, threads, 200, 42);
    let (report, mut workers) = run_mix(&env, threads, 1, 400, 42);
    assert!(
        report.total_ops() > 0,
        "{target:?}/{scheme:?}: no operations completed"
    );
    check_instance(&env);

    // Drain deferred reclamation; the structure must stay sound.
    for (t, w) in workers.iter_mut().enumerate() {
        let topo = st_machine::Topology::haswell();
        let mut cpu = st_machine::Cpu::new(
            t,
            st_machine::HwContext::new(&topo, topo.place(t)),
            std::sync::Arc::new(st_machine::CostModel::default()),
            std::sync::Arc::new(st_machine::cpu::ActivityBoard::new(topo.hw_contexts())),
            9,
        );
        w.executor_mut().teardown(&mut cpu);
    }
    check_instance(&env);
}

macro_rules! matrix_test {
    ($name:ident, $target:expr, $scheme:expr, $threads:expr) => {
        #[test]
        fn $name() {
            storm($target, $scheme, $threads);
        }
    };
}

// List under every scheme (including DTA, which is list-only).
matrix_test!(list_original_8, Target::List, Scheme::None, 8);
matrix_test!(list_epoch_8, Target::List, Scheme::Epoch, 8);
matrix_test!(list_hazard_8, Target::List, Scheme::Hazard, 8);
matrix_test!(list_dta_8, Target::List, Scheme::Dta, 8);
matrix_test!(list_refcount_4, Target::List, Scheme::RefCount, 4);
matrix_test!(list_stacktrack_8, Target::List, Scheme::StackTrack, 8);
matrix_test!(list_stacktrack_16, Target::List, Scheme::StackTrack, 16);
matrix_test!(list_nbr_8, Target::List, Scheme::Nbr, 8);
matrix_test!(list_hyaline_8, Target::List, Scheme::Hyaline, 8);

// Skip list.
matrix_test!(skiplist_original_8, Target::SkipList, Scheme::None, 8);
matrix_test!(skiplist_epoch_8, Target::SkipList, Scheme::Epoch, 8);
matrix_test!(skiplist_hazard_8, Target::SkipList, Scheme::Hazard, 8);
matrix_test!(
    skiplist_stacktrack_8,
    Target::SkipList,
    Scheme::StackTrack,
    8
);
matrix_test!(
    skiplist_stacktrack_16,
    Target::SkipList,
    Scheme::StackTrack,
    16
);
matrix_test!(skiplist_nbr_8, Target::SkipList, Scheme::Nbr, 8);
matrix_test!(skiplist_hyaline_8, Target::SkipList, Scheme::Hyaline, 8);

// Queue.
matrix_test!(queue_original_8, Target::Queue, Scheme::None, 8);
matrix_test!(queue_epoch_8, Target::Queue, Scheme::Epoch, 8);
matrix_test!(queue_hazard_8, Target::Queue, Scheme::Hazard, 8);
matrix_test!(queue_stacktrack_8, Target::Queue, Scheme::StackTrack, 8);
matrix_test!(queue_stacktrack_16, Target::Queue, Scheme::StackTrack, 16);
matrix_test!(queue_nbr_8, Target::Queue, Scheme::Nbr, 8);
matrix_test!(queue_hyaline_8, Target::Queue, Scheme::Hyaline, 8);

/// Total retired-but-unfreed nodes at the deadline of a run whose last
/// thread stalls from 30 % of the way in until past the deadline.
fn garbage_under_stalled_reader(scheme: Scheme, duration_ms: u64) -> u64 {
    const MS: u64 = CYCLES_PER_SECOND / 1000;
    let threads = 4;
    let env = build_env(Target::List, scheme, threads, 200, 42);
    let plan = FaultPlan::default().stall(threads - 1, duration_ms * MS * 3 / 10, u64::MAX / 2);
    let (_report, workers) = run_mix_faulted(&env, threads, duration_ms, 400, 42, plan);
    check_instance(&env);
    workers
        .iter()
        .map(|w| w.executor().outstanding_garbage())
        .sum()
}

/// The robustness contrast of the paper's section 2: under a reader that
/// stalls and never comes back, hazard pointers, DTA (via freezing) and
/// StackTrack keep the garbage backlog bounded, while the epoch scheme's
/// limbo lists grow monotonically with run length.
#[test]
fn stalled_reader_bounds_garbage_except_for_epoch() {
    // Hazards: bounded by the scan threshold (2 * threads * slots = 272
    // here). DTA: bounded by the freeze lag. StackTrack: bounded by
    // max_free per thread. Give each headroom for in-flight slack.
    for (scheme, cap) in [
        (Scheme::Hazard, 400),
        (Scheme::Dta, 400),
        (Scheme::StackTrack, 200),
    ] {
        let garbage = garbage_under_stalled_reader(scheme, 4);
        assert!(
            garbage <= cap,
            "{scheme:?}: garbage {garbage} exceeds bound {cap} under a stalled reader"
        );
    }

    // Epoch hoards: strictly more garbage the longer the stall lasts, and
    // far beyond the bounded schemes' caps. (The reclaimers first burn
    // their spin budget on the stalled reader, then hoard.)
    let short = garbage_under_stalled_reader(Scheme::Epoch, 4);
    let long = garbage_under_stalled_reader(Scheme::Epoch, 8);
    assert!(
        long > short,
        "epoch garbage must grow with run length ({short} -> {long})"
    );
    assert!(
        long > 400,
        "epoch should hoard past every bounded scheme's cap (got {long})"
    );
}

/// Like [`garbage_under_stalled_reader`], but the stall begins at a fixed
/// absolute time (1 ms) instead of a fraction of the run, so growing the
/// duration only lengthens the stalled tail — it does not let more nodes
/// be born before the victim's protection state freezes.
fn garbage_with_fixed_stall(scheme: Scheme, duration_ms: u64) -> u64 {
    const MS: u64 = CYCLES_PER_SECOND / 1000;
    let threads = 4;
    let env = build_env(Target::List, scheme, threads, 200, 42);
    let plan = FaultPlan::default().stall(threads - 1, MS, u64::MAX / 2);
    let (_report, workers) = run_mix_faulted(&env, threads, duration_ms, 400, 42, plan);
    check_instance(&env);
    workers
        .iter()
        .map(|w| w.executor().outstanding_garbage())
        .sum()
}

/// The two "beyond the paper" schemes extend the bounded column of the
/// robustness contrast. NBR: a reader stalled in its read phase has
/// published nothing, so reclaimers free around it; the backlog is capped
/// by the per-thread broadcast threshold (2 * threads * slots ≈ 816 here)
/// regardless of how long the stall lasts. Hyaline: the stalled reader's
/// published era is frozen at the stall, so batch dispatch skips it for
/// every batch whose nodes were all born later — it pins only batches
/// containing nodes born before the freeze, a set the stall length cannot
/// grow. Epoch under the identical fixed-start stall hoards linearly.
#[test]
fn stalled_reader_bounds_nbr_and_hyaline_garbage() {
    const CAP: u64 = 900;
    for scheme in [Scheme::Nbr, Scheme::Hyaline] {
        let mid = garbage_with_fixed_stall(scheme, 8);
        let long = garbage_with_fixed_stall(scheme, 16);
        assert!(
            mid <= CAP && long <= CAP,
            "{scheme:?}: garbage must stay bounded under a stalled reader \
             (8ms -> {mid}, 16ms -> {long}, cap {CAP})"
        );
    }
    let epoch = garbage_with_fixed_stall(Scheme::Epoch, 16);
    assert!(
        epoch > 2 * CAP,
        "epoch should hoard far past the bounded schemes' cap under the \
         same fixed-start stall (got {epoch})"
    );
}

// Hash table.
matrix_test!(hash_original_8, Target::Hash, Scheme::None, 8);
matrix_test!(hash_epoch_8, Target::Hash, Scheme::Epoch, 8);
matrix_test!(hash_hazard_8, Target::Hash, Scheme::Hazard, 8);
matrix_test!(hash_stacktrack_8, Target::Hash, Scheme::StackTrack, 8);
matrix_test!(hash_refcount_4, Target::Hash, Scheme::RefCount, 4);
matrix_test!(hash_nbr_8, Target::Hash, Scheme::Nbr, 8);
matrix_test!(hash_hyaline_8, Target::Hash, Scheme::Hyaline, 8);
