//! The full matrix: every structure under every reclamation scheme on the
//! simulated 8-way machine, with structural invariants checked after the
//! storm and memory safety enforced by the heap's poison/bounds panics.
//!
//! Any use-after-free in a scheme surfaces here deterministically: a freed
//! node is poisoned, a poison word dereferenced as a pointer lands outside
//! the heap, and the run panics.

mod common;

use common::{build_env, check_instance, run_mix, Target};
use st_reclaim::Scheme;

fn storm(target: Target, scheme: Scheme, threads: usize) {
    let env = build_env(target, scheme, threads, 200, 42);
    let (report, mut workers) = run_mix(&env, threads, 1, 400, 42);
    assert!(
        report.total_ops() > 0,
        "{target:?}/{scheme:?}: no operations completed"
    );
    check_instance(&env);

    // Drain deferred reclamation; the structure must stay sound.
    for (t, w) in workers.iter_mut().enumerate() {
        let topo = st_machine::Topology::haswell();
        let mut cpu = st_machine::Cpu::new(
            t,
            st_machine::HwContext::new(&topo, topo.place(t)),
            std::sync::Arc::new(st_machine::CostModel::default()),
            std::sync::Arc::new(st_machine::cpu::ActivityBoard::new(topo.hw_contexts())),
            9,
        );
        w.executor_mut().teardown(&mut cpu);
    }
    check_instance(&env);
}

macro_rules! matrix_test {
    ($name:ident, $target:expr, $scheme:expr, $threads:expr) => {
        #[test]
        fn $name() {
            storm($target, $scheme, $threads);
        }
    };
}

// List under every scheme (including DTA, which is list-only).
matrix_test!(list_original_8, Target::List, Scheme::None, 8);
matrix_test!(list_epoch_8, Target::List, Scheme::Epoch, 8);
matrix_test!(list_hazard_8, Target::List, Scheme::Hazard, 8);
matrix_test!(list_dta_8, Target::List, Scheme::Dta, 8);
matrix_test!(list_refcount_4, Target::List, Scheme::RefCount, 4);
matrix_test!(list_stacktrack_8, Target::List, Scheme::StackTrack, 8);
matrix_test!(list_stacktrack_16, Target::List, Scheme::StackTrack, 16);

// Skip list.
matrix_test!(skiplist_original_8, Target::SkipList, Scheme::None, 8);
matrix_test!(skiplist_epoch_8, Target::SkipList, Scheme::Epoch, 8);
matrix_test!(skiplist_hazard_8, Target::SkipList, Scheme::Hazard, 8);
matrix_test!(
    skiplist_stacktrack_8,
    Target::SkipList,
    Scheme::StackTrack,
    8
);
matrix_test!(
    skiplist_stacktrack_16,
    Target::SkipList,
    Scheme::StackTrack,
    16
);

// Queue.
matrix_test!(queue_original_8, Target::Queue, Scheme::None, 8);
matrix_test!(queue_epoch_8, Target::Queue, Scheme::Epoch, 8);
matrix_test!(queue_hazard_8, Target::Queue, Scheme::Hazard, 8);
matrix_test!(queue_stacktrack_8, Target::Queue, Scheme::StackTrack, 8);
matrix_test!(queue_stacktrack_16, Target::Queue, Scheme::StackTrack, 16);

// Hash table.
matrix_test!(hash_original_8, Target::Hash, Scheme::None, 8);
matrix_test!(hash_epoch_8, Target::Hash, Scheme::Epoch, 8);
matrix_test!(hash_hazard_8, Target::Hash, Scheme::Hazard, 8);
matrix_test!(hash_stacktrack_8, Target::Hash, Scheme::StackTrack, 8);
matrix_test!(hash_refcount_4, Target::Hash, Scheme::RefCount, 4);
