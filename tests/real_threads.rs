//! Real-OS-thread stress tests for the substrate layers.
//!
//! The discrete-event simulator only ever runs one simulated thread at a
//! time, but the heap and the HTM engine are built from atomics and claim
//! `Sync`. These tests put that claim under genuine preemptive
//! concurrency: several OS threads hammer one engine, and the TL2
//! protocol must still never lose an update. (On a single-core host the
//! interleavings come from the OS scheduler; the lost-update check is
//! exact regardless.)

use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn make_cpu(id: usize, board: &Arc<ActivityBoard>) -> Cpu {
    let topo = Topology::haswell();
    Cpu::new(
        id,
        HwContext::new(&topo, topo.place(id)),
        Arc::new(CostModel::default()),
        board.clone(),
        0xAB + id as u64,
    )
}

#[test]
fn tl2_counter_increments_never_lose_updates() {
    const THREADS: usize = 4;
    const ATTEMPTS: u64 = 20_000;

    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 16,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), THREADS));
    let board = Arc::new(ActivityBoard::new(Topology::haswell().hw_contexts()));
    let counter = heap.alloc_untimed(1).unwrap();
    let commits = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = engine.clone();
            let commits = commits.clone();
            let board = board.clone();
            thread::spawn(move || {
                let mut cpu = make_cpu(t, &board);
                for _ in 0..ATTEMPTS {
                    let mut tx = engine.begin(&mut cpu);
                    let Ok(v) = engine.tx_read(&mut cpu, &mut tx, counter, 0) else {
                        continue;
                    };
                    if engine
                        .tx_write(&mut cpu, &mut tx, counter, 0, v + 1)
                        .is_err()
                    {
                        continue;
                    }
                    if engine.commit(&mut cpu, &mut tx).is_ok() {
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let total = commits.load(Ordering::Relaxed);
    assert!(total > 0, "some transactions must commit");
    assert_eq!(
        heap.peek(counter, 0),
        total,
        "every committed increment must be visible exactly once"
    );
}

#[test]
fn concurrent_alloc_free_stays_sound() {
    const THREADS: usize = 4;
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::default()
    }));
    let board = Arc::new(ActivityBoard::new(Topology::haswell().hw_contexts()));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let heap = heap.clone();
            let board = board.clone();
            thread::spawn(move || {
                let mut cpu = make_cpu(t, &board);
                let mut mine = Vec::new();
                for i in 0..5_000u64 {
                    if i % 3 == 2 {
                        if let Some(a) = mine.pop() {
                            heap.free(&mut cpu, a);
                        }
                    } else {
                        let a = heap.alloc(&mut cpu, (i % 7 + 1) as usize).unwrap();
                        // Tag the block; nobody else may ever see this value
                        // change under them (blocks are never shared here).
                        heap.store(&mut cpu, a, 0, t as u64 + 1);
                        assert_eq!(heap.peek(a, 0), t as u64 + 1);
                        mine.push(a);
                    }
                }
                for a in mine {
                    heap.free(&mut cpu, a);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let stats = heap.stats().alloc;
    assert_eq!(stats.live_objects, 0, "all blocks returned");
    assert_eq!(stats.allocs, stats.frees);
}

#[test]
fn nontx_writes_doom_real_concurrent_readers() {
    // One thread repeatedly runs read transactions over a block; another
    // free/reallocates it. Readers must either commit a consistent
    // snapshot or abort — never observe a torn mix (checked by writing
    // paired words that must always match).
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 16,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 2));
    let board = Arc::new(ActivityBoard::new(Topology::haswell().hw_contexts()));
    let block = heap.alloc_untimed(2).unwrap();

    let writer = {
        let engine = engine.clone();
        let board = board.clone();
        thread::spawn(move || {
            let mut cpu = make_cpu(1, &board);
            for i in 1..=10_000u64 {
                // Paired update through the doomed-write primitive; pairs
                // are published one word at a time, so readers rely on
                // version validation to reject the torn middle state.
                engine.nontx_write(&mut cpu, block, 0, i);
                engine.nontx_write(&mut cpu, block, 1, i);
            }
        })
    };

    let mut cpu = make_cpu(0, &board);
    let mut committed = 0u64;
    for _ in 0..10_000 {
        let mut tx = engine.begin(&mut cpu);
        let Ok(a) = engine.tx_read(&mut cpu, &mut tx, block, 0) else {
            continue;
        };
        let Ok(b) = engine.tx_read(&mut cpu, &mut tx, block, 1) else {
            continue;
        };
        if engine.commit(&mut cpu, &mut tx).is_ok() {
            committed += 1;
            // Both words share one cache line, hence one stripe: the two
            // reads validated against the same version, so a committed
            // snapshot can be at most one update apart.
            assert!(a == b || a == b + 1, "torn read: {a} vs {b}");
        }
    }
    writer.join().expect("writer panicked");
    assert!(committed > 0, "reader must commit sometimes");
}
