//! The strongest structural test in the suite: after **every simulator
//! step** of a concurrent storm, walk the skip list's bottom level and
//! assert (a) all reachable nodes are live (no freed node is linked),
//! (b) keys are in order across marked nodes too, and (c) the chain
//! terminates. This is the harness that caught two real bugs during
//! development: an insert retry path whose search continuation re-entered
//! the duplicate check and retired its own linked node, and the insert's
//! upper-level cursor being clobbered by the refresh search.

mod common;

use common::{build_env, Instance, MixWorker, Target};
use st_machine::{Cpu, SimConfig, Simulator, StepOutcome, Topology, Worker};
use st_reclaim::Scheme;
use st_simheap::{Heap, TaggedPtr};
use st_structures::skiplist::{SkipShape, NODE_KEY, NODE_NEXT0};
use std::sync::Arc;

struct Checked {
    inner: MixWorker,
    shape: SkipShape,
    heap: Arc<Heap>,
}

fn level0_ok(heap: &Heap, shape: &SkipShape) -> Result<(), String> {
    for l in 0..st_structures::skiplist::MAX_LEVEL as u64 {
        level_ok(heap, shape, l)?;
    }
    Ok(())
}

fn level_ok(heap: &Heap, shape: &SkipShape, l: u64) -> Result<(), String> {
    let mut cur = TaggedPtr::from_word(heap.peek(shape.head, NODE_NEXT0 + l));
    let mut prev = shape.head;
    let mut last = 0u64;
    let mut hops = 0u32;
    while !cur.is_null() {
        let a = cur.addr();
        if a == shape.tail {
            return Ok(());
        }
        if a.is_null() || a.index() >= heap.capacity_words() {
            return Err(format!("L{l}: dangling edge out of {prev:?}"));
        }
        if !heap.is_live(a) {
            return Err(format!("L{l}: freed node linked: {prev:?} -> {a:?}"));
        }
        hops += 1;
        if hops > 50_000 {
            return Err(format!("L{l}: cycle"));
        }
        let key = heap.peek(a, NODE_KEY);
        let next = TaggedPtr::from_word(heap.peek(a, NODE_NEXT0 + l));
        if key < last || (key == last && next.marked()) {
            return Err(format!(
                "L{l}: key {key} out of order after {last}: edge {prev:?} -> {a:?}"
            ));
        }
        last = key;
        prev = a;
        cur = next;
    }
    Err(format!("L{l}: null before tail"))
}

impl Worker for Checked {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        let out = self.inner.step(cpu);
        if let Err(e) = level0_ok(&self.heap, &self.shape) {
            panic!(
                "invariant broken after a step of thread {}: {e}",
                cpu.thread_id
            );
        }
        out
    }
}

fn storm(scheme: Scheme, duration_cycles: u64) {
    let env = build_env(Target::SkipList, scheme, 8, 200, 42);
    let Instance::SkipList(shape) = env.instance.clone() else {
        unreachable!()
    };
    let workers: Vec<Checked> = (0..8)
        .map(|t| Checked {
            inner: MixWorker::new(env.factory.thread(t), env.instance.clone(), 400),
            shape,
            heap: env.heap.clone(),
        })
        .collect();
    let sim = Simulator::new(SimConfig {
        topology: Topology::haswell(),
        costs: st_machine::CostModel::default(),
        seed: 42,
        duration: duration_cycles,
        step_limit: None,
        faults: st_machine::FaultPlan::default(),
        controller: None,
    });
    let (report, _) = sim.run(workers);
    assert!(report.total_ops() > 100, "storm must do real work");
}

#[test]
fn skiplist_stepwise_under_epoch() {
    storm(Scheme::Epoch, 2_000_000);
}

#[test]
fn skiplist_stepwise_under_stacktrack() {
    storm(Scheme::StackTrack, 500_000);
}

#[test]
fn skiplist_stepwise_under_hazards() {
    storm(Scheme::Hazard, 500_000);
}

#[test]
fn skiplist_stepwise_under_original() {
    storm(Scheme::None, 500_000);
}

// ----------------------------------------------------------------------
// The same per-step discipline for the Harris list.
// ----------------------------------------------------------------------

struct CheckedList {
    inner: MixWorker,
    shape: st_structures::list::ListShape,
    heap: Arc<Heap>,
}

fn list_ok(heap: &Heap, shape: &st_structures::list::ListShape) -> Result<(), String> {
    use st_structures::list::{NODE_KEY, NODE_NEXT};
    let mut cur = TaggedPtr::from_word(heap.peek(shape.head, NODE_NEXT));
    let mut prev = shape.head;
    let mut last = 0u64;
    let mut hops = 0u32;
    while !cur.is_null() {
        let a = cur.addr();
        if a == shape.tail {
            return Ok(());
        }
        if a.is_null() || a.index() >= heap.capacity_words() {
            return Err(format!("dangling edge out of {prev:?}"));
        }
        if !heap.is_live(a) {
            return Err(format!("freed node linked: {prev:?} -> {a:?}"));
        }
        hops += 1;
        if hops > 50_000 {
            return Err("cycle".into());
        }
        let key = heap.peek(a, NODE_KEY);
        let next = TaggedPtr::from_word(heap.peek(a, NODE_NEXT));
        if key < last || (key == last && next.marked()) {
            return Err(format!("key {key} out of order after {last}"));
        }
        last = key;
        prev = a;
        cur = next;
    }
    Err("null before tail".into())
}

impl Worker for CheckedList {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        let out = self.inner.step(cpu);
        if let Err(e) = list_ok(&self.heap, &self.shape) {
            panic!(
                "list invariant broken after a step of thread {}: {e}",
                cpu.thread_id
            );
        }
        out
    }
}

fn list_storm(scheme: Scheme) {
    let env = build_env(Target::List, scheme, 8, 100, 21);
    let Instance::List(shape) = env.instance.clone() else {
        unreachable!()
    };
    let workers: Vec<CheckedList> = (0..8)
        .map(|t| CheckedList {
            inner: MixWorker::new(env.factory.thread(t), env.instance.clone(), 200),
            shape,
            heap: env.heap.clone(),
        })
        .collect();
    let sim = Simulator::new(SimConfig {
        topology: Topology::haswell(),
        costs: st_machine::CostModel::default(),
        seed: 21,
        duration: 2_000_000,
        step_limit: None,
        faults: st_machine::FaultPlan::default(),
        controller: None,
    });
    let (report, _) = sim.run(workers);
    assert!(report.total_ops() > 50, "storm must do real work");
}

#[test]
fn list_stepwise_under_epoch() {
    list_storm(Scheme::Epoch);
}

#[test]
fn list_stepwise_under_stacktrack() {
    list_storm(Scheme::StackTrack);
}

#[test]
fn list_stepwise_under_dta() {
    list_storm(Scheme::Dta);
}

#[test]
fn list_stepwise_under_hazards() {
    list_storm(Scheme::Hazard);
}
