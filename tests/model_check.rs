//! Model-checking tier: bounded schedule exploration with the
//! linearizability and use-after-free oracles (`st-check` end to end).
//!
//! Three claims are established here:
//!
//! 1. **Soundness** — with every protocol intact, no explored schedule
//!    violates an oracle, for every structure × scheme pair.
//! 2. **Teeth** — deliberately breaking a protocol invariant (StackTrack's
//!    scan consistency re-read, Hazard's deferred publication) is caught
//!    by exploration within the default bounds, deterministically.
//! 3. **Replayability** — a failure shrinks to a token string that, parsed
//!    back, reproduces the same violation.

use st_check::{
    check, replay, CheckConfig, ExploreConfig, ExploreMode, Mutation, ReplayToken, Structure,
    Violation,
};
use st_reclaim::Scheme;

/// The exploration bound used by every mutation-detection test and its
/// intact twin: systematic DFS, three forced preemptions, branching on
/// the first sixteen scheduling decisions.
fn deep_dfs() -> ExploreConfig {
    ExploreConfig {
        mode: ExploreMode::Dfs {
            depth: 16,
            preemption_bound: 3,
        },
        max_schedules: 50_000,
    }
}

/// The workload on which the splits-recheck mutation is detectable:
/// two threads, one op each. Seed 104 generates the scripts
/// t0=[Delete(4)], t1=[Delete(2)] over the prepopulated list [2, 4],
/// so t0's traversal holds node 2 as its predecessor frame slot while
/// t1 unlinks, retires, and scans for it.
fn splits_config(mutation: Mutation) -> CheckConfig {
    CheckConfig {
        structure: Structure::List,
        scheme: Scheme::StackTrack,
        threads: 2,
        ops_per_thread: 1,
        key_range: 4,
        seed: 104,
        mutation,
        ..CheckConfig::default()
    }
}

/// Workload for the hazard-pointer mutation: enough ops that a retire
/// lands between a traversal's guard publication and its validation.
fn hazard_config(mutation: Mutation) -> CheckConfig {
    CheckConfig {
        structure: Structure::List,
        scheme: Scheme::Hazard,
        threads: 3,
        ops_per_thread: 6,
        key_range: 4,
        seed: 1,
        mutation,
        ..CheckConfig::default()
    }
}

/// Workload for the NBR mutation: the same shape as the hazard race. NBR
/// frees retired nodes the instant no reservation covers them, counting
/// on neutralization to restart any read-phase traversal left holding a
/// stale pointer — so ignoring the signal reopens the identical
/// unprotected-traversal-vs-immediate-free window.
fn nbr_config(mutation: Mutation) -> CheckConfig {
    CheckConfig {
        structure: Structure::List,
        scheme: Scheme::Nbr,
        threads: 3,
        ops_per_thread: 6,
        key_range: 4,
        seed: 1,
        mutation,
        ..CheckConfig::default()
    }
}

/// Workload for the Hyaline mutation: seed 104's two deletes of the
/// prepopulated keys guarantee a retire — and thus a batch dispatch — on
/// every schedule, including the no-deviation one.
fn hyaline_config(mutation: Mutation) -> CheckConfig {
    CheckConfig {
        structure: Structure::List,
        scheme: Scheme::Hyaline,
        threads: 2,
        ops_per_thread: 1,
        key_range: 4,
        seed: 104,
        mutation,
        ..CheckConfig::default()
    }
}

fn is_uaf(v: &Violation) -> bool {
    matches!(v, Violation::Uaf(_))
}

/// The typed-API smoke: the Harris list runs on `st_reclaim::mem`
/// (typed guards, `Shared` borrows, `Unlinked` retire proofs — see
/// docs/MEMORY_API.md), and the checker's oracles attach at that layer
/// generically — every `Shared` deref funnels through the instrumented
/// `load`/`load_ptr` the UAF oracle watches, and every `Unlinked::retire`
/// through the `retire` the heap ledger records. Deep-bound exploration
/// under the two schemes with the most distinctive protection protocols
/// (StackTrack segment scans, NBR neutralization signals) must stay
/// clean with no per-structure oracle wiring.
#[test]
fn typed_list_is_clean_under_stacktrack_and_nbr_at_deep_bounds() {
    for scheme in [Scheme::StackTrack, Scheme::Nbr] {
        let config = CheckConfig {
            structure: Structure::List,
            scheme,
            threads: 2,
            ops_per_thread: 2,
            key_range: 4,
            seed: 104,
            mutation: Mutation::None,
            ..CheckConfig::default()
        };
        let report = check(&config, &deep_dfs());
        assert!(
            report.passed(),
            "typed list under {scheme:?} violated an oracle: {:?}",
            report.failure
        );
        assert!(report.schedules_run > 0);
    }
}

/// The same smoke for the three structures ported after the list: the
/// skip list (per-level guard arrays, helping snips, deferred-ownership
/// retires), the queue (stash/unstash dummy handoff, head-swing
/// `cas_unlink`), and the red-black tree (lock `Field`, `Exclusive`
/// writer sections, `assume_unlinked` delete). Deep-bound exploration
/// under a transactional scheme (StackTrack), a per-pointer scheme
/// (Hazard), and a batch scheme (Hyaline) must stay clean — the typed
/// lowering adds no call the oracles do not already watch.
#[test]
fn typed_skiplist_is_clean_under_three_schemes_at_deep_bounds() {
    typed_structure_smoke(Structure::SkipList);
}

#[test]
fn typed_queue_is_clean_under_three_schemes_at_deep_bounds() {
    typed_structure_smoke(Structure::Queue);
}

#[test]
fn typed_rbtree_is_clean_under_three_schemes_at_deep_bounds() {
    typed_structure_smoke(Structure::RbTree);
}

fn typed_structure_smoke(structure: Structure) {
    for scheme in [Scheme::StackTrack, Scheme::Hazard, Scheme::Hyaline] {
        let config = CheckConfig {
            structure,
            scheme,
            threads: 2,
            ops_per_thread: 2,
            key_range: 4,
            seed: 104,
            mutation: Mutation::None,
            ..CheckConfig::default()
        };
        let report = check(&config, &deep_dfs());
        assert!(
            report.passed(),
            "typed {structure} under {scheme:?} violated an oracle: {:?}",
            report.failure
        );
        assert!(report.schedules_run > 0);
    }
}

#[test]
fn intact_protocols_pass_dfs_and_random_exploration() {
    for structure in [
        Structure::List,
        Structure::Hash,
        Structure::Queue,
        Structure::SkipList,
        Structure::RbTree,
    ] {
        for scheme in [
            Scheme::StackTrack,
            Scheme::Epoch,
            Scheme::Hazard,
            Scheme::Nbr,
            Scheme::Hyaline,
        ] {
            let config = CheckConfig {
                structure,
                scheme,
                mutation: Mutation::None,
                ..CheckConfig::default()
            };
            for (label, mode, budget) in [
                (
                    "dfs",
                    ExploreMode::Dfs {
                        depth: 12,
                        preemption_bound: 2,
                    },
                    300u64,
                ),
                ("random", ExploreMode::Random { percent: 25 }, 100),
            ] {
                let report = check(
                    &config,
                    &ExploreConfig {
                        mode,
                        max_schedules: budget,
                    },
                );
                assert!(
                    report.passed(),
                    "{structure}/{scheme:?} violated an oracle under {label} \
                     exploration: {:?}",
                    report.failure
                );
                assert!(report.schedules_run > 0);
            }
        }
    }
}

#[test]
fn mutated_splits_recheck_is_detected_by_dfs() {
    // Breaking Algorithm 1's consistency re-read (the `splits` counter
    // comparison that rejects torn frame snapshots) must let the scan
    // free a node that a concurrent traversal still references.
    let report = check(&splits_config(Mutation::SkipSplitsRecheck), &deep_dfs());
    let failure = report
        .failure
        .expect("splits mutation survived bounded exploration");
    assert!(
        failure.violations.iter().any(is_uaf),
        "expected a use-after-free, got {:?}",
        failure.violations
    );
    // Shrinking strips the schedule to its essential preemptions.
    assert!(
        failure.token.deviations.len() <= 4,
        "shrunk schedule still has {} deviations",
        failure.token.deviations.len()
    );

    // The identical exploration with the protocol intact is clean: the
    // re-read restarts the inspection and the scan finds the node.
    let report = check(&splits_config(Mutation::None), &deep_dfs());
    assert!(
        report.passed(),
        "intact splits recheck flagged a violation: {:?}",
        report.failure
    );
}

#[test]
fn mutated_hazard_validation_is_detected_by_dfs() {
    // Deferring the hazard-slot publication past validation reopens the
    // classic protect-then-check race: a retire between read and publish
    // frees the node the traversal is about to dereference.
    let report = check(&hazard_config(Mutation::DeferHazardPublish), &deep_dfs());
    let failure = report
        .failure
        .expect("hazard mutation survived bounded exploration");
    assert!(
        failure.violations.iter().any(is_uaf),
        "expected a use-after-free, got {:?}",
        failure.violations
    );

    let report = check(&hazard_config(Mutation::None), &deep_dfs());
    assert!(
        report.passed(),
        "intact hazard validation flagged a violation: {:?}",
        report.failure
    );
}

#[test]
fn mutated_nbr_neutralization_is_detected_by_dfs() {
    // An NBR thread that swallows its neutralization signal keeps
    // traversing through locals the signaling reclaimer has already
    // freed — the scheme has no other protection in the read phase, so
    // the use-after-free oracle must fire within the default bounds.
    let report = check(&nbr_config(Mutation::NbrSkipRestart), &deep_dfs());
    let failure = report
        .failure
        .expect("nbr mutation survived bounded exploration");
    assert!(
        failure.violations.iter().any(is_uaf),
        "expected a use-after-free, got {:?}",
        failure.violations
    );

    // Intact, the scheduler delivers the signal before the victim's next
    // step, the traversal restarts, and the same exploration is clean.
    let report = check(&nbr_config(Mutation::None), &deep_dfs());
    assert!(
        report.passed(),
        "intact NBR flagged a violation: {:?}",
        report.failure
    );
}

#[test]
fn mutated_hyaline_decrement_is_detected_by_dfs() {
    // Dropping the dispatcher's own reference decrement strands the first
    // batch at a positive count forever: its nodes are never freed and
    // the heap ledger reports them as leaks at teardown. The defect is
    // schedule-independent, so shrinking strips every deviation.
    let report = check(&hyaline_config(Mutation::HyalineDropDecrement), &deep_dfs());
    let failure = report
        .failure
        .expect("hyaline mutation survived bounded exploration");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Ledger(_))),
        "expected a ledger leak, got {:?}",
        failure.violations
    );
    assert!(
        failure.token.deviations.is_empty(),
        "a schedule-independent leak should shrink to no deviations, \
         kept {:?}",
        failure.token.deviations
    );

    let report = check(&hyaline_config(Mutation::None), &deep_dfs());
    assert!(
        report.passed(),
        "intact Hyaline flagged a violation: {:?}",
        report.failure
    );
}

#[test]
fn failure_token_reproduces_through_the_string_form() {
    let report = check(&splits_config(Mutation::SkipSplitsRecheck), &deep_dfs());
    let failure = report.failure.expect("no failure to replay");

    // Round-trip the token through its printed form, as a user pasting
    // `st-bench check --replay <token>` would.
    let printed = failure.token.to_string();
    let parsed: ReplayToken = printed.parse().unwrap_or_else(|e| {
        panic!("token {printed:?} failed to parse: {e}");
    });
    assert_eq!(parsed, failure.token);

    let outcome = replay(&parsed);
    assert!(
        outcome.violations.iter().any(is_uaf),
        "replaying {printed} did not reproduce the violation: {:?}",
        outcome.violations
    );

    // Replay is deterministic: a second run reports the identical
    // violation list.
    let again = replay(&parsed);
    assert_eq!(outcome.violations, again.violations);
}

#[test]
fn randomized_mode_also_finds_the_hazard_race() {
    // The PCT-style fallback must catch the coarse hazard race too (it
    // needs no precisely placed preemptions), and its failure must carry
    // a replayable token even when the violating schedule was random.
    let report = check(
        &hazard_config(Mutation::DeferHazardPublish),
        &ExploreConfig {
            mode: ExploreMode::Random { percent: 30 },
            max_schedules: 3_000,
        },
    );
    let failure = report.failure.expect("random mode missed the hazard race");
    let outcome = replay(&failure.token);
    assert!(
        outcome.violations.iter().any(is_uaf),
        "random-mode token did not replay: {:?}",
        outcome.violations
    );
}
