//! Property tests on the substrates: allocator soundness, tagged-pointer
//! codec, HTM serializability, and scanner completeness.

use proptest::prelude::*;
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_simheap::{Addr, Heap, HeapConfig, TaggedPtr};
use st_simhtm::{HtmConfig, HtmEngine};
use std::collections::HashMap;
use std::sync::Arc;

fn cpu(thread: usize) -> Cpu {
    let topo = Topology::haswell();
    Cpu::new(
        thread,
        HwContext::new(&topo, topo.place(thread)),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        0xF00 + thread as u64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Live allocations never overlap, stay 8-aligned, and survive
    /// arbitrary interleavings of allocs and frees.
    #[test]
    fn allocator_soundness(script in prop::collection::vec((1usize..40, any::<bool>()), 1..200)) {
        let heap = Heap::new(HeapConfig {
            capacity_words: 1 << 16,
            ..HeapConfig::default()
        });
        let mut live: Vec<(Addr, usize)> = Vec::new();
        for (words, free_one) in script {
            if free_one && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                let mut c = cpu(0);
                heap.free(&mut c, addr);
                prop_assert!(!heap.is_live(addr));
            } else if let Ok(addr) = heap.alloc_untimed(words) {
                prop_assert_eq!(addr.raw() % 8, 0);
                prop_assert!(heap.is_live(addr));
                // No overlap with any other live object.
                let block = heap.block_len(addr).unwrap();
                for &(other, other_words) in &live {
                    let ob = heap.block_len(other).unwrap().max(other_words as u64);
                    let disjoint = addr.index() + block <= other.index()
                        || other.index() + ob <= addr.index();
                    prop_assert!(disjoint, "overlap {addr:?} and {other:?}");
                }
                live.push((addr, words));
            }
        }
        // Interior resolution agrees with the ground truth.
        for &(addr, words) in &live {
            for off in 0..words as u64 {
                prop_assert_eq!(heap.object_base(addr.offset(off).raw()), Some(addr));
            }
        }
    }

    /// Tagged pointers round-trip through memory words.
    #[test]
    fn tagged_pointer_roundtrip(index in 1u64..(1 << 40), tag in 0u64..8) {
        let p = TaggedPtr::new(Addr::from_index(index), tag);
        let q = TaggedPtr::from_word(p.word());
        prop_assert_eq!(q.addr(), Addr::from_index(index));
        prop_assert_eq!(q.tag(), tag);
        prop_assert_eq!(q.marked(), tag & 1 == 1);
    }

    /// Committed transactions are serializable: concurrent counter
    /// increments through interleaved transactions never lose updates.
    #[test]
    fn htm_increments_are_serializable(script in prop::collection::vec(0usize..3, 10..200)) {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 14,
            ..HeapConfig::default()
        }));
        let engine = HtmEngine::new(heap.clone(), HtmConfig::default(), 3);
        let counter = heap.alloc_untimed(1).unwrap();
        let mut cpus: Vec<Cpu> = (0..3).map(cpu).collect();
        let mut txs: Vec<Option<st_simhtm::Tx>> = vec![None, None, None];
        let mut commits = 0u64;

        for t in script {
            let c = &mut cpus[t];
            match txs[t].take() {
                None => {
                    // Begin + read-increment-buffer.
                    let mut tx = engine.begin(c);
                    if let Ok(v) = engine.tx_read(c, &mut tx, counter, 0) {
                        if engine.tx_write(c, &mut tx, counter, 0, v + 1).is_ok() {
                            txs[t] = Some(tx);
                        }
                    }
                }
                Some(mut tx) => {
                    if engine.commit(c, &mut tx).is_ok() {
                        commits += 1;
                    }
                }
            }
        }
        // Abandoned transactions never published; the counter equals the
        // number of successful commits exactly (no lost updates).
        prop_assert_eq!(heap.peek(counter, 0), commits);
    }

    /// The scanner never misses a planted reference: any word pattern
    /// placed in a committed shadow slot protects its node.
    #[test]
    fn scanner_has_no_false_negatives(tag in 0u64..8, slot in 0usize..8) {
        use stacktrack::{StConfig, StRuntime, Step, OpMem};

        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::default()
        }));
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 2));
        let rt = StRuntime::new(
            engine,
            StConfig {
                initial_split_length: 1,
                max_free: 0,
                ..StConfig::default()
            },
            2,
        );
        let mut holder = rt.register_thread(0);
        let mut reclaimer = rt.register_thread(1);
        let mut cpu_h = rt.test_cpu(0);
        let mut cpu_r = rt.test_cpu(1);

        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw());

        // Hold a (possibly tagged) reference in an arbitrary slot.
        holder.begin_op(&mut cpu_h, 0, 8);
        let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            if m.get_local(cpu, slot) == 0 {
                let p = m.load(cpu, cell, 0)?;
                m.set_local(cpu, slot, p | tag);
            }
            Ok(Step::Continue)
        };
        for _ in 0..3 {
            holder.step_op(&mut cpu_h, &mut hold);
        }

        use st_reclaim::SchemeThread;
        SchemeThread::run_op(&mut reclaimer, &mut cpu_r, 0, 1, &mut |m, cpu| {
            let cur = m.load(cpu, cell, 0)?;
            if cur != 0 {
                m.cas(cpu, cell, 0, cur, 0)?.expect("unlink");
                m.retire(cpu, Addr::from_raw(cur))?;
            }
            Ok(Step::Done(0))
        });
        while reclaimer.idle_work_pending() {
            reclaimer.step_idle(&mut cpu_r);
        }
        prop_assert!(heap.is_live(x), "scan missed slot {slot} with tag {tag}");
    }
}

/// A plain (non-proptest) regression: allocator recycling is type-stable
/// across thousands of random operations.
#[test]
fn allocator_recycles_within_class() {
    let heap = Heap::new(HeapConfig {
        capacity_words: 1 << 16,
        ..HeapConfig::default()
    });
    let mut freed_by_class: HashMap<u64, Addr> = HashMap::new();
    let mut c = cpu(0);
    for words in [3usize, 5, 9, 17, 3, 5, 9, 17] {
        let a = heap.alloc_untimed(words).unwrap();
        let class = heap.block_len(a).unwrap();
        if let Some(prev) = freed_by_class.get(&class) {
            assert_eq!(*prev, a, "class {class} must recycle LIFO");
        }
        heap.free(&mut c, a);
        freed_by_class.insert(class, a);
    }
}
