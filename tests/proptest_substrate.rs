//! Randomized property tests on the substrates: allocator soundness,
//! tagged-pointer codec, HTM serializability, and scanner completeness.
//!
//! Driven by the simulator's own deterministic `Pcg32` (seeded per case)
//! instead of an external property-testing crate — the build must work with
//! no registry access, and explicit seeds make failures replayable by
//! construction.

use st_machine::rng::Pcg32;
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_simheap::{Addr, Heap, HeapConfig, TaggedPtr};
use st_simhtm::{HtmConfig, HtmEngine};
use std::collections::HashMap;
use std::sync::Arc;

const CASES: u64 = 64;

fn cpu(thread: usize) -> Cpu {
    let topo = Topology::haswell();
    Cpu::new(
        thread,
        HwContext::new(&topo, topo.place(thread)),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        0xF00 + thread as u64,
    )
}

/// Live allocations never overlap, stay 8-aligned, and survive arbitrary
/// interleavings of allocs and frees.
#[test]
fn allocator_soundness() {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(0xa110_c8ed, case);
        let steps = 1 + rng.below(199);
        let heap = Heap::new(HeapConfig {
            capacity_words: 1 << 16,
            ..HeapConfig::default()
        });
        let mut live: Vec<(Addr, usize)> = Vec::new();
        for _ in 0..steps {
            let words = 1 + rng.below(39) as usize;
            let free_one = rng.chance(0.5);
            if free_one && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                let mut c = cpu(0);
                heap.free(&mut c, addr);
                assert!(!heap.is_live(addr), "case {case}");
            } else if let Ok(addr) = heap.alloc_untimed(words) {
                assert_eq!(addr.raw() % 8, 0, "case {case}");
                assert!(heap.is_live(addr), "case {case}");
                // No overlap with any other live object.
                let block = heap.block_len(addr).unwrap();
                for &(other, other_words) in &live {
                    let ob = heap.block_len(other).unwrap().max(other_words as u64);
                    let disjoint =
                        addr.index() + block <= other.index() || other.index() + ob <= addr.index();
                    assert!(disjoint, "case {case}: overlap {addr:?} and {other:?}");
                }
                live.push((addr, words));
            }
        }
        // Interior resolution agrees with the ground truth.
        for &(addr, words) in &live {
            for off in 0..words as u64 {
                assert_eq!(
                    heap.object_base(addr.offset(off).raw()),
                    Some(addr),
                    "case {case}"
                );
            }
        }
    }
}

/// Tagged pointers round-trip through memory words.
#[test]
fn tagged_pointer_roundtrip() {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(0x7a66_ed00, case);
        let index = 1 + rng.below((1 << 40) - 1);
        let tag = rng.below(8);
        let p = TaggedPtr::new(Addr::from_index(index), tag);
        let q = TaggedPtr::from_word(p.word());
        assert_eq!(q.addr(), Addr::from_index(index), "case {case}");
        assert_eq!(q.tag(), tag, "case {case}");
        assert_eq!(q.marked(), tag & 1 == 1, "case {case}");
    }
}

/// Committed transactions are serializable: concurrent counter increments
/// through interleaved transactions never lose updates.
#[test]
fn htm_increments_are_serializable() {
    for case in 0..CASES {
        let mut rng = Pcg32::new_stream(0x5e71_a11e, case);
        let steps = 10 + rng.below(190);
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 14,
            ..HeapConfig::default()
        }));
        let engine = HtmEngine::new(heap.clone(), HtmConfig::default(), 3);
        let counter = heap.alloc_untimed(1).unwrap();
        let mut cpus: Vec<Cpu> = (0..3).map(cpu).collect();
        let mut txs: Vec<Option<st_simhtm::Tx>> = vec![None, None, None];
        let mut commits = 0u64;

        for _ in 0..steps {
            let t = rng.below(3) as usize;
            let c = &mut cpus[t];
            match txs[t].take() {
                None => {
                    // Begin + read-increment-buffer.
                    let mut tx = engine.begin(c);
                    if let Ok(v) = engine.tx_read(c, &mut tx, counter, 0) {
                        if engine.tx_write(c, &mut tx, counter, 0, v + 1).is_ok() {
                            txs[t] = Some(tx);
                        }
                    }
                }
                Some(mut tx) => {
                    if engine.commit(c, &mut tx).is_ok() {
                        commits += 1;
                    }
                }
            }
        }
        // Abandoned transactions never published; the counter equals the
        // number of successful commits exactly (no lost updates).
        assert_eq!(heap.peek(counter, 0), commits, "case {case}");
    }
}

/// The scanner never misses a planted reference: any word pattern placed in
/// a committed shadow slot protects its node. Exhaustive over (tag, slot).
#[test]
fn scanner_has_no_false_negatives() {
    use stacktrack::{OpMem, StConfig, StRuntime, Step};

    for tag in 0u64..8 {
        for slot in 0usize..8 {
            let heap = Arc::new(Heap::new(HeapConfig {
                capacity_words: 1 << 18,
                ..HeapConfig::default()
            }));
            let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 2));
            let rt = StRuntime::new(
                engine,
                StConfig {
                    initial_split_length: 1,
                    max_free: 0,
                    ..StConfig::default()
                },
                2,
            );
            let mut holder = rt.register_thread(0);
            let mut reclaimer = rt.register_thread(1);
            let mut cpu_h = rt.test_cpu(0);
            let mut cpu_r = rt.test_cpu(1);

            let cell = heap.alloc_untimed(1).unwrap();
            let x = heap.alloc_untimed(2).unwrap();
            heap.poke(cell, 0, x.raw());

            // Hold a (possibly tagged) reference in an arbitrary slot.
            holder.begin_op(&mut cpu_h, 0, 8);
            let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
                if m.get_local(cpu, slot) == 0 {
                    let p = m.load(cpu, cell, 0)?;
                    m.set_local(cpu, slot, p | tag);
                }
                Ok(Step::Continue)
            };
            for _ in 0..3 {
                holder.step_op(&mut cpu_h, &mut hold);
            }

            // The reclaimer runs unguarded (StackTrack's transactions
            // protect its reads); winning the raw-word unlink CAS is the
            // `assume_unlinked` proof.
            use st_reclaim::mem::{Atomic, Mem, NodeType, Unlinked};
            use st_reclaim::SchemeThread;
            #[derive(Debug, Clone, Copy)]
            struct TwoWords;
            impl NodeType for TwoWords {
                const WORDS: usize = 2;
            }
            SchemeThread::run_op(&mut reclaimer, &mut cpu_r, 0, 1, &mut |m, cpu| {
                let mut mem = Mem::new(m, cpu);
                let a_cell = Atomic::<TwoWords>::root(cell, 0);
                let cur = a_cell.load_word(&mut mem)?;
                if cur != 0 {
                    a_cell.cas_word(&mut mem, cur, 0)?.expect("unlink");
                    Unlinked::<TwoWords>::assume_unlinked(cur).retire(&mut mem)?;
                }
                Ok(Step::Done(0))
            });
            while reclaimer.idle_work_pending() {
                reclaimer.step_idle(&mut cpu_r);
            }
            assert!(heap.is_live(x), "scan missed slot {slot} with tag {tag}");
        }
    }
}

/// A plain regression: allocator recycling is type-stable across repeated
/// alloc/free cycles.
#[test]
fn allocator_recycles_within_class() {
    let heap = Heap::new(HeapConfig {
        capacity_words: 1 << 16,
        ..HeapConfig::default()
    });
    let mut freed_by_class: HashMap<u64, Addr> = HashMap::new();
    let mut c = cpu(0);
    for words in [3usize, 5, 9, 17, 3, 5, 9, 17] {
        let a = heap.alloc_untimed(words).unwrap();
        let class = heap.block_len(a).unwrap();
        if let Some(prev) = freed_by_class.get(&class) {
            assert_eq!(*prev, a, "class {class} must recycle LIFO");
        }
        heap.free(&mut c, a);
        freed_by_class.insert(class, a);
    }
}
