//! Audit tier: the heap-ledger oracle and differential soak harness
//! (`st-bench audit`) end to end — see `docs/AUDIT.md`.
//!
//! Mirrors the claims of `tests/model_check.rs` for the soak harness:
//!
//! 1. **Teeth** — each seeded reclamation defect ([`Mutation::SkipFree`],
//!    [`Mutation::DoubleRetire`]) is caught by the ledger oracle within
//!    the PR-smoke budget, with a shrunk replay token that reproduces
//!    the finding.
//! 2. **Soundness** — with protocols intact, every scheme (including the
//!    reclaim-none reference) soaks clean at the same budget, faults
//!    included.
//! 3. **Artifacts** — the soak's metrics snapshot round-trips through
//!    the schema-v2 parser and the `audit.*` validator.

use st_bench::auditcmd::{audit_snapshot, soak, AuditOpts, ComboSummary};
use st_bench::report;
use st_check::{replay, Mutation, Structure, Violation};
use st_obs::audit;
use st_reclaim::Scheme;

/// The PR-smoke budget: enough episodes to flush each seeded defect
/// (both fire on the very first seed), small enough to stay fast. The
/// intact-protocols test runs at the same budget so "clean" and
/// "caught" are measured on equal footing.
fn smoke(structure: Structure, scheme: Scheme, mutation: Mutation) -> AuditOpts {
    AuditOpts {
        structures: vec![structure],
        schemes: vec![scheme],
        mutation,
        max_episodes: 8,
        budget_ms: 60_000,
        ..AuditOpts::default()
    }
}

fn sole_failure(combos: &[ComboSummary]) -> &(Vec<Violation>, st_check::ReplayToken) {
    assert_eq!(combos.len(), 1);
    combos[0]
        .failure
        .as_ref()
        .expect("the seeded defect must be caught within the smoke budget")
}

fn ledger_text(violations: &[Violation]) -> Vec<String> {
    violations
        .iter()
        .filter_map(|v| match v {
            Violation::Ledger(m) => Some(m.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn skipped_free_is_caught_as_a_leak_at_teardown() {
    let combos = soak(&smoke(
        Structure::List,
        Scheme::StackTrack,
        Mutation::SkipFree,
    ));
    let (violations, token) = sole_failure(&combos);
    let ledger = ledger_text(violations);
    assert!(
        ledger.iter().any(|m| m.starts_with("leak-at-teardown")),
        "a swallowed free verdict must surface as a leak, got {violations:?}"
    );

    // The shrunk token reproduces the leak, and survives the string
    // round-trip the CLI workflow relies on.
    let reparsed: st_check::ReplayToken = token.to_string().parse().expect("token parses back");
    assert_eq!(reparsed.to_string(), token.to_string());
    let outcome = replay(&reparsed);
    assert!(
        ledger_text(&outcome.violations)
            .iter()
            .any(|m| m.starts_with("leak-at-teardown")),
        "replay must reproduce the leak, got {:?}",
        outcome.violations
    );
}

#[test]
fn double_retire_is_caught_and_absorbed_by_the_ledger() {
    let combos = soak(&smoke(
        Structure::List,
        Scheme::Hazard,
        Mutation::DoubleRetire,
    ));
    let (violations, token) = sole_failure(&combos);
    let ledger = ledger_text(violations);
    assert!(
        ledger.iter().any(|m| m.starts_with("double-retire")),
        "the duplicated retire must be caught at the cycle it happens, got {violations:?}"
    );
    assert!(
        ledger.iter().any(|m| m.starts_with("double-free")),
        "the duplicated limbo entry must drain into a recorded double free, got {violations:?}"
    );
    // The heap absorbs a ledgered double free instead of crashing the
    // allocator, so the episode report carries attribution, not a panic.
    assert!(
        !violations.iter().any(|v| matches!(v, Violation::Panic(_))),
        "a ledgered double free must not panic the allocator, got {violations:?}"
    );

    let outcome = replay(token);
    assert!(
        ledger_text(&outcome.violations)
            .iter()
            .any(|m| m.starts_with("double-retire")),
        "replay must reproduce the double retire, got {:?}",
        outcome.violations
    );
}

#[test]
fn intact_schemes_soak_clean_at_the_same_budget() {
    let opts = AuditOpts {
        structures: vec![Structure::List, Structure::Hash],
        schemes: Scheme::all().to_vec(),
        max_episodes: 8,
        budget_ms: 60_000,
        faults: true,
        ..AuditOpts::default()
    };
    let combos = soak(&opts);
    assert_eq!(combos.len(), 16);
    for c in &combos {
        assert!(
            c.failure.is_none(),
            "{}/{}: intact protocols must soak clean, got {:?}",
            c.structure,
            c.scheme,
            c.failure
        );
        assert_eq!(
            c.episodes, 8,
            "{}/{}: full episode count",
            c.structure, c.scheme
        );
        assert!(
            c.retires > 0,
            "{}/{}: workload must retire",
            c.structure,
            c.scheme
        );
        if c.scheme == Scheme::None {
            assert_eq!(c.frees, 0, "the reference scheme never frees");
        } else {
            assert!(
                c.frees > 0,
                "{}/{}: scheme must free",
                c.structure,
                c.scheme
            );
        }
    }
}

#[test]
fn audit_snapshot_round_trips_and_validates() {
    let opts = AuditOpts {
        structures: vec![Structure::List],
        schemes: vec![Scheme::Epoch, Scheme::None],
        max_episodes: 3,
        budget_ms: 60_000,
        ..AuditOpts::default()
    };
    let combos = soak(&opts);
    let doc = audit_snapshot("audit_test", opts.budget_ms, &combos);
    let runs = report::parse_metrics_snapshot(&doc.to_pretty_string()).expect("snapshot parses");
    assert_eq!(runs.len(), 2);
    report::validate_per_thread(&runs).expect("per-thread envelope is consistent");
    assert_eq!(report::validate_audit(&runs), Ok(2));
    for run in &runs {
        assert_eq!(run.metrics.counter(audit::EPISODES), 3);
        assert_eq!(run.metrics.counter(audit::VIOLATIONS), 0);
        assert!(run.metrics.counter(audit::RETIRES) > 0);
    }
}

#[test]
fn a_caught_defect_lands_in_the_violation_counters() {
    let combos = soak(&smoke(
        Structure::List,
        Scheme::StackTrack,
        Mutation::SkipFree,
    ));
    let doc = audit_snapshot("audit_teeth", 1, &combos);
    let runs = report::parse_metrics_snapshot(&doc.to_pretty_string()).expect("snapshot parses");
    assert_eq!(report::validate_audit(&runs), Ok(1));
    assert!(
        runs[0].metrics.counter(audit::V_LEAK) > 0,
        "the leak must be classified under audit.violations.leak"
    );
    assert_eq!(
        runs[0].metrics.counter(audit::VIOLATIONS),
        audit::VIOLATION_COUNTERS
            .iter()
            .map(|&k| runs[0].metrics.counter(k))
            .sum::<u64>()
    );
}
