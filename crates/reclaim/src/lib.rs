//! Concurrent memory reclamation schemes behind one interface.
//!
//! The paper's evaluation (section 6) compares StackTrack against four
//! comparators; all are implemented here, each as a per-thread executor
//! that drives the same scheme-neutral operation bodies
//! ([`stacktrack::OpMem`]):
//!
//! - [`none`]: the *Original* baseline — no reclamation at all (retired
//!   nodes leak). The performance ceiling.
//! - [`epoch`]: quiescence/epoch-based reclamation. A per-thread timestamp
//!   is bumped (with a fence) at operation start and finish; a reclaimer
//!   waits until every in-operation thread has moved before freeing.
//!   Lightweight, but a preempted thread stalls everyone's frees.
//! - [`hazard`]: Michael's hazard pointers. Every pointer dereference
//!   publishes a hazard, fences, and revalidates — the per-hop fence is
//!   the scheme's famous cost.
//! - [`dta`]: Drop-the-Anchor (Braginsky, Kogan, Petrank), the
//!   hazard-eliding scheme the paper benchmarks on the linked list: an
//!   anchor is published (fence included) only every `K` hops, and a
//!   retired node is freed once every concurrently active thread has
//!   re-anchored twice past the retirement point. The original's *freezing*
//!   crash-recovery is substituted by conservative deferral (see
//!   DESIGN.md).
//! - [`refcount`]: lock-free reference counting (Valois-style), included
//!   as the ablation the paper argues about ("hazard pointers can be seen
//!   as an upper bound on the performance of reference-counting
//!   techniques") — a fetch-add per pointer hop.
//! - [`stacktrack_impl`]: the adapter that lets
//!   [`stacktrack::StThread`] be driven through the same trait.
//!
//! Two post-paper schemes extend the comparison beyond the paper's six
//! (see `docs/SCHEMES.md` and the "Beyond the paper" section of
//! EXPERIMENTS.md):
//!
//! - [`nbr`]: neutralization-based reclamation — fence-free restartable
//!   read phases, reservations only across write phases, and reclaimers
//!   that signal instead of waiting (delivered through the scheduler's
//!   [`st_machine::SignalBoard`]).
//! - [`hyaline`]: snapshot-free per-retire reference batching with
//!   handoff lists and a birth-era robustness bound.
//!
//! Pick a scheme with [`Scheme`] and build per-thread executors with
//! [`SchemeFactory::builder`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod dta;
pub mod epoch;
pub mod hazard;
pub mod hyaline;
pub mod mem;
pub mod nbr;
pub mod none;
pub mod refcount;
pub mod stacktrack_impl;

pub use api::SchemeThread;

#[cfg(test)]
pub(crate) mod test_support {
    use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
    use st_simheap::{Heap, HeapConfig};
    use std::sync::Arc;

    /// A small heap plus a standalone CPU for scheme unit tests.
    pub(crate) fn test_env() -> (Arc<Heap>, Cpu) {
        (Arc::new(Heap::new(HeapConfig::small())), test_cpu(0))
    }

    /// A standalone CPU on thread slot `id`.
    pub(crate) fn test_cpu(id: usize) -> Cpu {
        let topo = Topology::haswell();
        Cpu::new(
            id,
            HwContext::new(&topo, topo.place(id)),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            0xbeef + id as u64,
        )
    }
}

use st_simhtm::HtmEngine;
use stacktrack::{StConfig, StRuntime};
use std::sync::Arc;

/// The reclamation schemes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No reclamation (the paper's "Original").
    None,
    /// Quiescence/epoch-based reclamation.
    Epoch,
    /// Hazard pointers.
    Hazard,
    /// Drop-the-Anchor.
    Dta,
    /// Reference counting (ablation extra).
    RefCount,
    /// StackTrack.
    StackTrack,
    /// Neutralization-based reclamation (beyond-the-paper extra).
    Nbr,
    /// Hyaline reference batching (beyond-the-paper extra).
    Hyaline,
}

impl Scheme {
    /// Display name used in benchmark tables (matches the paper's legend).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::None => "Original",
            Scheme::Epoch => "Epoch",
            Scheme::Hazard => "Hazards",
            Scheme::Dta => "DTA",
            Scheme::RefCount => "RefCount",
            Scheme::StackTrack => "StackTrack",
            Scheme::Nbr => "NBR",
            Scheme::Hyaline => "Hyaline",
        }
    }

    /// All schemes: the paper's six in plotting order, then the
    /// beyond-the-paper extras.
    pub fn all() -> [Scheme; 8] {
        [
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Dta,
            Scheme::RefCount,
            Scheme::Nbr,
            Scheme::Hyaline,
        ]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parses the display name (as printed in benchmark tables and metrics
    /// snapshots) or the variant name, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "original" | "none" => Ok(Scheme::None),
            "epoch" => Ok(Scheme::Epoch),
            "hazards" | "hazard" => Ok(Scheme::Hazard),
            "dta" => Ok(Scheme::Dta),
            "refcount" | "rc" => Ok(Scheme::RefCount),
            "stacktrack" => Ok(Scheme::StackTrack),
            "nbr" => Ok(Scheme::Nbr),
            "hyaline" => Ok(Scheme::Hyaline),
            _ => Err(format!(
                "unknown scheme {s:?} (expected one of: {})",
                Scheme::all().map(|s| s.name()).join(", ")
            )),
        }
    }
}

/// Baseline-scheme tunables.
#[derive(Debug, Clone)]
pub struct ReclaimConfig {
    /// Limbo-list size that triggers an epoch wait / DTA sweep / hazard
    /// scan (comparable to StackTrack's `max_free`).
    pub retire_batch: usize,
    /// Hazard slots per thread.
    pub hazard_slots: usize,
    /// DTA: hops between anchor publications.
    pub dta_k: u32,
    /// DTA: era-clock lag (in retires) past which a sweeping thread
    /// freezes a peer out of the reclamation horizon; the peer restarts
    /// its operation on its next step. Freezing is always safe — a
    /// spurious freeze only costs the victim one operation restart — so
    /// the default sits close above the lag a healthy thread shows.
    /// `u64::MAX` disables freezing.
    pub dta_freeze_lag: u64,
    /// Epoch: cycles a reclaimer spins on a quiescence snapshot before
    /// giving up and hoarding instead. Sized just above the scheduler
    /// quantum so an ordinarily preempted thread is waited out (the
    /// paper's blocking behaviour and its >8-threads collapse), while a
    /// stalled or crashed thread only costs one budget before the
    /// reclaimer resumes operating with a growing limbo list.
    pub epoch_wait_budget: u64,
    /// **Mutation knob for the model checker — never enable in real
    /// runs.** Defers the hazard-pointer publish/fence/revalidate of
    /// `load_ptr` to the next step boundary, re-opening the protection
    /// race Michael's protocol closes. `st-check`'s mutation tests flip
    /// this to prove the use-after-free oracle has teeth.
    pub mutation_defer_hazard_publish: bool,
    /// **Mutation knob for the audit harness — never enable in real
    /// runs.** Makes a hazard-pointer thread's first retire enter the
    /// retired list twice (one-shot), seeding the double-retire /
    /// double-free defect the heap-ledger oracle must catch.
    pub mutation_double_retire: bool,
    /// Hyaline: retires aggregated into one dispatched batch. Smaller
    /// batches reclaim sooner but dispatch (and hand off) more often.
    pub hyaline_batch: usize,
    /// **Mutation knob for the model checker — never enable in real
    /// runs.** NBR's neutralization handler ignores the signal instead of
    /// restarting the read phase, so a traversal keeps dereferencing
    /// pointers the signaling reclaimer just freed — the use-after-free
    /// the restart protocol exists to prevent.
    pub mutation_nbr_skip_restart: bool,
    /// **Mutation knob for the audit harness — never enable in real
    /// runs.** One-shot: a Hyaline thread's first dispatch skips its own
    /// reference decrement, so that batch's counter never reaches zero
    /// and its nodes leak — the defect the heap-ledger oracle must catch.
    pub mutation_hyaline_drop_decrement: bool,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        Self {
            retire_batch: 0,
            hazard_slots: 8,
            dta_k: 20,
            dta_freeze_lag: 128,
            epoch_wait_budget: 2_500_000,
            mutation_defer_hazard_publish: false,
            mutation_double_retire: false,
            hyaline_batch: 8,
            mutation_nbr_skip_restart: false,
            mutation_hyaline_drop_decrement: false,
        }
    }
}

/// Shared state of the one scheme a [`SchemeFactory`] builds.
///
/// Exactly one variant exists per factory; the exhaustive `match` in
/// [`SchemeFactoryBuilder::build`] is the single place scheme globals are
/// constructed.
enum SchemeGlobals {
    /// No reclamation: no shared state.
    None,
    /// Epoch timestamps.
    Epoch(Arc<epoch::EpochGlobals>),
    /// Hazard-pointer slots.
    Hazard(Arc<hazard::HazardGlobals>),
    /// DTA anchor records and era clock.
    Dta(Arc<dta::DtaGlobals>),
    /// Reference-count bias table.
    RefCount(Arc<refcount::RcGlobals>),
    /// The StackTrack runtime.
    StackTrack(Arc<StRuntime>),
    /// NBR reservation slots.
    Nbr(Arc<nbr::NbrGlobals>),
    /// Hyaline eras, slots, and handoff lists.
    Hyaline(Arc<hyaline::HyalineGlobals>),
}

/// Configures and creates a [`SchemeFactory`].
///
/// Obtained from [`SchemeFactory::builder`]; every knob has a default, so
/// the minimal path is `SchemeFactory::builder(scheme).engine(e).build()`.
pub struct SchemeFactoryBuilder {
    scheme: Scheme,
    engine: Option<Arc<HtmEngine>>,
    max_threads: usize,
    config: ReclaimConfig,
    st_config: StConfig,
    guard_requirement: Option<mem::GuardRequirement>,
}

impl SchemeFactoryBuilder {
    /// The HTM engine (and through it, the heap) the schemes run on.
    /// Required.
    pub fn engine(mut self, engine: Arc<HtmEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Thread slots to provision shared state for (default 1).
    pub fn max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// Baseline-scheme tunables (default [`ReclaimConfig::default`]).
    pub fn reclaim_config(mut self, config: ReclaimConfig) -> Self {
        self.config = config;
        self
    }

    /// StackTrack tunables; only consulted for [`Scheme::StackTrack`]
    /// (default [`StConfig::default`]).
    pub fn st_config(mut self, st_config: StConfig) -> Self {
        self.st_config = st_config;
        self
    }

    /// Derives [`ReclaimConfig::hazard_slots`] from a structure's declared
    /// [`mem::GuardRequirement`] instead of a hand-computed count.
    ///
    /// Harnesses that drive several structures through one factory pass
    /// the [`mem::GuardRequirement::max`] of their requirements. Applied
    /// in [`SchemeFactoryBuilder::build`], overriding whatever
    /// [`SchemeFactoryBuilder::reclaim_config`] carried — declare the
    /// requirement once, next to the structure's node layout, and the
    /// guard-slot sizing can never drift out of sync with it.
    pub fn guard_requirement(mut self, requirement: mem::GuardRequirement) -> Self {
        self.guard_requirement = Some(requirement);
        self
    }

    /// Constructs the factory, allocating only the selected scheme's
    /// shared state.
    ///
    /// # Panics
    ///
    /// Panics if [`SchemeFactoryBuilder::engine`] was not provided.
    pub fn build(mut self) -> SchemeFactory {
        let engine = self
            .engine
            .expect("SchemeFactoryBuilder requires .engine()");
        if let Some(requirement) = self.guard_requirement {
            self.config.hazard_slots = requirement.guards();
        }
        let globals = match self.scheme {
            Scheme::None => SchemeGlobals::None,
            Scheme::Epoch => SchemeGlobals::Epoch(Arc::new(epoch::EpochGlobals::new(
                engine.heap(),
                self.max_threads,
            ))),
            Scheme::Hazard => SchemeGlobals::Hazard(Arc::new(hazard::HazardGlobals::new(
                engine.heap(),
                self.max_threads,
                self.config.hazard_slots,
            ))),
            Scheme::Dta => SchemeGlobals::Dta(Arc::new(dta::DtaGlobals::new(
                engine.heap(),
                self.max_threads,
            ))),
            Scheme::RefCount => {
                SchemeGlobals::RefCount(Arc::new(refcount::RcGlobals::new(engine.heap())))
            }
            Scheme::StackTrack => SchemeGlobals::StackTrack(StRuntime::new(
                engine.clone(),
                self.st_config,
                self.max_threads,
            )),
            Scheme::Nbr => SchemeGlobals::Nbr(Arc::new(nbr::NbrGlobals::new(
                engine.heap(),
                self.max_threads,
                self.config.hazard_slots,
            ))),
            Scheme::Hyaline => SchemeGlobals::Hyaline(Arc::new(hyaline::HyalineGlobals::new(
                engine.heap(),
                self.max_threads,
            ))),
        };
        SchemeFactory {
            scheme: self.scheme,
            engine,
            config: self.config,
            globals,
        }
    }
}

/// Builds per-thread executors for one scheme over one engine/heap.
pub struct SchemeFactory {
    scheme: Scheme,
    engine: Arc<HtmEngine>,
    config: ReclaimConfig,
    globals: SchemeGlobals,
}

impl SchemeFactory {
    /// Starts configuring a factory for `scheme`.
    pub fn builder(scheme: Scheme) -> SchemeFactoryBuilder {
        SchemeFactoryBuilder {
            scheme,
            engine: None,
            max_threads: 1,
            config: ReclaimConfig::default(),
            st_config: StConfig::default(),
            guard_requirement: None,
        }
    }

    /// The scheme this factory builds.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The StackTrack runtime, when the scheme is StackTrack (for
    /// statistics extraction).
    pub fn st_runtime(&self) -> Option<&Arc<StRuntime>> {
        match &self.globals {
            SchemeGlobals::StackTrack(rt) => Some(rt),
            _ => None,
        }
    }

    /// Precise protection-publication regions for the heap's ABA
    /// re-exposure oracle: heap words that, while holding a pointer,
    /// forbid recycling its block. Hazard pointers and NBR publish such
    /// regions (hazard slots, write-phase reservations) — the other
    /// schemes protect via epochs/anchors/eras or scannable thread
    /// contexts, which legitimately hold stale values.
    pub fn protection_roots(&self) -> Vec<(st_simheap::Addr, u64)> {
        match &self.globals {
            SchemeGlobals::Hazard(globals) => vec![globals.region()],
            SchemeGlobals::Nbr(globals) => vec![globals.region()],
            _ => Vec::new(),
        }
    }

    /// Builds the executor for thread slot `thread_id`.
    pub fn thread(&self, thread_id: usize) -> Box<dyn SchemeThread> {
        match &self.globals {
            SchemeGlobals::None => Box::new(none::NoReclaimThread::new(self.engine.heap().clone())),
            SchemeGlobals::Epoch(globals) => Box::new(epoch::EpochThread::new(
                globals.clone(),
                self.engine.heap().clone(),
                thread_id,
                self.config.retire_batch,
                self.config.epoch_wait_budget,
            )),
            SchemeGlobals::Hazard(globals) => Box::new(hazard::HazardThread::new(
                globals.clone(),
                self.engine.heap().clone(),
                thread_id,
                self.config.retire_batch,
                self.config.mutation_defer_hazard_publish,
                self.config.mutation_double_retire,
            )),
            SchemeGlobals::Dta(globals) => Box::new(dta::DtaThread::new(
                globals.clone(),
                self.engine.heap().clone(),
                thread_id,
                self.config.dta_k,
                self.config.retire_batch,
                self.config.dta_freeze_lag,
            )),
            SchemeGlobals::RefCount(globals) => Box::new(refcount::RcThread::new(
                globals.clone(),
                self.engine.heap().clone(),
                self.config.hazard_slots,
            )),
            SchemeGlobals::StackTrack(rt) => Box::new(rt.register_thread(thread_id)),
            SchemeGlobals::Nbr(globals) => Box::new(nbr::NbrThread::new(
                globals.clone(),
                self.engine.heap().clone(),
                thread_id,
                self.config.retire_batch,
                self.config.mutation_nbr_skip_restart,
            )),
            SchemeGlobals::Hyaline(globals) => Box::new(hyaline::HyalineThread::new(
                globals.clone(),
                self.engine.heap().clone(),
                thread_id,
                if self.config.retire_batch > 0 {
                    self.config.retire_batch
                } else {
                    self.config.hyaline_batch
                },
                self.config.mutation_hyaline_drop_decrement,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_round_trip_through_fromstr() {
        for scheme in Scheme::all() {
            assert_eq!(scheme.name().parse::<Scheme>(), Ok(scheme));
            assert_eq!(
                scheme.name().to_uppercase().parse::<Scheme>(),
                Ok(scheme),
                "parsing must be case-insensitive"
            );
            assert_eq!(scheme.to_string(), scheme.name());
        }
        assert!("nonsense".parse::<Scheme>().is_err());
    }
}
