//! Concurrent memory reclamation schemes behind one interface.
//!
//! The paper's evaluation (section 6) compares StackTrack against four
//! comparators; all are implemented here, each as a per-thread executor
//! that drives the same scheme-neutral operation bodies
//! ([`stacktrack::OpMem`]):
//!
//! - [`none`]: the *Original* baseline — no reclamation at all (retired
//!   nodes leak). The performance ceiling.
//! - [`epoch`]: quiescence/epoch-based reclamation. A per-thread timestamp
//!   is bumped (with a fence) at operation start and finish; a reclaimer
//!   waits until every in-operation thread has moved before freeing.
//!   Lightweight, but a preempted thread stalls everyone's frees.
//! - [`hazard`]: Michael's hazard pointers. Every pointer dereference
//!   publishes a hazard, fences, and revalidates — the per-hop fence is
//!   the scheme's famous cost.
//! - [`dta`]: Drop-the-Anchor (Braginsky, Kogan, Petrank), the
//!   hazard-eliding scheme the paper benchmarks on the linked list: an
//!   anchor is published (fence included) only every `K` hops, and a
//!   retired node is freed once every concurrently active thread has
//!   re-anchored twice past the retirement point. The original's *freezing*
//!   crash-recovery is substituted by conservative deferral (see
//!   DESIGN.md).
//! - [`refcount`]: lock-free reference counting (Valois-style), included
//!   as the ablation the paper argues about ("hazard pointers can be seen
//!   as an upper bound on the performance of reference-counting
//!   techniques") — a fetch-add per pointer hop.
//! - [`stacktrack_impl`]: the adapter that lets
//!   [`stacktrack::StThread`] be driven through the same trait.
//!
//! Pick a scheme with [`Scheme`] and build per-thread executors with
//! [`SchemeFactory`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod dta;
pub mod epoch;
pub mod hazard;
pub mod none;
pub mod refcount;
pub mod stacktrack_impl;

pub use api::SchemeThread;

#[cfg(test)]
pub(crate) mod test_support {
    use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
    use st_simheap::{Heap, HeapConfig};
    use std::sync::Arc;

    /// A small heap plus a standalone CPU for scheme unit tests.
    pub(crate) fn test_env() -> (Arc<Heap>, Cpu) {
        (Arc::new(Heap::new(HeapConfig::small())), test_cpu(0))
    }

    /// A standalone CPU on thread slot `id`.
    pub(crate) fn test_cpu(id: usize) -> Cpu {
        let topo = Topology::haswell();
        Cpu::new(
            id,
            HwContext::new(&topo, topo.place(id)),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            0xbeef + id as u64,
        )
    }
}

use st_simhtm::HtmEngine;
use stacktrack::{StConfig, StRuntime};
use std::sync::Arc;

/// The reclamation schemes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No reclamation (the paper's "Original").
    None,
    /// Quiescence/epoch-based reclamation.
    Epoch,
    /// Hazard pointers.
    Hazard,
    /// Drop-the-Anchor.
    Dta,
    /// Reference counting (ablation extra).
    RefCount,
    /// StackTrack.
    StackTrack,
}

impl Scheme {
    /// Display name used in benchmark tables (matches the paper's legend).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::None => "Original",
            Scheme::Epoch => "Epoch",
            Scheme::Hazard => "Hazards",
            Scheme::Dta => "DTA",
            Scheme::RefCount => "RefCount",
            Scheme::StackTrack => "StackTrack",
        }
    }

    /// All schemes, in the paper's plotting order.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Dta,
            Scheme::RefCount,
        ]
    }
}

/// Baseline-scheme tunables.
#[derive(Debug, Clone)]
pub struct ReclaimConfig {
    /// Limbo-list size that triggers an epoch wait / DTA sweep / hazard
    /// scan (comparable to StackTrack's `max_free`).
    pub retire_batch: usize,
    /// Hazard slots per thread.
    pub hazard_slots: usize,
    /// DTA: hops between anchor publications.
    pub dta_k: u32,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        Self {
            retire_batch: 0,
            hazard_slots: 8,
            dta_k: 20,
        }
    }
}

/// Builds per-thread executors for one scheme over one engine/heap.
pub struct SchemeFactory {
    scheme: Scheme,
    engine: Arc<HtmEngine>,
    config: ReclaimConfig,
    st_runtime: Option<Arc<StRuntime>>,
    epoch: Option<Arc<epoch::EpochGlobals>>,
    hazard: Option<Arc<hazard::HazardGlobals>>,
    dta: Option<Arc<dta::DtaGlobals>>,
    refcount: Option<Arc<refcount::RcGlobals>>,
}

impl SchemeFactory {
    /// Creates a factory. `st_config` only matters for
    /// [`Scheme::StackTrack`].
    pub fn new(
        scheme: Scheme,
        engine: Arc<HtmEngine>,
        max_threads: usize,
        config: ReclaimConfig,
        st_config: StConfig,
    ) -> Self {
        let st_runtime = (scheme == Scheme::StackTrack)
            .then(|| StRuntime::new(engine.clone(), st_config, max_threads));
        let epoch = (scheme == Scheme::Epoch)
            .then(|| Arc::new(epoch::EpochGlobals::new(engine.heap(), max_threads)));
        let hazard = (scheme == Scheme::Hazard).then(|| {
            Arc::new(hazard::HazardGlobals::new(
                engine.heap(),
                max_threads,
                config.hazard_slots,
            ))
        });
        let dta = (scheme == Scheme::Dta)
            .then(|| Arc::new(dta::DtaGlobals::new(engine.heap(), max_threads)));
        let refcount =
            (scheme == Scheme::RefCount).then(|| Arc::new(refcount::RcGlobals::new(engine.heap())));
        Self {
            scheme,
            engine,
            config,
            st_runtime,
            epoch,
            hazard,
            dta,
            refcount,
        }
    }

    /// The scheme this factory builds.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The StackTrack runtime, when the scheme is StackTrack (for
    /// statistics extraction).
    pub fn st_runtime(&self) -> Option<&Arc<StRuntime>> {
        self.st_runtime.as_ref()
    }

    /// Builds the executor for thread slot `thread_id`.
    pub fn thread(&self, thread_id: usize) -> Box<dyn SchemeThread> {
        match self.scheme {
            Scheme::None => Box::new(none::NoReclaimThread::new(self.engine.heap().clone())),
            Scheme::Epoch => Box::new(epoch::EpochThread::new(
                self.epoch.clone().expect("epoch globals"),
                self.engine.heap().clone(),
                thread_id,
                self.config.retire_batch,
            )),
            Scheme::Hazard => Box::new(hazard::HazardThread::new(
                self.hazard.clone().expect("hazard globals"),
                self.engine.heap().clone(),
                thread_id,
            )),
            Scheme::Dta => Box::new(dta::DtaThread::new(
                self.dta.clone().expect("dta globals"),
                self.engine.heap().clone(),
                thread_id,
                self.config.dta_k,
                self.config.retire_batch,
            )),
            Scheme::RefCount => Box::new(refcount::RcThread::new(
                self.refcount.clone().expect("rc globals"),
                self.engine.heap().clone(),
                self.config.hazard_slots,
            )),
            Scheme::StackTrack => Box::new(
                self.st_runtime
                    .as_ref()
                    .expect("st runtime")
                    .register_thread(thread_id),
            ),
        }
    }
}
