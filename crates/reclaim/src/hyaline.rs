//! Hyaline (Nikolaev & Ravindran), the second "beyond the paper"
//! comparator: snapshot-free reclamation by per-retire reference batching.
//!
//! Where epochs wait for a global quiescence snapshot and hazard pointers
//! fence on every hop, Hyaline makes *retirement itself* carry the
//! bookkeeping. Retired nodes collect into small batches; when a batch is
//! full the retiring thread *dispatches* it: the batch gets a shared
//! reference counter initialized to one (the dispatcher's own reference)
//! plus one per active reader it is handed to, and a copy lands in each
//! such reader's handoff list. Every thread decrements the batches in its
//! handoff list when it finishes its current operation; whoever drops the
//! counter to zero frees the whole batch. No thread ever waits on another,
//! and there is no global scan — reclamation cost is spread evenly over
//! retires, which is the scheme's signature property.
//!
//! This implements the *robust* variant's era bound: the global era is
//! bumped at every dispatch, each node records its birth era, readers
//! publish the era they observe (at operation start and refreshed on every
//! pointer load, *before* the load — so any pointer a reader holds targets
//! a node born no later than its published era), and a batch whose oldest
//! member was born after a reader's published era skips that reader. A
//! stalled reader therefore pins only batches containing nodes that
//! existed before it stalled — a bounded set — while epoch's limbo lists
//! grow without bound behind the same straggler.
//!
//! Simulator mapping: batch reference counters live in heap words (their
//! updates are timed fetch-adds, and the lifecycle ledger audits the
//! headers like any block); the handoff lists and the birth-era map are
//! Rust-side shared state, charged through the heap operations that
//! accompany every transfer.

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Words between per-thread slot records (cache-line padding).
const SLOT_STRIDE: u64 = 8;
/// Slot word: 1 while the thread is inside an operation.
const SLOT_ACTIVE: u64 = 0;
/// Slot word: the newest global era the thread has observed.
const SLOT_ERA: u64 = 1;

/// A dispatched batch: a shared heap word holding the reference count and
/// the retired nodes it guards.
#[derive(Clone)]
struct Batch {
    /// One-word heap block holding the reference counter.
    header: Addr,
    /// The retired nodes; freed together when the counter hits zero.
    nodes: Arc<Vec<Addr>>,
    /// Thread that retired the nodes (its garbage gauge is credited back
    /// when the batch is freed).
    owner: usize,
}

/// Shared Hyaline state.
pub struct HyalineGlobals {
    heap_slots: Addr,
    era: Addr,
    max_threads: usize,
    /// Per-thread handoff lists (the lock-free lists of the real
    /// implementation; a mutex here models the same transfer, with the
    /// costs charged through the accompanying heap operations).
    mailboxes: Vec<Mutex<Vec<Batch>>>,
    /// Birth era of every live node allocated through the scheme; nodes
    /// prepopulated outside it default to era 0 (oldest, always handed
    /// off).
    births: Mutex<HashMap<u64, u64>>,
    /// Per-owner retired-but-not-freed gauges, credited back by whichever
    /// thread frees the batch.
    outstanding: Vec<AtomicU64>,
}

impl std::fmt::Debug for HyalineGlobals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyalineGlobals")
            .field("max_threads", &self.max_threads)
            .finish_non_exhaustive()
    }
}

impl HyalineGlobals {
    /// Allocates the per-thread slot records and the global era word.
    pub fn new(heap: &Arc<Heap>, max_threads: usize) -> Self {
        let heap_slots = heap
            .alloc_untimed((max_threads.max(1)) * SLOT_STRIDE as usize)
            .expect("heap too small for hyaline slots");
        let era = heap
            .alloc_untimed(1)
            .expect("heap too small for hyaline era");
        heap.poke(era, 0, 1); // era 0 is reserved for pre-scheme nodes
        Self {
            heap_slots,
            era,
            max_threads,
            mailboxes: (0..max_threads).map(|_| Mutex::new(Vec::new())).collect(),
            births: Mutex::new(HashMap::new()),
            outstanding: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn slot(&self, thread: usize) -> u64 {
        thread as u64 * SLOT_STRIDE
    }

    fn birth_of(&self, addr: Addr) -> u64 {
        self.births
            .lock()
            .unwrap()
            .get(&addr.raw())
            .copied()
            .unwrap_or(0)
    }
}

/// Per-thread Hyaline executor.
pub struct HyalineThread {
    globals: Arc<HyalineGlobals>,
    heap: Arc<Heap>,
    thread_id: usize,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    /// Retires collected toward the next dispatch.
    pending: Vec<Addr>,
    /// Batch size that triggers a dispatch.
    batch_size: usize,
    /// Newest global era this thread has published to its slot.
    published_era: Word,
    /// **Mutation knob for the audit harness — never enable in real
    /// runs.** One-shot: the first dispatch skips the dispatcher's own
    /// reference decrement, so that batch's counter can never reach zero
    /// — the retired nodes leak, which the heap-ledger oracle must catch.
    drop_decrement: bool,
    /// Batches dispatched (statistics).
    pub dispatches: u64,
    /// Batch copies handed to active readers (statistics).
    pub batch_handoffs: u64,
    /// Nodes returned to the allocator by this thread (statistics).
    pub freed: u64,
}

impl HyalineThread {
    /// Creates the executor for thread slot `thread_id`. `batch_size` is
    /// the dispatch granularity (at least 1); `drop_decrement` enables the
    /// leak-seeding mutation (audit/checker use only).
    pub fn new(
        globals: Arc<HyalineGlobals>,
        heap: Arc<Heap>,
        thread_id: usize,
        batch_size: usize,
        drop_decrement: bool,
    ) -> Self {
        Self {
            globals,
            heap,
            thread_id,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            pending: Vec::new(),
            batch_size: batch_size.max(1),
            published_era: 0,
            drop_decrement,
            dispatches: 0,
            batch_handoffs: 0,
            freed: 0,
        }
    }

    /// Publishes the current global era to this thread's slot. Must happen
    /// before any pointer load it covers: a pointer read afterwards targets
    /// a node born no later than the published era, which is what makes
    /// skipping this reader safe for younger batches.
    fn refresh_era(&mut self, cpu: &mut Cpu) {
        let e = self.heap.load(cpu, self.globals.era, 0);
        if e != self.published_era {
            let slot = self.globals.slot(self.thread_id);
            self.heap
                .store(cpu, self.globals.heap_slots, slot + SLOT_ERA, e);
            self.published_era = e;
        }
    }

    /// Drops one reference from `batch`, freeing its nodes if this was the
    /// last one.
    fn dec_ref(&mut self, cpu: &mut Cpu, batch: &Batch) {
        let prev = self.heap.fetch_add(cpu, batch.header, 0, (-1i64) as u64);
        debug_assert!(prev >= 1, "hyaline refcount underflow");
        if prev != 1 {
            return;
        }
        let mut births = self.globals.births.lock().unwrap();
        for &node in batch.nodes.iter() {
            births.remove(&node.raw());
        }
        drop(births);
        for &node in batch.nodes.iter() {
            self.heap.free(cpu, node);
            self.freed += 1;
        }
        self.globals.outstanding[batch.owner]
            .fetch_sub(batch.nodes.len() as u64, Ordering::Relaxed);
        // The header was never published as a node: direct free.
        self.heap.free_unpublished(cpu, batch.header);
    }

    /// Dispatches the pending retires: bump the era, hand a reference to
    /// every active reader whose published era reaches back to the batch's
    /// oldest member, then drop the dispatcher's own reference.
    fn dispatch(&mut self, cpu: &mut Cpu) {
        if self.pending.is_empty() {
            return;
        }
        let nodes = std::mem::take(&mut self.pending);
        let min_birth = nodes
            .iter()
            .map(|&n| self.globals.birth_of(n))
            .min()
            .unwrap_or(0);
        self.heap.fetch_add(cpu, self.globals.era, 0, 1);

        let mut recipients = Vec::new();
        for t in 0..self.globals.max_threads {
            if t == self.thread_id {
                continue;
            }
            let slot = self.globals.slot(t);
            let active = self
                .heap
                .load(cpu, self.globals.heap_slots, slot + SLOT_ACTIVE);
            if active == 0 {
                continue;
            }
            let reader_era = self
                .heap
                .load(cpu, self.globals.heap_slots, slot + SLOT_ERA);
            // Robustness bound: a reader whose published era predates every
            // node in the batch cannot be holding any of them — skip it.
            if reader_era < min_birth {
                continue;
            }
            recipients.push(t);
        }

        let header = self
            .heap
            .alloc(cpu, 1)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words");
        self.heap.store(cpu, header, 0, recipients.len() as u64 + 1);
        let batch = Batch {
            header,
            nodes: Arc::new(nodes),
            owner: self.thread_id,
        };
        for &t in &recipients {
            self.globals.mailboxes[t]
                .lock()
                .unwrap()
                .push(batch.clone());
            self.batch_handoffs += 1;
        }
        self.dispatches += 1;

        if std::mem::take(&mut self.drop_decrement) {
            // Seeded defect: the dispatcher forgets its own reference, so
            // the counter bottoms out at one and the batch never frees.
            return;
        }
        self.dec_ref(cpu, &batch);
    }

    /// Decrements every batch handed to this thread since its last drain.
    fn drain_mailbox(&mut self, cpu: &mut Cpu) {
        let handed = std::mem::take(&mut *self.globals.mailboxes[self.thread_id].lock().unwrap());
        for batch in handed {
            self.dec_ref(cpu, &batch);
        }
    }
}

impl OpMem for HyalineThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    /// A pointer hop: refresh the published era, then a plain load — no
    /// fence, no revalidation (the era store is what keeps younger batches
    /// delivered to this reader).
    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        _guard: usize,
    ) -> Result<Word, Abort> {
        self.refresh_era(cpu);
        Ok(self.heap.load(cpu, addr, off))
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        let addr = self
            .heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words");
        let era = self.heap.load(cpu, self.globals.era, 0);
        self.globals.births.lock().unwrap().insert(addr.raw(), era);
        addr
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        self.globals.outstanding[self.thread_id].fetch_add(1, Ordering::Relaxed);
        self.pending.push(addr);
        if self.pending.len() >= self.batch_size {
            self.dispatch(cpu);
        }
        Ok(())
    }

    fn protect_slot(&mut self, _cpu: &mut Cpu, _guard: usize, _value: Word) {
        // Reference batching needs no per-pointer publication.
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for HyalineThread {
    fn begin_op(&mut self, cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
        let slot = self.globals.slot(self.thread_id);
        let e = self.heap.load(cpu, self.globals.era, 0);
        self.heap
            .store(cpu, self.globals.heap_slots, slot + SLOT_ACTIVE, 1);
        self.heap
            .store(cpu, self.globals.heap_slots, slot + SLOT_ERA, e);
        self.published_era = e;
        self.heap.fence(cpu);
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                let slot = self.globals.slot(self.thread_id);
                self.heap
                    .store(cpu, self.globals.heap_slots, slot + SLOT_ACTIVE, 0);
                self.active = false;
                self.drain_mailbox(cpu);
                Some(v)
            }
        }
    }

    fn outstanding_garbage(&self) -> u64 {
        self.globals.outstanding[self.thread_id].load(Ordering::Relaxed)
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.hyaline.dispatches", self.dispatches);
        reg.add("scheme.hyaline.batch_handoffs", self.batch_handoffs);
        reg.add("scheme.hyaline.freed", self.freed);
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        // Deactivate first so peers tearing down after us skip our slot,
        // then release everything handed to us and dispatch the tail batch
        // (with everyone else inactive or draining later, it frees
        // immediately or on their drain).
        let slot = self.globals.slot(self.thread_id);
        self.heap
            .store(cpu, self.globals.heap_slots, slot + SLOT_ACTIVE, 0);
        self.active = false;
        self.drain_mailbox(cpu);
        self.dispatch(cpu);
    }

    fn scheme_name(&self) -> &'static str {
        "Hyaline"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};

    fn setup(threads: usize) -> (Arc<HyalineGlobals>, Arc<Heap>) {
        let (heap, _) = test_env();
        let globals = Arc::new(HyalineGlobals::new(&heap, threads));
        (globals, heap)
    }

    fn noop(th: &mut HyalineThread, cpu: &mut Cpu) {
        th.run_op(cpu, 0, 0, &mut |_, _| Ok(Step::Done(0)));
    }

    #[test]
    fn solo_dispatch_frees_immediately() {
        let (globals, heap) = setup(1);
        let mut th = HyalineThread::new(globals, heap.clone(), 0, 1, false);
        let mut cpu = test_cpu(0);
        let n = heap.alloc_untimed(2).unwrap();
        th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        assert!(!heap.is_live(n), "no active readers: freed at dispatch");
        assert_eq!(th.outstanding_garbage(), 0);
        assert_eq!(th.dispatches, 1);
        assert_eq!(th.batch_handoffs, 0);
    }

    #[test]
    fn active_reader_holds_the_batch_until_its_op_ends() {
        let (globals, heap) = setup(2);
        let mut writer = HyalineThread::new(globals.clone(), heap.clone(), 0, 1, false);
        let mut reader = HyalineThread::new(globals.clone(), heap.clone(), 1, 1, false);
        let mut cpu_w = test_cpu(0);
        let mut cpu_r = test_cpu(1);

        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw());

        // Reader parks mid-operation, holding X in a local.
        reader.begin_op(&mut cpu_r, 0, 1);
        let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            m.set_local(cpu, 0, v);
            Ok(Step::Continue)
        };
        reader.step_op(&mut cpu_r, &mut hold);

        // Writer retires X; the batch is handed to the reader, not freed.
        writer.run_op(&mut cpu_w, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, x)?;
            Ok(Step::Done(0))
        });
        assert!(heap.is_live(x), "handed-off batch must stay live");
        assert_eq!(writer.batch_handoffs, 1);
        assert_eq!(writer.outstanding_garbage(), 1);

        // Reader finishes: its drain drops the last reference and frees,
        // crediting the writer's garbage gauge.
        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        reader.step_op(&mut cpu_r, &mut fin);
        assert!(!heap.is_live(x));
        assert_eq!(writer.outstanding_garbage(), 0);
        assert_eq!(reader.freed, 1);
    }

    #[test]
    fn stale_era_reader_is_skipped() {
        let (globals, heap) = setup(2);
        let mut writer = HyalineThread::new(globals.clone(), heap.clone(), 0, 1, false);
        let mut reader = HyalineThread::new(globals.clone(), heap.clone(), 1, 1, false);
        let mut cpu_w = test_cpu(0);
        let mut cpu_r = test_cpu(1);

        // Reader activates at the current era and stalls without touching
        // anything younger.
        reader.begin_op(&mut cpu_r, 0, 0);

        // Writer allocates (and links nowhere the reader can see) after
        // the reader froze, then retires: the node's birth era postdates
        // the reader's slot, so the batch skips it entirely.
        writer.run_op(&mut cpu_w, 0, 0, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        // One dispatch already happened inside the op above (batch 1), so
        // the era the node was born under is younger than the reader's.
        writer.run_op(&mut cpu_w, 0, 0, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        assert_eq!(
            writer.batch_handoffs, 1,
            "the first batch's node was born at the reader's era and is \
             handed off; the second batch's node was born after the era \
             bump of the first dispatch and must skip the reader"
        );
        assert_eq!(writer.outstanding_garbage(), 1, "only batch 1 pinned");
    }

    #[test]
    fn prepopulated_nodes_default_to_the_oldest_era() {
        let (globals, heap) = setup(2);
        let mut writer = HyalineThread::new(globals.clone(), heap.clone(), 0, 1, false);
        let mut reader = HyalineThread::new(globals.clone(), heap.clone(), 1, 1, false);
        let mut cpu_w = test_cpu(0);
        let mut cpu_r = test_cpu(1);

        reader.begin_op(&mut cpu_r, 0, 0);
        // A node allocated outside the scheme (prepopulation) has no birth
        // record: it must be handed to every active reader.
        let n = heap.alloc_untimed(2).unwrap();
        writer.run_op(&mut cpu_w, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        assert_eq!(writer.batch_handoffs, 1);
        assert!(heap.is_live(n));
        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        reader.step_op(&mut cpu_r, &mut fin);
        assert!(!heap.is_live(n));
    }

    #[test]
    fn batches_aggregate_to_the_configured_size() {
        let (globals, heap) = setup(1);
        let mut th = HyalineThread::new(globals, heap.clone(), 0, 4, false);
        let mut cpu = test_cpu(0);
        for i in 0..8u64 {
            let n = heap.alloc_untimed(2).unwrap();
            th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
                m.retire_unlinked(cpu, n)?;
                Ok(Step::Done(0))
            });
            let expect = (i + 1) / 4;
            assert_eq!(th.dispatches, expect, "dispatch every 4 retires");
        }
        assert_eq!(th.outstanding_garbage(), 0);
    }

    #[test]
    fn teardown_drains_the_tail() {
        let (globals, heap) = setup(2);
        let mut a = HyalineThread::new(globals.clone(), heap.clone(), 0, 100, false);
        let mut b = HyalineThread::new(globals.clone(), heap.clone(), 1, 100, false);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        let n = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        assert!(heap.is_live(n), "batch 100 not reached: still pending");
        noop(&mut b, &mut cpu_b);
        a.teardown(&mut cpu_a);
        b.teardown(&mut cpu_b);
        assert!(!heap.is_live(n));
        assert_eq!(a.outstanding_garbage(), 0);
    }

    #[test]
    fn drop_decrement_mutation_leaks_the_first_batch() {
        let (globals, heap) = setup(1);
        let mut th = HyalineThread::new(globals, heap.clone(), 0, 1, true);
        let mut cpu = test_cpu(0);
        let n1 = heap.alloc_untimed(2).unwrap();
        let n2 = heap.alloc_untimed(2).unwrap();
        for n in [n1, n2] {
            th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
                m.retire_unlinked(cpu, n)?;
                Ok(Step::Done(0))
            });
        }
        th.teardown(&mut cpu);
        assert!(heap.is_live(n1), "mutated batch can never reach zero");
        assert!(!heap.is_live(n2), "one-shot: later batches are clean");
        assert_eq!(th.outstanding_garbage(), 1);
    }
}
