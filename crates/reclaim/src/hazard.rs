//! Hazard pointers (Michael 2004), the paper's main non-automatic
//! comparator.
//!
//! Every pointer dereference publishes the target in a per-thread hazard
//! slot, issues a full fence, and revalidates the source — "these
//! additional fence instructions ... induce significant overhead, as can
//! be seen in our experiments". Retired nodes collect in a per-thread
//! list; when it exceeds the scan threshold, the thread snapshots all
//! hazard slots and frees the unprotected nodes.

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::tagged::TAG_MASK;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::collections::HashSet;
use std::sync::Arc;

/// Shared hazard state: the hazard-slot matrix.
#[derive(Debug)]
pub struct HazardGlobals {
    slots: Addr,
    max_threads: usize,
    slots_per_thread: usize,
    stride: usize,
}

impl HazardGlobals {
    /// Allocates `max_threads * slots_per_thread` hazard words, padding
    /// each thread's block to a cache-line multiple (as Michael's
    /// implementation does, avoiding false sharing between publishers).
    pub fn new(heap: &Arc<Heap>, max_threads: usize, slots_per_thread: usize) -> Self {
        let stride = slots_per_thread.next_multiple_of(8);
        let slots = heap
            .alloc_untimed((max_threads * stride).max(1))
            .expect("heap too small for hazard slots");
        Self {
            slots,
            max_threads,
            slots_per_thread,
            stride,
        }
    }

    /// Michael's scan threshold: comfortably above the total hazard count
    /// so each scan amortizes over many retires.
    pub fn scan_threshold(&self) -> usize {
        2 * self.max_threads * self.slots_per_thread
    }

    /// The hazard-slot matrix as a `(base, words)` region — the precise
    /// set of published protections, suitable as a re-exposure root for
    /// the heap's use-after-free oracle.
    pub fn region(&self) -> (Addr, u64) {
        (self.slots, (self.max_threads * self.stride) as u64)
    }
}

/// Per-thread hazard-pointer executor.
pub struct HazardThread {
    globals: Arc<HazardGlobals>,
    heap: Arc<Heap>,
    thread_id: usize,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    used_guards: u64,
    rlist: Vec<Addr>,
    /// Retired-list size that triggers a scan; 0 means
    /// [`HazardGlobals::scan_threshold`].
    retire_batch: usize,
    /// **Mutation knob for the model checker.** When set, `load_ptr` skips
    /// the publish-fence-revalidate protocol and only records the intended
    /// publication; it lands at the *start of the next step*, so the node
    /// is unprotected across a scheduling point — the bug class the
    /// protocol exists to prevent.
    defer_publish: bool,
    /// Publications deferred by the mutation: `(slot index, value)`.
    pending_publish: Vec<(u64, Word)>,
    /// **Mutation knob for the audit harness.** One-shot: the first
    /// retire is issued twice, planting a double-retire the heap ledger
    /// must catch (and, once both copies drain, a double free).
    double_retire: bool,
    /// Scans performed (statistics).
    pub scans: u64,
}

impl HazardThread {
    /// Creates the executor for thread slot `thread_id`. `retire_batch`
    /// overrides the scan threshold when non-zero; `defer_publish` enables
    /// the validation-disabling mutation, `double_retire` the one-shot
    /// retire-twice mutation (checker/audit use only).
    pub fn new(
        globals: Arc<HazardGlobals>,
        heap: Arc<Heap>,
        thread_id: usize,
        retire_batch: usize,
        defer_publish: bool,
        double_retire: bool,
    ) -> Self {
        Self {
            globals,
            heap,
            thread_id,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            used_guards: 0,
            rlist: Vec::new(),
            retire_batch,
            defer_publish,
            pending_publish: Vec::new(),
            double_retire,
            scans: 0,
        }
    }

    fn scan_trigger(&self) -> usize {
        if self.retire_batch > 0 {
            self.retire_batch
        } else {
            self.globals.scan_threshold()
        }
    }

    fn guard_index(&self, guard: usize) -> u64 {
        assert!(
            guard < self.globals.slots_per_thread,
            "hazard guard {guard} out of range"
        );
        (self.thread_id * self.globals.stride + guard) as u64
    }

    /// Scans all hazard slots and frees unprotected retired nodes.
    fn scan(&mut self, cpu: &mut Cpu) {
        self.scans += 1;
        let mut protected: HashSet<Word> =
            HashSet::with_capacity(self.globals.max_threads * self.globals.slots_per_thread);
        for t in 0..self.globals.max_threads {
            for g in 0..self.globals.slots_per_thread {
                let i = (t * self.globals.stride + g) as u64;
                let h = self.heap.load(cpu, self.globals.slots, i);
                if h != 0 {
                    protected.insert(h);
                }
            }
        }
        let retired = std::mem::take(&mut self.rlist);
        for node in retired {
            if protected.contains(&node.raw()) {
                self.rlist.push(node);
            } else {
                self.heap.free(cpu, node);
            }
        }
    }
}

impl OpMem for HazardThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    /// The hazard protocol: publish, fence, revalidate (and retry until
    /// the source is stable).
    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        guard: usize,
    ) -> Result<Word, Abort> {
        let slot = self.guard_index(guard);
        loop {
            let v = self.heap.load(cpu, addr, off);
            if v & !TAG_MASK == 0 {
                return Ok(v);
            }
            if self.defer_publish {
                // Mutation: no publish, no fence, no revalidation — the
                // hazard write is queued for the next step boundary.
                self.pending_publish.push((slot, v & !TAG_MASK));
                self.used_guards |= 1 << guard;
                return Ok(v);
            }
            self.heap
                .store(cpu, self.globals.slots, slot, v & !TAG_MASK);
            self.used_guards |= 1 << guard;
            self.heap.fence(cpu);
            if self.heap.load(cpu, addr, off) == v {
                return Ok(v);
            }
            // The source moved: the hazard may protect a stale node; retry.
        }
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        self.heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words")
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        self.rlist.push(addr);
        if std::mem::take(&mut self.double_retire) {
            // Seeded defect: the same node enters the retired list twice.
            self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
            self.rlist.push(addr);
        }
        if self.rlist.len() >= self.scan_trigger() {
            self.scan(cpu);
        }
        Ok(())
    }

    /// Copies an already-protected pointer into another hazard slot; no
    /// fence needed (see the trait docs).
    fn protect_slot(&mut self, cpu: &mut Cpu, guard: usize, value: Word) {
        let slot = self.guard_index(guard);
        self.heap
            .store(cpu, self.globals.slots, slot, value & !TAG_MASK);
        self.used_guards |= 1 << guard;
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for HazardThread {
    fn begin_op(&mut self, _cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
        self.used_guards = 0;
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        // Mutation mode: publications deferred by `load_ptr` land here, one
        // scheduling point too late.
        for (slot, value) in std::mem::take(&mut self.pending_publish) {
            self.heap.store(cpu, self.globals.slots, slot, value);
        }
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                // Publications still pending at op end are dead.
                self.pending_publish.clear();
                // Release the guards this operation touched.
                let mut used = self.used_guards;
                while used != 0 {
                    let g = used.trailing_zeros() as usize;
                    used &= used - 1;
                    let slot = self.guard_index(g);
                    self.heap.store(cpu, self.globals.slots, slot, 0);
                }
                self.active = false;
                Some(v)
            }
        }
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.hazard.scans", self.scans);
    }

    fn outstanding_garbage(&self) -> u64 {
        self.rlist.len() as u64
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        if !self.rlist.is_empty() {
            self.scan(cpu);
        }
    }

    fn scheme_name(&self) -> &'static str {
        "Hazards"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};

    fn setup(threads: usize) -> (Arc<HazardGlobals>, Arc<Heap>) {
        let (heap, _) = test_env();
        let globals = Arc::new(HazardGlobals::new(&heap, threads, 4));
        (globals, heap)
    }

    #[test]
    fn protected_load_publishes_hazard_and_fences() {
        let (globals, heap) = setup(1);
        let mut th = HazardThread::new(globals.clone(), heap.clone(), 0, 0, false, false);
        let mut cpu = test_cpu(0);
        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw() | 1); // marked pointer

        th.begin_op(&mut cpu, 0, 0);
        let fences_before = cpu.counters.fences;
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 2)?;
            Ok(Step::Done(v))
        };
        let v = th.step_op(&mut cpu, &mut body).unwrap();
        assert_eq!(v, x.raw() | 1, "tag bits pass through");
        assert!(cpu.counters.fences > fences_before, "hazard costs a fence");
        // Slot cleared at op end.
        assert_eq!(heap.peek(globals.slots, 2), 0);
    }

    #[test]
    fn hazarded_node_survives_scan() {
        let (globals, heap) = setup(2);
        let mut holder = HazardThread::new(globals.clone(), heap.clone(), 0, 0, false, false);
        let mut reclaimer = HazardThread::new(globals.clone(), heap.clone(), 1, 0, false, false);
        let mut cpu_h = test_cpu(0);
        let mut cpu_r = test_cpu(1);

        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw());

        // Holder publishes a hazard on X and stays inside its operation.
        holder.begin_op(&mut cpu_h, 0, 1);
        let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            m.set_local(cpu, 0, v);
            Ok(Step::Continue)
        };
        holder.step_op(&mut cpu_h, &mut hold);

        // Reclaimer retires X and scans explicitly.
        reclaimer.rlist.push(x);
        reclaimer.scan(&mut cpu_r);
        assert!(heap.is_live(x), "hazard must protect X");
        assert_eq!(reclaimer.outstanding_garbage(), 1);

        // Holder finishes; the next scan frees X.
        let mut finish = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        holder.step_op(&mut cpu_h, &mut finish);
        reclaimer.scan(&mut cpu_r);
        assert!(!heap.is_live(x));
        assert_eq!(reclaimer.outstanding_garbage(), 0);
    }

    #[test]
    fn scan_triggers_at_threshold() {
        let (globals, heap) = setup(1);
        let threshold = globals.scan_threshold();
        let mut th = HazardThread::new(globals, heap.clone(), 0, 0, false, false);
        let mut cpu = test_cpu(0);

        for i in 0..threshold {
            th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
                let n = m.alloc(cpu, 2);
                m.retire_unlinked(cpu, n)?;
                Ok(Step::Done(0))
            });
            if i < threshold - 1 {
                assert_eq!(th.scans, 0);
            }
        }
        assert_eq!(th.scans, 1, "scan exactly at the threshold");
        assert_eq!(th.outstanding_garbage(), 0);
    }

    #[test]
    fn teardown_frees_everything() {
        let (globals, heap) = setup(1);
        let mut th = HazardThread::new(globals, heap.clone(), 0, 0, false, false);
        let mut cpu = test_cpu(0);
        let n = heap.alloc_untimed(2).unwrap();
        th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        th.teardown(&mut cpu);
        assert!(!heap.is_live(n));
    }

    #[test]
    fn null_loads_skip_the_protocol() {
        let (globals, heap) = setup(1);
        let mut th = HazardThread::new(globals, heap.clone(), 0, 0, false, false);
        let mut cpu = test_cpu(0);
        let cell = heap.alloc_untimed(1).unwrap();
        th.begin_op(&mut cpu, 0, 0);
        let fences = cpu.counters.fences;
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            Ok(Step::Done(v))
        };
        assert_eq!(th.step_op(&mut cpu, &mut body), Some(0));
        assert_eq!(cpu.counters.fences, fences, "null needs no hazard");
    }
}
