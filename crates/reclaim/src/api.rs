//! The scheme-neutral executor interface.

use st_machine::Cpu;
use st_obs::MetricsRegistry;
use st_simheap::Word;
use stacktrack::{OpBody, Step};

/// A per-thread executor for one reclamation scheme.
///
/// Mirrors [`stacktrack::StThread`]'s step-driven surface so data
/// structures and benchmarks drive every scheme identically: one
/// [`SchemeThread::step_op`] call executes one basic block of the
/// operation body.
pub trait SchemeThread {
    /// Starts an operation. `op_id` names the operation kind; `slots` is
    /// the number of traced locals it uses.
    fn begin_op(&mut self, cpu: &mut Cpu, op_id: u32, slots: usize);

    /// Executes one basic block; `Some(result)` when the operation is done.
    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word>;

    /// Whether deferred reclamation work must run before the next
    /// operation (StackTrack scans, epoch waits).
    fn idle_work_pending(&self) -> bool {
        false
    }

    /// Advances deferred reclamation work by one step.
    fn step_idle(&mut self, _cpu: &mut Cpu) {}

    /// Runs one operation to completion, draining idle work first.
    fn run_op(&mut self, cpu: &mut Cpu, op_id: u32, slots: usize, body: &mut OpBody<'_>) -> Word {
        while self.idle_work_pending() {
            self.step_idle(cpu);
        }
        self.begin_op(cpu, op_id, slots);
        loop {
            if let Some(v) = self.step_op(cpu, body) {
                return v;
            }
        }
    }

    /// Handles a neutralization signal delivered by the scheduler
    /// ([`st_machine::Worker::neutralize`] forwards here). Only NBR reacts
    /// — a signal caught in its restartable read phase abandons the
    /// current attempt; every other scheme ignores inter-thread signals.
    fn neutralize(&mut self, _cpu: &mut Cpu) {}

    /// Retired nodes not yet returned to the allocator.
    fn outstanding_garbage(&self) -> u64;

    /// StackTrack-specific statistics, when the executor is StackTrack.
    fn st_stats(&self) -> Option<stacktrack::StThreadStats> {
        None
    }

    /// Zeroes measurement statistics, keeping learned/reclamation state
    /// (benchmark warm-up support).
    fn reset_stats(&mut self) {}

    /// Reports this executor's counters into the shared metrics registry
    /// (schema in `docs/METRICS.md`): the common surface every scheme has
    /// (`reclaim.outstanding_garbage`, StackTrack stats when present) —
    /// schemes override to add their own `scheme.<name>.*` keys on top.
    fn report_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        if let Some(st) = self.st_stats() {
            st.report(reg);
        }
    }

    /// Best-effort drain of deferred frees at teardown (every other thread
    /// must be outside an operation for this to fully drain).
    fn teardown(&mut self, cpu: &mut Cpu);

    /// Scheme display name.
    fn scheme_name(&self) -> &'static str;
}

/// Convenience used by baseline executors: run the body once and panic on
/// an abort (baselines have no transactions to abort).
pub(crate) fn expect_step(result: Result<Step, st_simhtm::Abort>) -> Step {
    match result {
        Ok(step) => step,
        Err(abort) => unreachable!("abort without transactions: {abort}"),
    }
}
