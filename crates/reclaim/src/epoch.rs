//! Quiescence/epoch-based reclamation (the paper's "Epoch" comparator).
//!
//! "Every thread has a local timestamp, which it updates with every
//! operation start and finish. Before reclaiming a node, the free procedure
//! checks that all of the threads made progress, by taking a snapshot of
//! these timestamps and waiting for their progress (or change)."
//!
//! Concretely: timestamps live in shared memory, odd while the thread is
//! inside an operation and even while it is quiescent. A reclaimer snapshots
//! all timestamps after its own operation completes (so waiters never wait
//! on each other) and frees its limbo list once every snapshot entry has
//! either moved or is even. The wait is *bounded*: the reclaimer spins long
//! enough to ride out an ordinary scheduler preemption
//! ([`crate::ReclaimConfig::epoch_wait_budget`], sized to the quantum), and
//! that spinning is the >8-threads collapse of Figures 1 and 2 — one
//! preempted in-operation thread makes every reclaimer burn its budget.
//! Against a thread that stays gone (a stall or a crash), the budget
//! expires; the reclaimer then keeps operating and retiring, re-checking
//! the pinning straggler at each operation boundary, so its limbo list
//! hoards garbage without bound until the straggler moves — the robustness
//! failure the `st-bench robustness` experiment measures.

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::sync::Arc;

/// Words between per-thread timestamps (one cache line each, as real
/// implementations pad to avoid false sharing).
const TS_STRIDE: u64 = 8;

/// Shared epoch state: the timestamp array.
#[derive(Debug)]
pub struct EpochGlobals {
    timestamps: Addr,
    max_threads: usize,
}

impl EpochGlobals {
    /// Allocates the timestamp array for `max_threads` threads.
    pub fn new(heap: &Arc<Heap>, max_threads: usize) -> Self {
        let timestamps = heap
            .alloc_untimed((max_threads.max(1)) * TS_STRIDE as usize)
            .expect("heap too small for epoch timestamps");
        Self {
            timestamps,
            max_threads,
        }
    }
}

/// A pending quiescence wait.
#[derive(Debug)]
struct Wait {
    snapshot: Vec<Word>,
    cleared: Vec<bool>,
    /// Virtual time at which the reclaimer stops spinning and hoards.
    give_up_at: u64,
}

/// Per-thread epoch executor.
pub struct EpochThread {
    globals: Arc<EpochGlobals>,
    heap: Arc<Heap>,
    thread_id: usize,
    batch: usize,
    wait_budget: u64,
    timestamp: Word,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    limbo: Vec<Addr>,
    wait: Option<Wait>,
    /// Threads (and their stamps) that pinned an abandoned wait. While
    /// every one still shows its recorded stamp there is no point in a new
    /// snapshot — it would be pinned by the same stragglers.
    pinned_by: Vec<(usize, Word)>,
    /// Nodes returned to the allocator (statistics).
    pub freed: u64,
}

impl EpochThread {
    /// Creates the executor for thread slot `thread_id`.
    pub fn new(
        globals: Arc<EpochGlobals>,
        heap: Arc<Heap>,
        thread_id: usize,
        batch: usize,
        wait_budget: u64,
    ) -> Self {
        Self {
            globals,
            heap,
            thread_id,
            batch,
            wait_budget,
            timestamp: 0,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            limbo: Vec::new(),
            wait: None,
            pinned_by: Vec::new(),
            freed: 0,
        }
    }

    fn bump_timestamp(&mut self, cpu: &mut Cpu) {
        self.timestamp += 1;
        self.heap.store(
            cpu,
            self.globals.timestamps,
            self.thread_id as u64 * TS_STRIDE,
            self.timestamp,
        );
        self.heap.fence(cpu);
    }

    /// One round of the quiescence wait; returns `true` when finished
    /// (freed, or the spin budget expired and the wait was abandoned).
    fn wait_round(&mut self, cpu: &mut Cpu) -> bool {
        let Some(wait) = &mut self.wait else {
            return true;
        };
        let mut all_clear = true;
        for t in 0..self.globals.max_threads {
            if wait.cleared[t] {
                continue;
            }
            let now = self
                .heap
                .load(cpu, self.globals.timestamps, t as u64 * TS_STRIDE);
            // Progress, or quiescent (even), clears the thread.
            if now != wait.snapshot[t] || now % 2 == 0 {
                wait.cleared[t] = true;
            } else {
                all_clear = false;
            }
        }
        if all_clear {
            self.wait = None;
            self.pinned_by.clear();
            for node in std::mem::take(&mut self.limbo) {
                self.heap.free(cpu, node);
                self.freed += 1;
            }
            return true;
        }
        if cpu.now() >= wait.give_up_at {
            // The straggler outlasted the budget: stop spinning, remember
            // who pinned the snapshot, and go back to operating. Limbo is
            // kept and keeps growing — the hoarding failure mode.
            let wait = self.wait.take().expect("wait present");
            self.pinned_by = wait
                .cleared
                .iter()
                .enumerate()
                .filter(|&(_, &c)| !c)
                .map(|(t, _)| (t, wait.snapshot[t]))
                .collect();
            return true;
        }
        false
    }

    /// `true` while every straggler of the last abandoned wait still shows
    /// the stamp it was abandoned at (one load per straggler).
    fn stragglers_unmoved(&mut self, cpu: &mut Cpu) -> bool {
        if self.pinned_by.is_empty() {
            return false;
        }
        for i in 0..self.pinned_by.len() {
            let (t, stamp) = self.pinned_by[i];
            let now = self
                .heap
                .load(cpu, self.globals.timestamps, t as u64 * TS_STRIDE);
            if now != stamp {
                self.pinned_by.clear();
                return false;
            }
        }
        true
    }

    fn maybe_start_wait(&mut self, cpu: &mut Cpu) {
        if self.wait.is_some() || self.limbo.len() <= self.batch || self.stragglers_unmoved(cpu) {
            return;
        }
        self.arm_wait(cpu);
    }

    fn arm_wait(&mut self, cpu: &mut Cpu) {
        let snapshot: Vec<Word> = (0..self.globals.max_threads)
            .map(|t| {
                self.heap
                    .load(cpu, self.globals.timestamps, t as u64 * TS_STRIDE)
            })
            .collect();
        let cleared = snapshot
            .iter()
            .enumerate()
            .map(|(t, &ts)| t == self.thread_id || ts % 2 == 0)
            .collect();
        self.wait = Some(Wait {
            snapshot,
            cleared,
            give_up_at: cpu.now().saturating_add(self.wait_budget),
        });
    }
}

impl OpMem for EpochThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        _guard: usize,
    ) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        self.heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words")
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        self.limbo.push(addr);
        Ok(())
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for EpochThread {
    fn begin_op(&mut self, cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
        self.bump_timestamp(cpu); // odd: in operation
        debug_assert_eq!(self.timestamp % 2, 1);
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                self.active = false;
                self.bump_timestamp(cpu); // even: quiescent
                self.maybe_start_wait(cpu);
                Some(v)
            }
        }
    }

    fn idle_work_pending(&self) -> bool {
        self.wait.is_some()
    }

    fn step_idle(&mut self, cpu: &mut Cpu) {
        self.wait_round(cpu);
    }

    fn outstanding_garbage(&self) -> u64 {
        self.limbo.len() as u64
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.epoch.freed", self.freed);
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        if !self.limbo.is_empty() {
            if self.wait.is_none() {
                // Force a snapshot even below the batch threshold or with
                // a straggler on record.
                self.arm_wait(cpu);
            }
            // Bounded drain: if some thread never quiesces, the budget
            // expires and garbage stays — the scheme's documented failure
            // mode.
            for _ in 0..1_000 {
                if self.wait_round(cpu) {
                    break;
                }
            }
        }
    }

    fn scheme_name(&self) -> &'static str {
        "Epoch"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};

    fn setup(threads: usize) -> (Arc<EpochGlobals>, Arc<Heap>) {
        let (heap, _) = test_env();
        let globals = Arc::new(EpochGlobals::new(&heap, threads));
        (globals, heap)
    }

    /// Small spin budget so give-up paths are cheap to reach in tests.
    const BUDGET: u64 = 5_000;

    /// One operation that completes without retiring anything.
    fn noop(m: &mut EpochThread, cpu: &mut Cpu) {
        m.run_op(cpu, 0, 0, &mut |_, _| Ok(Step::Done(0)));
    }

    #[test]
    fn frees_after_quiescence() {
        let (globals, heap) = setup(2);
        let mut a = EpochThread::new(globals.clone(), heap.clone(), 0, 0, BUDGET);
        let mut b = EpochThread::new(globals, heap.clone(), 1, 0, BUDGET);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        // B runs one full op so its timestamp is even (quiescent).
        noop(&mut b, &mut cpu_b);

        // A retires a node; batch 0 arms the wait at op end, and with
        // everyone quiescent the first poll clears it.
        let node = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, node)?;
            Ok(Step::Done(0))
        });
        assert!(a.idle_work_pending(), "wait armed but not yet polled");
        a.step_idle(&mut cpu_a);
        assert!(!a.idle_work_pending());
        assert!(!heap.is_live(node));
        assert_eq!(a.outstanding_garbage(), 0);
    }

    #[test]
    fn in_operation_thread_makes_limbo_hoard() {
        let (globals, heap) = setup(2);
        let mut a = EpochThread::new(globals.clone(), heap.clone(), 0, 0, BUDGET);
        let mut b = EpochThread::new(globals, heap.clone(), 1, 0, BUDGET);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        // B parks inside an operation (odd timestamp, never progresses).
        b.begin_op(&mut cpu_b, 0, 0);

        // A spins one budget on the pinned snapshot, gives up, and then
        // hoards: every further retire grows the limbo list — the
        // scheme's failure mode.
        let mut nodes = Vec::new();
        for i in 0..50u64 {
            let node = heap.alloc_untimed(2).unwrap();
            nodes.push(node);
            a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
                m.retire_unlinked(cpu, node)?;
                Ok(Step::Done(0))
            });
            assert_eq!(a.outstanding_garbage(), i + 1, "hoards while B is live");
        }
        assert!(nodes.iter().all(|&n| heap.is_live(n)));

        // B completes: A's next op boundary sees the straggler moved and
        // re-arms; the op after that drains the fresh snapshot.
        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        b.step_op(&mut cpu_b, &mut fin);
        noop(&mut a, &mut cpu_a);
        noop(&mut a, &mut cpu_a);
        assert_eq!(a.outstanding_garbage(), 0);
        assert!(nodes.iter().all(|&n| !heap.is_live(n)));
    }

    #[test]
    fn reclaimers_do_not_deadlock_each_other() {
        let (globals, heap) = setup(2);
        let mut a = EpochThread::new(globals.clone(), heap.clone(), 0, 0, BUDGET);
        let mut b = EpochThread::new(globals, heap.clone(), 1, 0, BUDGET);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        let na = heap.alloc_untimed(2).unwrap();
        let nb = heap.alloc_untimed(2).unwrap();
        let mut retire_a = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.retire_unlinked(cpu, na)?;
            Ok(Step::Done(0))
        };
        let mut retire_b = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.retire_unlinked(cpu, nb)?;
            Ok(Step::Done(0))
        };
        // Each reclaimer snapshots at its own op boundary, when it is
        // already quiescent — so their polls clear each other, no deadlock.
        a.run_op(&mut cpu_a, 0, 0, &mut retire_a);
        b.run_op(&mut cpu_b, 0, 0, &mut retire_b);
        noop(&mut a, &mut cpu_a);
        noop(&mut b, &mut cpu_b);
        assert!(!heap.is_live(na));
        assert!(!heap.is_live(nb));
    }

    #[test]
    fn teardown_drains_when_everyone_is_idle() {
        let (globals, heap) = setup(1);
        let mut a = EpochThread::new(globals, heap.clone(), 0, 100, BUDGET);
        let mut cpu = test_cpu(0);
        let node = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, node)?;
            Ok(Step::Done(0))
        });
        assert_eq!(a.outstanding_garbage(), 1, "below batch: still in limbo");
        a.teardown(&mut cpu);
        assert_eq!(a.outstanding_garbage(), 0);
        assert!(!heap.is_live(node));
    }
}
