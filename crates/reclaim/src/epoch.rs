//! Quiescence/epoch-based reclamation (the paper's "Epoch" comparator).
//!
//! "Every thread has a local timestamp, which it updates with every
//! operation start and finish. Before reclaiming a node, the free procedure
//! checks that all of the threads made progress, by taking a snapshot of
//! these timestamps and waiting for their progress (or change)."
//!
//! Concretely: timestamps live in shared memory, odd while the thread is
//! inside an operation and even while it is quiescent. A reclaimer snapshots
//! all timestamps after its own operation completes (so waiters never wait
//! on each other) and frees its limbo list once every snapshot entry has
//! either moved or is even. The wait is the scheme's Achilles heel: one
//! preempted in-operation thread freezes *every* reclaimer, which is
//! exactly the >8-threads collapse in Figures 1 and 2.

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::sync::Arc;

/// Words between per-thread timestamps (one cache line each, as real
/// implementations pad to avoid false sharing).
const TS_STRIDE: u64 = 8;

/// Shared epoch state: the timestamp array.
#[derive(Debug)]
pub struct EpochGlobals {
    timestamps: Addr,
    max_threads: usize,
}

impl EpochGlobals {
    /// Allocates the timestamp array for `max_threads` threads.
    pub fn new(heap: &Arc<Heap>, max_threads: usize) -> Self {
        let timestamps = heap
            .alloc_untimed((max_threads.max(1)) * TS_STRIDE as usize)
            .expect("heap too small for epoch timestamps");
        Self {
            timestamps,
            max_threads,
        }
    }
}

/// A pending quiescence wait.
#[derive(Debug)]
struct Wait {
    snapshot: Vec<Word>,
    cleared: Vec<bool>,
}

/// Per-thread epoch executor.
pub struct EpochThread {
    globals: Arc<EpochGlobals>,
    heap: Arc<Heap>,
    thread_id: usize,
    batch: usize,
    timestamp: Word,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    limbo: Vec<Addr>,
    wait: Option<Wait>,
    /// Nodes returned to the allocator (statistics).
    pub freed: u64,
}

impl EpochThread {
    /// Creates the executor for thread slot `thread_id`.
    pub fn new(
        globals: Arc<EpochGlobals>,
        heap: Arc<Heap>,
        thread_id: usize,
        batch: usize,
    ) -> Self {
        Self {
            globals,
            heap,
            thread_id,
            batch,
            timestamp: 0,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            limbo: Vec::new(),
            freed: 0,
            wait: None,
        }
    }

    fn bump_timestamp(&mut self, cpu: &mut Cpu) {
        self.timestamp += 1;
        self.heap.store(
            cpu,
            self.globals.timestamps,
            self.thread_id as u64 * TS_STRIDE,
            self.timestamp,
        );
        self.heap.fence(cpu);
    }

    /// One round of the quiescence wait; returns `true` when finished.
    fn wait_round(&mut self, cpu: &mut Cpu) -> bool {
        let Some(wait) = &mut self.wait else {
            return true;
        };
        let mut all_clear = true;
        for t in 0..self.globals.max_threads {
            if wait.cleared[t] {
                continue;
            }
            let now = self
                .heap
                .load(cpu, self.globals.timestamps, t as u64 * TS_STRIDE);
            // Progress, or quiescent (even), clears the thread.
            if now != wait.snapshot[t] || now % 2 == 0 {
                wait.cleared[t] = true;
            } else {
                all_clear = false;
            }
        }
        if all_clear {
            self.wait = None;
            for node in std::mem::take(&mut self.limbo) {
                self.heap.free(cpu, node);
                self.freed += 1;
            }
        }
        all_clear
    }

    fn maybe_start_wait(&mut self, cpu: &mut Cpu) {
        if self.wait.is_none() && self.limbo.len() > self.batch {
            let snapshot: Vec<Word> = (0..self.globals.max_threads)
                .map(|t| {
                    self.heap
                        .load(cpu, self.globals.timestamps, t as u64 * TS_STRIDE)
                })
                .collect();
            let cleared = snapshot
                .iter()
                .enumerate()
                .map(|(t, &ts)| t == self.thread_id || ts % 2 == 0)
                .collect();
            self.wait = Some(Wait { snapshot, cleared });
        }
    }
}

impl OpMem for EpochThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        _guard: usize,
    ) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        self.heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words")
    }

    fn retire(&mut self, _cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        self.limbo.push(addr);
        Ok(())
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for EpochThread {
    fn begin_op(&mut self, cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(self.wait.is_none(), "begin_op during a quiescence wait");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
        self.bump_timestamp(cpu); // odd: in operation
        debug_assert_eq!(self.timestamp % 2, 1);
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                self.active = false;
                self.bump_timestamp(cpu); // even: quiescent
                self.maybe_start_wait(cpu);
                Some(v)
            }
        }
    }

    fn idle_work_pending(&self) -> bool {
        self.wait.is_some()
    }

    fn step_idle(&mut self, cpu: &mut Cpu) {
        self.wait_round(cpu);
    }

    fn outstanding_garbage(&self) -> u64 {
        self.limbo.len() as u64
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.epoch.freed", self.freed);
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        if !self.limbo.is_empty() {
            self.maybe_start_wait(cpu);
            if self.wait.is_none() {
                // Below the batch threshold: force a snapshot anyway.
                let snapshot: Vec<Word> = (0..self.globals.max_threads)
                    .map(|t| {
                        self.heap
                            .load(cpu, self.globals.timestamps, t as u64 * TS_STRIDE)
                    })
                    .collect();
                let cleared = snapshot
                    .iter()
                    .enumerate()
                    .map(|(t, &ts)| t == self.thread_id || ts % 2 == 0)
                    .collect();
                self.wait = Some(Wait { snapshot, cleared });
            }
            // Bounded drain: if some thread never quiesces, garbage stays —
            // that is the scheme's documented failure mode.
            for _ in 0..1_000 {
                if self.wait_round(cpu) {
                    break;
                }
            }
        }
    }

    fn scheme_name(&self) -> &'static str {
        "Epoch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};

    fn setup(threads: usize) -> (Arc<EpochGlobals>, Arc<Heap>) {
        let (heap, _) = test_env();
        let globals = Arc::new(EpochGlobals::new(&heap, threads));
        (globals, heap)
    }

    #[test]
    fn frees_after_quiescence() {
        let (globals, heap) = setup(2);
        let mut a = EpochThread::new(globals.clone(), heap.clone(), 0, 0);
        let mut b = EpochThread::new(globals, heap.clone(), 1, 0);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        // B runs one full op so its timestamp is even (quiescent).
        b.run_op(&mut cpu_b, 0, 0, &mut |_, _| Ok(Step::Done(0)));

        // A retires a node; batch 0 triggers the wait at op end.
        let node = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
            m.retire(cpu, node)?;
            Ok(Step::Done(0))
        });
        assert!(a.idle_work_pending());
        a.step_idle(&mut cpu_a);
        assert!(!a.idle_work_pending(), "all threads quiescent: done");
        assert!(!heap.is_live(node));
    }

    #[test]
    fn in_operation_thread_stalls_the_wait() {
        let (globals, heap) = setup(2);
        let mut a = EpochThread::new(globals.clone(), heap.clone(), 0, 0);
        let mut b = EpochThread::new(globals, heap.clone(), 1, 0);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        // B parks inside an operation (odd timestamp, never progresses).
        b.begin_op(&mut cpu_b, 0, 0);

        let node = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
            m.retire(cpu, node)?;
            Ok(Step::Done(0))
        });
        for _ in 0..50 {
            a.step_idle(&mut cpu_a);
        }
        assert!(a.idle_work_pending(), "stalled by B");
        assert!(heap.is_live(node), "cannot free while B may hold it");

        // B completes: one more round clears the wait.
        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        b.step_op(&mut cpu_b, &mut fin);
        a.step_idle(&mut cpu_a);
        assert!(!a.idle_work_pending());
        assert!(!heap.is_live(node));
    }

    #[test]
    fn reclaimers_do_not_deadlock_each_other() {
        let (globals, heap) = setup(2);
        let mut a = EpochThread::new(globals.clone(), heap.clone(), 0, 0);
        let mut b = EpochThread::new(globals, heap.clone(), 1, 0);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        let na = heap.alloc_untimed(2).unwrap();
        let nb = heap.alloc_untimed(2).unwrap();
        let mut retire_a = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.retire(cpu, na)?;
            Ok(Step::Done(0))
        };
        let mut retire_b = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.retire(cpu, nb)?;
            Ok(Step::Done(0))
        };
        a.run_op(&mut cpu_a, 0, 0, &mut retire_a);
        b.run_op(&mut cpu_b, 0, 0, &mut retire_b);
        // Both wait; both are quiescent; both clear.
        a.step_idle(&mut cpu_a);
        b.step_idle(&mut cpu_b);
        assert!(!a.idle_work_pending());
        assert!(!b.idle_work_pending());
        assert!(!heap.is_live(na));
        assert!(!heap.is_live(nb));
    }

    #[test]
    fn teardown_drains_when_everyone_is_idle() {
        let (globals, heap) = setup(1);
        let mut a = EpochThread::new(globals, heap.clone(), 0, 100);
        let mut cpu = test_cpu(0);
        let node = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            m.retire(cpu, node)?;
            Ok(Step::Done(0))
        });
        assert_eq!(a.outstanding_garbage(), 1, "below batch: still in limbo");
        a.teardown(&mut cpu);
        assert_eq!(a.outstanding_garbage(), 0);
        assert!(!heap.is_live(node));
    }
}
