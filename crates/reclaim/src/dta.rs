//! Drop-the-Anchor (Braginsky, Kogan, Petrank; SPAA 2013), simplified.
//!
//! DTA elides hazard pointers: a thread publishes an *anchor* (with the
//! fence that makes it visible) only once every `K` pointer hops, plus one
//! at operation start. Between anchors the thread may hold references only
//! to nodes loaded since its previous anchor — true for linked-list
//! traversals, whose locals lag the head of the traversal by at most two
//! hops (the paper, like the original, applies DTA **to the linked list
//! only**).
//!
//! The reclamation rule: a node retired at era `T` may be freed once every
//! thread currently inside an operation has published **two** anchors after
//! `T` (so even references loaded just before its latest anchor postdate
//! the unlink), or is idle. Retires advance the era clock; anchors read it,
//! so "after `T`" is "observed era >= T". With Harris-style physical unlinking this
//! implies no live reference to the node can exist (see the safety sketch
//! in DESIGN.md).
//!
//! Substitution note: the original recovers from *crashed* threads with a
//! freezing protocol that rebuilds part of the list. This reproduction
//! keeps the freeze idea but simplifies recovery to an **operation
//! restart**: a sweeping thread that finds a peer whose newest anchor lags
//! the era clock by more than [`DtaThread::new`]'s `freeze_lag` sets the
//! peer's *frozen* flag and drops it from the reclamation horizon, so a
//! stalled (or killed) thread stops blocking frees. The victim checks its
//! own flag at the top of **every** [`SchemeThread::step_op`] — before any
//! body code can touch a pointer — and, if frozen, discards its local
//! state, re-anchors, and restarts the operation from scratch. Because the
//! simulator interleaves at step granularity, the flag is always observed
//! before a stale local can be dereferenced, so freeing past a frozen
//! thread's anchors is safe without the original's list surgery. The cost
//! is one extra anchor-line load per step and, on restart, the loss of any
//! not-yet-linked allocation (bounded by `scheme.dta.recoveries`).

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::sync::Arc;

/// Words per thread in the shared DTA region.
const SLOT_WORDS: u64 = 8;
const OFF_ACTIVE: u64 = 0;
const OFF_LAST_TS: u64 = 1;
const OFF_PREV_TS: u64 = 2;
const OFF_ANCHOR_VAL: u64 = 3;
/// Set by a sweeping peer when this thread's anchors lag the era clock too
/// far; the owner must restart its operation before touching any pointer.
const OFF_FROZEN: u64 = 4;

/// Shared DTA state: per-thread anchor records and the era clock.
#[derive(Debug)]
pub struct DtaGlobals {
    region: Addr,
    era: Addr,
    max_threads: usize,
}

impl DtaGlobals {
    /// Allocates anchor records for `max_threads` threads.
    pub fn new(heap: &Arc<Heap>, max_threads: usize) -> Self {
        let region = heap
            .alloc_untimed((max_threads as u64 * SLOT_WORDS).max(1) as usize)
            .expect("heap too small for DTA anchors");
        let era = heap
            .alloc_untimed(1)
            .expect("heap too small for the DTA era clock");
        // Eras start at 1 so "never anchored" (0) is distinguishable.
        heap.poke(era, 0, 1);
        Self {
            region,
            era,
            max_threads,
        }
    }

    fn slot(&self, thread: usize, off: u64) -> u64 {
        thread as u64 * SLOT_WORDS + off
    }
}

/// Per-thread DTA executor.
pub struct DtaThread {
    globals: Arc<DtaGlobals>,
    heap: Arc<Heap>,
    thread_id: usize,
    k: u32,
    batch: usize,
    freeze_lag: u64,
    hops: u32,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    limbo: Vec<(Addr, Word)>,
    /// Anchors published (statistics).
    pub anchors: u64,
    /// Lagging peers this thread froze (statistics).
    pub freezes: u64,
    /// Operation restarts after being frozen by a peer (statistics).
    pub recoveries: u64,
}

impl DtaThread {
    /// Creates the executor for thread slot `thread_id`, anchoring every
    /// `k` pointer hops. A peer whose newest anchor lags the era clock by
    /// more than `freeze_lag` retires is frozen out of the horizon (see the
    /// module docs); pass [`u64::MAX`] to disable freezing.
    ///
    /// # Panics
    ///
    /// Panics if `k < 4`: the safety argument needs the anchor period to
    /// exceed the traversal's local-variable lag.
    pub fn new(
        globals: Arc<DtaGlobals>,
        heap: Arc<Heap>,
        thread_id: usize,
        k: u32,
        batch: usize,
        freeze_lag: u64,
    ) -> Self {
        assert!(k >= 4, "anchor period must exceed the traversal lag");
        Self {
            globals,
            heap,
            thread_id,
            k,
            batch,
            freeze_lag,
            hops: 0,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            limbo: Vec::new(),
            anchors: 0,
            freezes: 0,
            recoveries: 0,
        }
    }

    /// Publishes an anchor: rotate the timestamps, expose the value, fence.
    ///
    /// Anchors only *read* the era clock (a shared read of a rarely
    /// written line); retires advance it. A global fetch-add per anchor
    /// would manufacture contention the real scheme does not have.
    fn post_anchor(&mut self, cpu: &mut Cpu, value: Word) {
        self.anchors += 1;
        let g = &self.globals;
        let last = self
            .heap
            .load(cpu, g.region, g.slot(self.thread_id, OFF_LAST_TS));
        let now = self.heap.load(cpu, g.era, 0);
        self.heap
            .store(cpu, g.region, g.slot(self.thread_id, OFF_PREV_TS), last);
        self.heap
            .store(cpu, g.region, g.slot(self.thread_id, OFF_LAST_TS), now);
        self.heap
            .store(cpu, g.region, g.slot(self.thread_id, OFF_ANCHOR_VAL), value);
        self.heap.fence(cpu);
    }

    /// Frees every limbo node that all in-operation threads have anchored
    /// twice past; keeps the rest.
    fn sweep(&mut self, cpu: &mut Cpu) {
        let g = self.globals.clone();
        let era_now = self.heap.load(cpu, g.era, 0);
        // The horizon: the oldest prev-anchor among active threads. Peers
        // whose newest anchor lags the era clock by more than `freeze_lag`
        // are frozen (flagged to restart) and dropped from the horizon, so
        // a stalled or dead thread cannot block reclamation forever.
        let mut horizon = Word::MAX;
        for t in 0..g.max_threads {
            if self.heap.load(cpu, g.region, g.slot(t, OFF_ACTIVE)) == 0 {
                continue;
            }
            if self.heap.load(cpu, g.region, g.slot(t, OFF_FROZEN)) != 0 {
                continue;
            }
            if t != self.thread_id {
                let last = self.heap.load(cpu, g.region, g.slot(t, OFF_LAST_TS));
                if era_now.saturating_sub(last) > self.freeze_lag {
                    self.heap.store(cpu, g.region, g.slot(t, OFF_FROZEN), 1);
                    self.heap.fence(cpu);
                    self.freezes += 1;
                    continue;
                }
            }
            let prev = self.heap.load(cpu, g.region, g.slot(t, OFF_PREV_TS));
            horizon = horizon.min(prev);
        }
        let limbo = std::mem::take(&mut self.limbo);
        for (node, retired_at) in limbo {
            // An anchor ordered after retire(T) observed era >= T.
            if retired_at <= horizon {
                self.heap.free(cpu, node);
            } else {
                self.limbo.push((node, retired_at));
            }
        }
    }
}

impl OpMem for DtaThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        _guard: usize,
    ) -> Result<Word, Abort> {
        let v = self.heap.load(cpu, addr, off);
        self.hops += 1;
        if self.hops % self.k == 0 {
            self.post_anchor(cpu, v);
        }
        Ok(v)
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        self.heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words")
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        // Stamp with the *new* era: an anchor ordered after this retire
        // reads at least this value.
        let stamp = self.heap.fetch_add(cpu, self.globals.era, 0, 1) + 1;
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        self.limbo.push((addr, stamp));
        if self.limbo.len() > self.batch {
            self.sweep(cpu);
        }
        Ok(())
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for DtaThread {
    fn begin_op(&mut self, cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
        self.hops = 0;
        let g = self.globals.clone();
        self.heap
            .store(cpu, g.region, g.slot(self.thread_id, OFF_ACTIVE), 1);
        // The operation-start anchor keeps short operations from pinning
        // the horizon.
        self.post_anchor(cpu, 0);
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        // Frozen by a peer? Restart before the body can touch a pointer:
        // discard locals (which may reference freed nodes), re-anchor, and
        // let the next step rerun the operation from scratch.
        let g = self.globals.clone();
        if self
            .heap
            .load(cpu, g.region, g.slot(self.thread_id, OFF_FROZEN))
            != 0
        {
            self.heap
                .store(cpu, g.region, g.slot(self.thread_id, OFF_FROZEN), 0);
            self.locals[..self.slots].fill(0);
            self.hops = 0;
            self.recoveries += 1;
            self.post_anchor(cpu, 0);
            return None;
        }
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                let g = self.globals.clone();
                self.heap
                    .store(cpu, g.region, g.slot(self.thread_id, OFF_ACTIVE), 0);
                self.heap.fence(cpu);
                self.active = false;
                Some(v)
            }
        }
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.dta.anchors", self.anchors);
        reg.add("scheme.dta.freezes", self.freezes);
        reg.add("scheme.dta.recoveries", self.recoveries);
    }

    fn outstanding_garbage(&self) -> u64 {
        self.limbo.len() as u64
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        self.sweep(cpu);
    }

    fn scheme_name(&self) -> &'static str {
        "DTA"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};

    fn setup(threads: usize) -> (Arc<DtaGlobals>, Arc<Heap>) {
        let (heap, _) = test_env();
        let globals = Arc::new(DtaGlobals::new(&heap, threads));
        (globals, heap)
    }

    #[test]
    fn anchors_post_every_k_hops() {
        let (globals, heap) = setup(1);
        let mut th = DtaThread::new(globals, heap.clone(), 0, 4, 100, u64::MAX);
        let mut cpu = test_cpu(0);
        let cell = heap.alloc_untimed(1).unwrap();

        th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
            let i = m.get_local(cpu, 0);
            if i < 12 {
                let _ = m.load_ptr(cpu, cell, 0, 0)?;
                m.set_local(cpu, 0, i + 1);
                return Ok(Step::Continue);
            }
            Ok(Step::Done(0))
        });
        // One at op start + one per 4 of the 12 hops.
        assert_eq!(th.anchors, 1 + 3);
    }

    #[test]
    fn idle_threads_do_not_pin_the_horizon() {
        let (globals, heap) = setup(2);
        let mut a = DtaThread::new(globals.clone(), heap.clone(), 0, 4, 0, u64::MAX);
        let _b = DtaThread::new(globals, heap.clone(), 1, 4, 0, u64::MAX);
        let mut cpu = test_cpu(0);
        let node = heap.alloc_untimed(2).unwrap();

        // Thread 1 never runs an op (inactive): only A's own anchors
        // matter. Retire, then anchor twice via two more ops.
        a.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, node)?;
            Ok(Step::Done(0))
        });
        assert!(heap.is_live(node), "own anchors too old at retire time");
        for _ in 0..2 {
            a.run_op(&mut cpu, 0, 0, &mut |_, _| Ok(Step::Done(0)));
        }
        a.teardown(&mut cpu);
        assert!(!heap.is_live(node));
    }

    #[test]
    fn active_thread_with_stale_anchors_blocks_frees() {
        let (globals, heap) = setup(2);
        let mut a = DtaThread::new(globals.clone(), heap.clone(), 0, 4, 0, u64::MAX);
        let mut b = DtaThread::new(globals, heap.clone(), 1, 4, 0, u64::MAX);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);
        let node = heap.alloc_untimed(2).unwrap();

        // B parks inside an operation with anchors from before the retire.
        b.begin_op(&mut cpu_b, 0, 0);

        a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, node)?;
            Ok(Step::Done(0))
        });
        for _ in 0..3 {
            a.run_op(&mut cpu_a, 0, 0, &mut |_, _| Ok(Step::Done(0)));
        }
        a.teardown(&mut cpu_a);
        assert!(heap.is_live(node), "B's stale anchors must block the free");

        // B re-anchors twice (two hops cycles of K) and finishes.
        let cell = heap.alloc_untimed(1).unwrap();
        let mut hop = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            for _ in 0..8 {
                let _ = m.load_ptr(cpu, cell, 0, 0)?;
            }
            Ok(Step::Continue)
        };
        b.step_op(&mut cpu_b, &mut hop);
        a.teardown(&mut cpu_a);
        assert!(!heap.is_live(node), "two post-retire anchors clear B");
    }

    #[test]
    fn lagging_thread_is_frozen_and_restarts() {
        let (globals, heap) = setup(2);
        let mut a = DtaThread::new(globals.clone(), heap.clone(), 0, 4, 0, 4);
        let mut b = DtaThread::new(globals, heap.clone(), 1, 4, 0, 4);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        // B parks mid-operation with local state and pre-stall anchors.
        b.begin_op(&mut cpu_b, 0, 1);
        b.step_op(&mut cpu_b, &mut |m, cpu| {
            m.set_local(cpu, 0, 5);
            Ok(Step::Continue)
        });

        // A retires ten nodes; each retire advances the era and sweeps.
        // Once B lags by more than freeze_lag=4 eras, A freezes it and the
        // horizon moves past B's stale anchors.
        let mut nodes = Vec::new();
        for _ in 0..10 {
            let node = heap.alloc_untimed(2).unwrap();
            nodes.push(node);
            a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
                m.retire_unlinked(cpu, node)?;
                Ok(Step::Done(0))
            });
        }
        for _ in 0..3 {
            a.run_op(&mut cpu_a, 0, 0, &mut |_, _| Ok(Step::Done(0)));
        }
        a.teardown(&mut cpu_a);
        assert_eq!(a.freezes, 1, "B must be frozen exactly once");
        assert!(
            !heap.is_live(nodes[0]),
            "frozen B must not block the horizon"
        );
        assert_eq!(a.outstanding_garbage(), 0, "limbo must fully drain");

        // B's next step must notice the flag and restart: the step is
        // consumed by recovery and the poisoned local state is gone.
        let stepped = b.step_op(&mut cpu_b, &mut |_, _| {
            panic!("body must not run on a frozen thread")
        });
        assert_eq!(stepped, None);
        assert_eq!(b.recoveries, 1);
        let result = b.step_op(&mut cpu_b, &mut |m, cpu| {
            Ok(Step::Done(m.get_local(cpu, 0)))
        });
        assert_eq!(result, Some(0), "locals must be reset by the restart");

        // Once recovered, B is unfrozen and participates normally again.
        let node = heap.alloc_untimed(2).unwrap();
        a.run_op(&mut cpu_a, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, node)?;
            Ok(Step::Done(0))
        });
        a.teardown(&mut cpu_a);
        assert_eq!(a.freezes, 1, "recovered B must not be re-frozen");
    }
}
