//! The typed smart-pointer reclamation API.
//!
//! Structures used to be hand-wired to the reclaim layer through raw
//! guard indices (`G_PREV`/`G_CUR` constants rotated by hand) and untyped
//! [`OpMem::protect_slot`]/[`OpMem::retire_unlinked`] calls on raw words — each new
//! scheme × structure pairing worked only because a human re-audited every
//! protection point. This module replaces that convention with *types*,
//! in the shape of the reclamation-interface literature (Meyer & Wolff,
//! PAPERS.md) and the `conquer-reclaim` Treiber exemplar (SNIPPETS.md):
//!
//! | Type | Meaning | Enforced by |
//! |------|---------|-------------|
//! | [`Atomic<N>`] | a shared pointer word (a node link or a root) | loads go through scheme protection ([`OpMem::load_ptr`]) |
//! | [`Shared<'g, N>`] | a protected borrow of a node | tied to its [`Guard`]'s borrow — cannot outlive or out-rotate it |
//! | [`Owned<N>`] | a freshly allocated, unpublished node | consumed by publication; its drop path is [`OpMem::free_unpublished`] |
//! | [`Unlinked<N>`] | proof that a node was atomically unlinked | move-only; the **only** way to reach retire |
//!
//! Where `conquer-reclaim` makes the reclaimer a type parameter
//! (`Atomic<T, R>`), this repository dispatches it at runtime: the same
//! operation body runs under every [`crate::SchemeThread`], and the typed
//! layer compiles down to the *identical* [`OpMem`] instruction sequence
//! the hand-wired code issued — same calls, same order, same cycle
//! charges — so all eight schemes compose with zero per-scheme code and
//! the committed benchmark figures stay byte-identical. The node type
//! parameter `N` ([`NodeType`]) carries the layout instead.
//!
//! # Guards and the step machine
//!
//! Operation bodies are basic-block step closures: every block re-enters
//! from shadow-stack locals, and scheme-side guard state persists across
//! blocks. The typed layer mirrors that split:
//!
//! - Within a block, a [`GuardPool`] hands out [`Guard`] handles in
//!   declaration order (deterministic indices — the typed replacement for
//!   the `G_*` constants). [`Guard::shield`] announces a pointer and
//!   returns a [`Shared`] borrow; re-shielding needs `&mut Guard`, which
//!   the borrow checker refuses while a previous [`Shared`] is alive.
//! - Across blocks, pointers persist as words in shadow locals;
//!   [`Guard::assume_protected`] re-materializes the borrow in the next
//!   block. This is the one trust point of the API (see its docs) — it
//!   asserts what the previous block's types already proved.
//!
//! # Oracle attachment
//!
//! The typed layer is the generic hook point for the checker's oracles,
//! for any structure written against it, with no per-structure wiring:
//!
//! - **Use-after-free:** every deref ([`Shared::read`], [`Atomic::load`])
//!   funnels through [`OpMem::load`]/[`OpMem::load_ptr`], which the
//!   simulated heap's poison and speculative-read oracles instrument.
//! - **Heap ledger:** every retirement funnels through
//!   [`Unlinked::retire`] → [`OpMem::retire_unlinked`], whose scheme
//!   implementations report the pipeline-acceptance point to the heap's
//!   lifecycle ledger; [`Owned`] tokens dropped without being published
//!   or [`Owned::dispose`]d surface as leak-at-teardown.
//!
//! See `docs/MEMORY_API.md` for the full type map, lifetime rules, and
//! the migration guide from raw guards.

use st_machine::Cpu;
use st_simheap::{Addr, TaggedPtr, Word};
use st_simhtm::Abort;
use stacktrack::OpMem;
use std::marker::PhantomData;

/// Declares a node layout: how many heap words one node occupies.
///
/// Implemented by zero-sized marker types (one per structure node kind),
/// which parameterize [`Atomic`], [`Shared`], [`Owned`], and [`Unlinked`]
/// so links of different structures cannot be mixed up.
///
/// ```
/// use st_reclaim::mem::NodeType;
///
/// /// `[key, next]` — a Harris-list node.
/// #[derive(Clone, Copy)]
/// struct ListNode;
/// impl NodeType for ListNode {
///     const WORDS: usize = 2;
/// }
/// assert_eq!(ListNode::WORDS, 2);
/// ```
pub trait NodeType: Copy {
    /// Node size in heap words.
    const WORDS: usize;
}

/// How many guard slots a structure's operations need at once.
///
/// Declared once per structure (next to its node layout) and consumed by
/// [`crate::SchemeFactoryBuilder::guard_requirement`], which derives
/// [`crate::ReclaimConfig::hazard_slots`] from it — replacing the
/// `2 * MAX_LEVEL + 2` arithmetic that used to be copy-pasted into every
/// harness. Harnesses that run several structures (or must keep a
/// determinism contract with committed results) combine requirements with
/// [`GuardRequirement::max`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardRequirement {
    guards: usize,
}

impl GuardRequirement {
    /// A requirement of `guards` simultaneous guard slots.
    pub const fn new(guards: usize) -> Self {
        Self { guards }
    }

    /// The number of guard slots required.
    pub const fn guards(self) -> usize {
        self.guards
    }

    /// The pointwise maximum of two requirements (for harnesses driving
    /// more than one structure through one factory).
    pub const fn max(self, other: Self) -> Self {
        Self {
            guards: if self.guards >= other.guards {
                self.guards
            } else {
                other.guards
            },
        }
    }
}

/// Hands out the operation's [`Guard`] handles in declaration order.
///
/// Created fresh at the top of every basic block (it is plain bookkeeping
/// — no simulated work, no cycle charges): because handles are taken in
/// the same order each block, each guard re-acquires the same slot index
/// its protections were published under in earlier blocks.
pub struct GuardPool {
    next: usize,
    limit: usize,
}

impl GuardPool {
    /// A pool sized by the structure's declared requirement.
    pub fn new(requirement: GuardRequirement) -> Self {
        Self {
            next: 0,
            limit: requirement.guards(),
        }
    }

    /// Takes the next guard handle.
    ///
    /// # Panics
    ///
    /// Panics when the pool's declared requirement is exhausted — the
    /// structure is using more simultaneous guards than it declared, the
    /// bug the requirement exists to catch at the first test run instead
    /// of as a silent out-of-range hazard slot.
    pub fn guard(&mut self) -> Guard {
        assert!(
            self.next < self.limit,
            "guard requirement exhausted: operation takes more than {} guards",
            self.limit
        );
        let index = self.next;
        self.next += 1;
        Guard { index }
    }
}

/// One per-operation protection slot, owned by the operation body.
///
/// A guard covers **one pointer at a time**. Announcing a pointer
/// ([`Guard::shield`], or an [`Atomic::load`] through the guard) returns
/// a [`Shared`] borrow tied to this guard; announcing a *different*
/// pointer requires `&mut Guard` again, so the borrow checker rejects any
/// use of the stale borrow afterwards — the typed form of the rule that
/// rotating a guard slot invalidates what it used to protect.
pub struct Guard {
    index: usize,
}

impl Guard {
    /// The underlying scheme guard-slot index (deterministic: pool
    /// declaration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Announces an **already-protected or immortal** pointer word in
    /// this guard, returning the protected borrow.
    ///
    /// Compiles to exactly one [`OpMem::protect_slot`]: the value must still
    /// be covered — by another guard, by being a never-reclaimed root
    /// (sentinels), or by the enclosing scheme's stronger mechanism — for
    /// the fence-free re-announcement to be sound, exactly as the raw
    /// call required. Tag bits may be present; schemes strip them.
    pub fn shield<'g, N: NodeType>(
        &'g mut self,
        mem: &mut Mem<'_, '_>,
        word: Word,
    ) -> Shared<'g, N> {
        mem.op.protect_slot(mem.cpu, self.index, word);
        Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        }
    }

    /// Re-materializes a borrow for a pointer **this guard already
    /// protects**, without re-announcing it (no simulated work).
    ///
    /// This is the bridge across basic-block boundaries — and the one
    /// trust point of the typed API. The contract: `word` was shielded
    /// into (or loaded through) this guard in an earlier block of the
    /// same operation and the guard has not been rotated since; the
    /// caller typically just read it back from the shadow local it was
    /// stored to in that block. Passing any other word reintroduces the
    /// unprotected-deref bug class the API exists to prevent, so treat
    /// every call site as a (small, local) proof obligation.
    pub fn assume_protected<'g, N: NodeType>(&'g self, word: Word) -> Shared<'g, N> {
        Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        }
    }

    /// Loads the pointer at `base + off` **into this guard**, rotating it
    /// ([`OpMem::load_ptr`] with this guard's slot).
    ///
    /// This is the hand-over-*self* traversal step: the red-black tree's
    /// search walks root → child → grandchild keeping only one guard,
    /// loading each child link *out of the node this same guard currently
    /// protects*. The typed [`Atomic::load`] cannot express that — naming
    /// the link ([`Shared::link`]) keeps the old borrow alive while the
    /// load wants `&mut Guard`. `rotate_load` takes the base address as a
    /// raw [`Addr`] instead, after the old borrow is dead.
    ///
    /// The audited contract (the reason this is sound, and the reason it
    /// is an explicit bridge rather than the default): at the moment of
    /// the call, `base` must still be **covered** — by this guard's
    /// not-yet-replaced announcement, by another guard, or by being a
    /// never-reclaimed root. Hazard-style schemes read `base + off`
    /// *before* republishing the slot, and stores retire in order under
    /// TSO, so the base stays protected for the read exactly as in the
    /// raw rotation idiom ([`OpMem::protect_slot`]'s fence-free
    /// re-announcement argument). Taking `&mut self` makes the borrow
    /// checker kill every [`Shared`] this guard handed out before the
    /// rotation.
    pub fn rotate_load<'g, N: NodeType>(
        &'g mut self,
        mem: &mut Mem<'_, '_>,
        base: Addr,
        off: u64,
    ) -> Result<Shared<'g, N>, Abort> {
        let word = mem.op.load_ptr(mem.cpu, base, off, self.index)?;
        Ok(Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        })
    }
}

/// The typed view over one basic block's [`OpMem`] + [`Cpu`] pair.
///
/// Constructed at the top of the block from the body's two arguments;
/// every typed operation borrows it mutably and compiles to exactly one
/// raw [`OpMem`] call.
pub struct Mem<'m, 'c> {
    op: &'m mut dyn OpMem,
    cpu: &'c mut Cpu,
}

impl<'m, 'c> Mem<'m, 'c> {
    /// Wraps the body's raw arguments.
    pub fn new(op: &'m mut dyn OpMem, cpu: &'c mut Cpu) -> Self {
        Self { op, cpu }
    }

    /// Reads shadow-stack local `slot` ([`OpMem::get_local`]).
    pub fn local(&mut self, slot: usize) -> Word {
        self.op.get_local(self.cpu, slot)
    }

    /// Writes shadow-stack local `slot` ([`OpMem::set_local`]).
    pub fn set_local(&mut self, slot: usize, value: Word) {
        self.op.set_local(self.cpu, slot, value);
    }

    /// Allocates a zeroed, unpublished node ([`OpMem::alloc`]).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted (a configuration error,
    /// as for the raw call).
    pub fn alloc<N: NodeType>(&mut self) -> Owned<N> {
        let addr = self.op.alloc(self.cpu, N::WORDS);
        Owned {
            addr,
            _node: PhantomData,
        }
    }

    /// Allocates a zeroed, unpublished node of `words` words
    /// ([`OpMem::alloc`]) — the variable-size form of [`Mem::alloc`] for
    /// layouts whose tail is sized at runtime, like the skip list's
    /// towers (`2 + height` words, with `N::WORDS` declaring the
    /// maximum).
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds `N::WORDS` (the declared layout is the
    /// upper bound every reader assumes) or if the simulated heap is
    /// exhausted (a configuration error, as for the raw call).
    pub fn alloc_var<N: NodeType>(&mut self, words: usize) -> Owned<N> {
        assert!(
            words <= N::WORDS,
            "alloc_var: {} words exceeds {}-word layout",
            words,
            N::WORDS
        );
        let addr = self.op.alloc(self.cpu, words);
        Owned {
            addr,
            _node: PhantomData,
        }
    }

    /// The simulated CPU (for body-side randomness or cycle queries;
    /// never needed for memory operations, which all charge through the
    /// typed methods).
    pub fn cpu(&mut self) -> &mut Cpu {
        self.cpu
    }
}

/// A typed shared pointer **location**: a heap word holding a (possibly
/// mark-tagged) pointer to an `N` node.
///
/// Obtained from a protected node's link field ([`Shared::link`]) or from
/// a never-reclaimed root ([`Atomic::root`]). Copyable — it names a
/// place, not a protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atomic<N: NodeType> {
    base: Addr,
    off: u64,
    _node: PhantomData<N>,
}

impl<N: NodeType> Atomic<N> {
    /// The pointer word at `base + off`, where `base` is a structure
    /// **root** (a sentinel or anchor that is never retired, so reading
    /// through it needs no protection of `base` itself).
    pub fn root(base: Addr, off: u64) -> Self {
        Self {
            base,
            off,
            _node: PhantomData,
        }
    }

    /// Loads the pointer through scheme protection into `guard`
    /// ([`OpMem::load_ptr`]): hazard-style schemes publish, fence, and
    /// revalidate internally; the returned borrow is protected for as
    /// long as the guard is not rotated.
    pub fn load<'g>(
        &self,
        mem: &mut Mem<'_, '_>,
        guard: &'g mut Guard,
    ) -> Result<Shared<'g, N>, Abort> {
        let word = mem.op.load_ptr(mem.cpu, self.base, self.off, guard.index)?;
        Ok(Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        })
    }

    /// Loads the pointer word **without announcing a protection**
    /// ([`OpMem::load`]), returning the raw word.
    ///
    /// This is the typed form of a *validation read*: re-reading a
    /// location to decide whether an earlier snapshot is still current
    /// (the Michael-Scott queue re-reads the head/tail anchor words this
    /// way). The word must not be dereferenced — there is no [`Shared`]
    /// borrow here, and constructing one from the result would need a
    /// [`Guard`] announcement. Use it only to compare against words that
    /// are already protected (or to observe nullness/marks).
    pub fn load_word(&self, mem: &mut Mem<'_, '_>) -> Result<Word, Abort> {
        mem.op.load(mem.cpu, self.base, self.off)
    }

    /// Raw-word compare-and-swap on the location ([`OpMem::cas`]):
    /// `Ok(Ok(prev))` on success, `Ok(Err(actual))` on mismatch.
    ///
    /// For tag flips (Harris delete marks) and other in-place updates
    /// that neither unlink nor publish a node — it can never mint an
    /// [`Unlinked`] token or consume an [`Owned`] one.
    pub fn cas_word(
        &self,
        mem: &mut Mem<'_, '_>,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        mem.op.cas(mem.cpu, self.base, self.off, expected, new)
    }

    /// The unlinking compare-and-swap: swings this location past
    /// `victim` (from `victim`'s address word to `new`), and on success
    /// mints the **unique proof of unlink** — the only value in the API
    /// from which retire is reachable.
    ///
    /// On mismatch returns the actual word; the victim stays linked and
    /// no token exists, so it cannot be retired.
    pub fn cas_unlink(
        &self,
        mem: &mut Mem<'_, '_>,
        victim: Shared<'_, N>,
        new: Word,
    ) -> Result<Result<Unlinked<N>, Word>, Abort> {
        match mem
            .op
            .cas(mem.cpu, self.base, self.off, victim.ptr.word(), new)?
        {
            Ok(_prev) => Ok(Ok(Unlinked {
                addr: victim.ptr.addr(),
                _node: PhantomData,
            })),
            Err(actual) => Ok(Err(actual)),
        }
    }

    /// A **helping** physical unlink: swings this location past `victim`
    /// exactly like [`Atomic::cas_unlink`], but mints **no**
    /// [`Unlinked`] proof — the victim is *not* handed to reclamation by
    /// this call.
    ///
    /// For protocols where unlink responsibility and retire
    /// responsibility are split: in the skip list, any traversal may snip
    /// a marked node out of an upper level (helping), but only the thread
    /// whose mark CAS won at the bottom level owns the retire (minted
    /// through [`Unlinked::assume_unlinked`] once its cleanup pass
    /// completes). Taking `victim` by reference keeps the borrow alive —
    /// the caller can keep reading through it, which is exactly right:
    /// a snipped node is still protected and still readable.
    ///
    /// Lowers to the identical single [`OpMem::cas`] as `cas_unlink`.
    pub fn cas_snip(
        &self,
        mem: &mut Mem<'_, '_>,
        victim: &Shared<'_, N>,
        new: Word,
    ) -> Result<Result<(), Word>, Abort> {
        match mem
            .op
            .cas(mem.cpu, self.base, self.off, victim.ptr.word(), new)?
        {
            Ok(_prev) => Ok(Ok(())),
            Err(actual) => Ok(Err(actual)),
        }
    }

    /// The publishing compare-and-swap: installs the unpublished `node`
    /// (consuming its [`Owned`] token — once other threads can reach it,
    /// the unpublished drop path is gone forever). On mismatch the token
    /// comes back with the actual word, for retry or disposal.
    pub fn cas_publish(
        &self,
        mem: &mut Mem<'_, '_>,
        expected: Word,
        node: Owned<N>,
    ) -> Result<Result<(), (Owned<N>, Word)>, Abort> {
        match mem
            .op
            .cas(mem.cpu, self.base, self.off, expected, node.addr.raw())?
        {
            Ok(_prev) => Ok(Ok(())),
            Err(actual) => Ok(Err((node, actual))),
        }
    }
}

/// A protected borrow of an `N` node (possibly carrying the Harris
/// deletion mark), valid for `'g` — the borrow of the [`Guard`] that
/// protects it.
///
/// Not `Copy`/`Clone`: consuming operations ([`Atomic::cas_unlink`])
/// take it by value, ending the guard borrow so the guard can rotate.
#[derive(Debug)]
pub struct Shared<'g, N: NodeType> {
    ptr: TaggedPtr,
    _guard: PhantomData<&'g Guard>,
    _node: PhantomData<N>,
}

impl<'g, N: NodeType> Shared<'g, N> {
    /// The raw pointer word, tag bits included.
    pub fn word(&self) -> Word {
        self.ptr.word()
    }

    /// The node address, tag bits stripped.
    pub fn addr(&self) -> Addr {
        self.ptr.addr()
    }

    /// The node address as an (untagged) pointer word — what gets stored
    /// into shadow locals and shielded into rotating guards.
    pub fn addr_word(&self) -> Word {
        self.ptr.addr().raw()
    }

    /// Whether the Harris deletion mark is set on this pointer.
    pub fn marked(&self) -> bool {
        self.ptr.marked()
    }

    /// Whether the address part is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The underlying tagged-pointer view.
    pub fn tagged(&self) -> TaggedPtr {
        self.ptr
    }

    /// Reads a data word of the node ([`OpMem::load`]) — the typed deref.
    /// Every read through a `Shared` is what the heap's poison and
    /// speculative-read use-after-free oracles instrument.
    pub fn read(&self, mem: &mut Mem<'_, '_>, off: u64) -> Result<Word, Abort> {
        mem.op.load(mem.cpu, self.ptr.addr(), off)
    }

    /// The node's link field at word `off`, as a typed location pointing
    /// at `M` nodes — protected access to the node makes naming its
    /// fields safe.
    pub fn link<M: NodeType>(&self, off: u64) -> Atomic<M> {
        Atomic {
            base: self.ptr.addr(),
            off,
            _node: PhantomData,
        }
    }
}

/// A freshly allocated node no other thread can reach yet.
///
/// Move-only: publication ([`Atomic::cas_publish`]) consumes it, and the
/// not-published drop path is [`Owned::dispose`] →
/// [`OpMem::free_unpublished`]. A token abandoned without either (other
/// than by [`Owned::stash`]ing it to a shadow local for a later block) is
/// a leak, and shows up as exactly that in the heap ledger's
/// leak-at-teardown oracle.
#[derive(Debug)]
pub struct Owned<N: NodeType> {
    addr: Addr,
    _node: PhantomData<N>,
}

impl<N: NodeType> Owned<N> {
    /// The node address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The address as a pointer word (for link stores and stashing).
    pub fn word(&self) -> Word {
        self.addr.raw()
    }

    /// Initializes a word of the unpublished node ([`OpMem::store`]).
    pub fn store(&self, mem: &mut Mem<'_, '_>, off: u64, value: Word) -> Result<(), Abort> {
        mem.op.store(mem.cpu, self.addr, off, value)
    }

    /// Consumes the token into a plain word for a shadow local — the
    /// step-machine bridge for keeping an unpublished node across basic
    /// blocks (e.g. retrying a lost insert without reallocating).
    /// Re-materialize it with [`Owned::unstash`] in a later block.
    pub fn stash(self) -> Word {
        self.addr.raw()
    }

    /// Re-materializes a token stashed by [`Owned::stash`]; `None` for
    /// the zero word (no node stashed). The contract mirrors
    /// [`Guard::assume_protected`]: the word must come from a stash of
    /// the same operation, still unpublished.
    pub fn unstash(word: Word) -> Option<Self> {
        if word == 0 {
            None
        } else {
            Some(Self {
                addr: Addr::from_raw(word),
                _node: PhantomData,
            })
        }
    }

    /// Returns the never-published node to the allocator
    /// ([`OpMem::free_unpublished`]) — the drop path for a node whose
    /// publication was abandoned (duplicate key found, operation gave
    /// up).
    pub fn dispose(self, mem: &mut Mem<'_, '_>) -> Result<(), Abort> {
        mem.op.free_unpublished(mem.cpu, self.addr)
    }
}

/// The unique proof that a node was atomically unlinked — and therefore
/// the **only** way to reach [`OpMem::retire_unlinked`].
///
/// Minted solely by [`Atomic::cas_unlink`] on CAS success; move-only, so
/// the node can be retired at most once (a second retire is a
/// use-of-moved-value compile error — see the `compile_fail` tests in
/// this module's documentation tests and `docs/MEMORY_API.md`).
#[derive(Debug)]
#[must_use = "an unlinked node must be retired (or the structure leaks it)"]
pub struct Unlinked<N: NodeType> {
    addr: Addr,
    _node: PhantomData<N>,
}

impl<N: NodeType> Unlinked<N> {
    /// The unlinked node's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Mints the unlink proof from a word, **asserting** the unlink
    /// happened in this operation — the deferred-ownership bridge, and
    /// (with [`Guard::assume_protected`]) one of the API's two trust
    /// points.
    ///
    /// Some protocols separate the CAS that *decides* a node's fate from
    /// the point where its retire becomes safe: in the skip list, the
    /// bottom-level mark CAS makes its winner the node's sole owner, but
    /// the owner may only retire after a cleanup search has snipped the
    /// node out of every level; in the red-black tree, the transplant
    /// store under the writer lock unlinks the victim without any CAS at
    /// all. Neither point is a `cas_unlink`, so the proof cannot be
    /// minted there — this constructor asserts it instead.
    ///
    /// The audited contract, with the same rigor as [`Owned::stash`]:
    /// `word` is a node this operation **won sole unlink responsibility
    /// for** earlier in the same operation (a mark CAS it won, an
    /// exclusive-section unlink it performed), every link to the node has
    /// been severed, and no other code path can mint a proof for the same
    /// node. Violating any clause reintroduces double-retire or
    /// retire-while-linked — exactly the bug class the token exists to
    /// prevent — so treat every call site as a proof obligation and keep
    /// it next to the protocol step that discharges it.
    pub fn assume_unlinked(word: Word) -> Self {
        Self {
            addr: Addr::from_raw(word),
            _node: PhantomData,
        }
    }

    /// Hands the node to the reclamation scheme
    /// ([`OpMem::retire_unlinked`]), consuming the proof. Must run in the
    /// same basic block as the unlink CAS (the raw contract, unchanged:
    /// StackTrack commits the segment to make unlink + retire atomic).
    ///
    /// This consumption point is where the heap-ledger oracle attaches
    /// generically: every scheme's `retire_unlinked` implementation
    /// reports the pipeline-acceptance to the heap's lifecycle ledger.
    pub fn retire(self, mem: &mut Mem<'_, '_>) -> Result<(), Abort> {
        mem.op.retire_unlinked(mem.cpu, self.addr)
    }
}

/// A typed **control word**: a heap word that is state, not a pointer —
/// a writer lock, a version counter, an anchor flag.
///
/// [`Atomic`] deliberately cannot model these (its loads return pointer
/// borrows and its CASes mint/consume ownership tokens). `Field` is the
/// escape hatch for the handful of words a structure spins on: plain
/// loads, stores, and CASes with no protection and no tokens, each
/// lowering to exactly one raw call. The contract is the caller's: the
/// word must never be dereferenced as a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    base: Addr,
    off: u64,
}

impl Field {
    /// The control word at `base + off`, where `base` is a structure
    /// root (never retired, so no protection is needed to address it).
    pub fn root(base: Addr, off: u64) -> Self {
        Self { base, off }
    }

    /// Reads the word ([`OpMem::load`]).
    pub fn read(&self, mem: &mut Mem<'_, '_>) -> Result<Word, Abort> {
        mem.op.load(mem.cpu, self.base, self.off)
    }

    /// Writes the word ([`OpMem::store`]).
    pub fn write(&self, mem: &mut Mem<'_, '_>, value: Word) -> Result<(), Abort> {
        mem.op.store(mem.cpu, self.base, self.off, value)
    }

    /// Compare-and-swap on the word ([`OpMem::cas`]): `Ok(Ok(prev))` on
    /// success, `Ok(Err(actual))` on mismatch.
    pub fn cas(
        &self,
        mem: &mut Mem<'_, '_>,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        mem.op.cas(mem.cpu, self.base, self.off, expected, new)
    }
}

/// A witness that this operation holds a structure-wide **mutual
/// exclusion** over `N` nodes — the single-writer bridge, and (with
/// [`Guard::assume_protected`] and [`Unlinked::assume_unlinked`]) one of
/// the API's trust points.
///
/// The red-black tree serializes writers behind a lock word
/// ([`Field::cas`] on its anchor): while held, no other writer mutates
/// the tree, so link updates are plain stores and node reads need no
/// per-pointer guard announcements. The witness makes that argument a
/// value: every exclusive read/write/publication names it, so the
/// soundness of each plain access is traceable to one acquisition point
/// instead of being diffused through the whole update path.
///
/// The audited contract, with the same rigor as [`Owned::stash`]: mint
/// the witness only after **winning** the exclusion acquisition (the
/// lock CAS) in this operation, re-mint it in later blocks only while
/// the lock is still held, and never let it outlive the release store.
/// Readers may still traverse concurrently — exclusion covers writers
/// only, so retired nodes still flow through [`Unlinked`] and the
/// scheme's deferral pipeline, never straight to the allocator.
#[derive(Debug)]
pub struct Exclusive<N: NodeType> {
    _node: PhantomData<N>,
}

impl<N: NodeType> Exclusive<N> {
    /// Mints the witness; see the type-level contract.
    pub fn assume_exclusive() -> Self {
        Self { _node: PhantomData }
    }

    /// Reads a word of node `node` ([`OpMem::load`]) under the
    /// exclusion.
    pub fn read(&self, mem: &mut Mem<'_, '_>, node: Addr, off: u64) -> Result<Word, Abort> {
        mem.op.load(mem.cpu, node, off)
    }

    /// Writes a word of node `node` ([`OpMem::store`]) under the
    /// exclusion — the plain-store link update exclusion makes sound.
    pub fn write(
        &self,
        mem: &mut Mem<'_, '_>,
        node: Addr,
        off: u64,
        value: Word,
    ) -> Result<(), Abort> {
        mem.op.store(mem.cpu, node, off, value)
    }

    /// Publishes the unpublished `node` by a plain store of its address
    /// into `base + off` ([`OpMem::store`]), consuming the [`Owned`]
    /// token — the exclusive-section counterpart of
    /// [`Atomic::cas_publish`] (no CAS is needed: the witness says no
    /// competing writer exists).
    pub fn publish(
        &self,
        mem: &mut Mem<'_, '_>,
        base: Addr,
        off: u64,
        node: Owned<N>,
    ) -> Result<(), Abort> {
        mem.op.store(mem.cpu, base, off, node.addr.raw())
    }
}

/// # Compile-time contracts
///
/// The properties the types enforce, as `compile_fail` doctests (run by
/// `cargo test --doc`; CI builds docs with `-D warnings`).
///
/// An [`Unlinked`] token cannot be retired twice — the second retire is a
/// use of a moved value:
///
/// ```compile_fail,E0382
/// use st_reclaim::mem::{Mem, NodeType, Unlinked};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn double_retire(mem: &mut Mem<'_, '_>, u: Unlinked<Node>) -> Result<(), st_simhtm::Abort> {
///     u.retire(mem)?;
///     u.retire(mem)?; // ERROR: use of moved value `u`
///     Ok(())
/// }
/// ```
///
/// A [`Shared`] borrow cannot outlive its [`Guard`]:
///
/// ```compile_fail,E0597
/// use st_reclaim::mem::{Guard, GuardPool, GuardRequirement, NodeType, Shared};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn escape() -> Shared<'static, Node> {
///     let mut pool = GuardPool::new(GuardRequirement::new(1));
///     let guard = pool.guard();
///     guard.assume_protected::<Node>(8) // ERROR: `guard` does not live long enough
/// }
/// ```
///
/// Rotating a guard ([`Guard::shield`] needs `&mut Guard`) invalidates
/// the borrow it used to protect:
///
/// ```compile_fail,E0502
/// use st_reclaim::mem::{Guard, Mem, NodeType};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn rotate_invalidates(mem: &mut Mem<'_, '_>, g: &mut Guard) -> u64 {
///     let first = g.assume_protected::<Node>(8);
///     let _second = g.shield::<Node>(mem, 16); // rotates the guard...
///     first.word() // ERROR: `first` still borrows `g`
/// }
/// ```
///
/// And an [`Owned`] token is consumed by publication — no path retains it
/// afterwards:
///
/// ```compile_fail,E0382
/// use st_reclaim::mem::{Atomic, Mem, NodeType, Owned};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn publish_then_touch(
///     mem: &mut Mem<'_, '_>,
///     link: Atomic<Node>,
///     node: Owned<Node>,
/// ) -> Result<(), st_simhtm::Abort> {
///     link.cas_publish(mem, 0, node)?;
///     node.store(mem, 0, 7)?; // ERROR: use of moved value `node`
///     Ok(())
/// }
/// ```
///
/// The skip list's contract: a borrow out of a **per-level guard array**
/// does not survive a rotation of any guard in that array. Indexing
/// borrows the whole array, so shielding `levels[1]` invalidates the
/// borrow `levels[0]` handed out — the typed form of "advancing one
/// level's guards may not keep stale predecessor borrows at another":
///
/// ```compile_fail,E0502
/// use st_reclaim::mem::{Guard, Mem, NodeType};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn rotate_level(mem: &mut Mem<'_, '_>, levels: &mut [Guard; 2]) -> u64 {
///     let pred = levels[0].assume_protected::<Node>(8);
///     let _below = levels[1].shield::<Node>(mem, 16); // rotates within the array...
///     pred.word() // ERROR: `*levels` is also borrowed as immutable
/// }
/// ```
///
/// The queue's contract: the dequeue head-swing ([`Atomic::cas_unlink`])
/// consumes the old head's borrow along with minting its [`Unlinked`]
/// proof — the retiring dummy cannot be read afterwards:
///
/// ```compile_fail,E0382
/// use st_reclaim::mem::{Atomic, Mem, NodeType, Shared};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn touch_old_head(
///     mem: &mut Mem<'_, '_>,
///     head: Atomic<Node>,
///     old_head: Shared<'_, Node>,
///     next: u64,
/// ) -> Result<u64, st_simhtm::Abort> {
///     let unlinked = head.cas_unlink(mem, old_head, next)?;
///     if let Ok(u) = unlinked {
///         u.retire(mem)?;
///     }
///     old_head.read(mem, 0) // ERROR: use of moved value `old_head`
/// }
/// ```
pub mod contracts {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};
    use crate::{Scheme, SchemeFactory};
    use st_simhtm::{HtmConfig, HtmEngine};
    use stacktrack::Step;
    use std::sync::Arc;

    #[derive(Clone, Copy)]
    struct PairNode;
    impl NodeType for PairNode {
        const WORDS: usize = 2;
    }

    #[test]
    fn guard_requirement_max_and_pool_order() {
        let small = GuardRequirement::new(2);
        let big = GuardRequirement::new(5);
        assert_eq!(small.max(big), big);
        assert_eq!(big.max(small), big);
        assert_eq!(big.guards(), 5);

        let mut pool = GuardPool::new(GuardRequirement::new(3));
        assert_eq!(pool.guard().index(), 0);
        assert_eq!(pool.guard().index(), 1);
        assert_eq!(pool.guard().index(), 2);
    }

    #[test]
    #[should_panic(expected = "guard requirement exhausted")]
    fn pool_enforces_declared_requirement() {
        let mut pool = GuardPool::new(GuardRequirement::new(1));
        let _a = pool.guard();
        let _b = pool.guard();
    }

    /// The typed surface compiles to the identical raw call sequence: a
    /// hazard-pointer executor (the scheme with the most observable
    /// protection protocol) sees the same publications, fences, and
    /// retires through the typed API as through hand-written raw calls.
    #[test]
    fn typed_calls_match_raw_calls_under_hazards() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::Hazard)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(3))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        // A two-node chain: root -> a -> b.
        let root = heap.alloc_untimed(1).unwrap();
        let a = heap.alloc_untimed(2).unwrap();
        let b = heap.alloc_untimed(2).unwrap();
        heap.poke(root, 0, a.raw());
        heap.poke(a, 0, 0xa_0);
        heap.poke(a, 1, b.raw());

        // Typed traversal: load a through a guard, read its key, load its
        // next, unlink a, retire it through the minted proof.
        let result = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let mut pool = GuardPool::new(GuardRequirement::new(3));
            let mut g_cur = pool.guard();
            let mut g_next = pool.guard();

            let head = Atomic::<PairNode>::root(root, 0);
            let cur = head.load(&mut mem, &mut g_cur)?;
            assert_eq!(cur.addr(), a);
            assert!(!cur.marked());
            let key = cur.read(&mut mem, 0)?;
            assert_eq!(key, 0xa_0);
            let next = cur.link::<PairNode>(1).load(&mut mem, &mut g_next)?;
            assert_eq!(next.addr(), b);

            match head.cas_unlink(&mut mem, cur, next.addr_word())? {
                Ok(unlinked) => {
                    assert_eq!(unlinked.addr(), a);
                    unlinked.retire(&mut mem)?;
                }
                Err(actual) => panic!("unexpected CAS mismatch: {actual:#x}"),
            }
            Ok(Step::Done(1))
        });
        assert_eq!(result, 1);
        assert_eq!(heap.peek(root, 0), b.raw());
        assert_eq!(th.outstanding_garbage(), 1, "retire reached the scheme");
        th.teardown(&mut cpu);
        assert!(!heap.is_live(a), "retired node freed at teardown");
    }

    #[test]
    fn owned_publish_and_dispose_paths() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::Hazard)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);
        let root = heap.alloc_untimed(1).unwrap();

        // Publish path: the Owned token is consumed by the winning CAS.
        let published = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let node = mem.alloc::<PairNode>();
            node.store(&mut mem, 0, 42)?;
            let link = Atomic::<PairNode>::root(root, 0);
            match link.cas_publish(&mut mem, 0, node)? {
                Ok(()) => Ok(Step::Done(1)),
                Err((lost, _actual)) => {
                    lost.dispose(&mut mem)?;
                    Ok(Step::Done(0))
                }
            }
        });
        assert_eq!(published, 1);
        let installed = Addr::from_raw(heap.peek(root, 0));
        assert_eq!(heap.peek(installed, 0), 42);

        // Dispose path: a lost CAS hands the token back for disposal.
        let live_before = heap.stats().alloc.live_objects;
        let published = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let node = mem.alloc::<PairNode>();
            let link = Atomic::<PairNode>::root(root, 0);
            match link.cas_publish(&mut mem, 0, node)? {
                Ok(()) => Ok(Step::Done(1)),
                Err((lost, actual)) => {
                    assert_eq!(actual, installed.raw());
                    lost.dispose(&mut mem)?;
                    Ok(Step::Done(0))
                }
            }
        });
        assert_eq!(published, 0, "second publish must lose");
        th.teardown(&mut cpu);
        assert_eq!(
            heap.stats().alloc.live_objects,
            live_before,
            "disposed node returned to the allocator"
        );
    }

    /// The traversal bridges lower to the identical raw calls: a
    /// hand-over-self walk (`rotate_load`), a validation read
    /// (`load_word`), a helping snip (`cas_snip`), and a deferred retire
    /// (`assume_unlinked`) behave exactly like their raw counterparts
    /// under the hazard-pointer executor.
    #[test]
    fn traversal_bridges_match_raw_calls_under_hazards() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::Hazard)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(2))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        // A three-node chain: root -> a -> b -> c.
        let root = heap.alloc_untimed(1).unwrap();
        let a = heap.alloc_untimed(2).unwrap();
        let b = heap.alloc_untimed(2).unwrap();
        let c = heap.alloc_untimed(2).unwrap();
        heap.poke(root, 0, a.raw());
        heap.poke(a, 0, 0xa_0);
        heap.poke(a, 1, b.raw());
        heap.poke(b, 0, 0xb_0);
        heap.poke(b, 1, c.raw());
        heap.poke(c, 0, 0xc_0);

        let result = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let mut pool = GuardPool::new(GuardRequirement::new(2));
            let mut g_cur = pool.guard();

            // Hand-over-self walk: root -> a -> b through one guard.
            let head = Atomic::<PairNode>::root(root, 0);
            let cur = head.load(&mut mem, &mut g_cur)?;
            assert_eq!(cur.addr(), a);
            let cur_addr = cur.addr();
            assert_eq!(cur.read(&mut mem, 0)?, 0xa_0);
            let cur = g_cur.rotate_load::<PairNode>(&mut mem, cur_addr, 1)?;
            assert_eq!(cur.addr(), b);
            assert_eq!(cur.read(&mut mem, 0)?, 0xb_0);

            // Validation read: the head word is still a, unprotected.
            assert_eq!(head.load_word(&mut mem)?, a.raw());

            // Helping snip: swing head past a without minting a proof.
            let stale = g_cur.assume_protected::<PairNode>(a.raw());
            match head.cas_snip(&mut mem, &stale, b.raw())? {
                Ok(()) => {}
                Err(actual) => panic!("unexpected snip mismatch: {actual:#x}"),
            }
            // The victim borrow survives the snip — still readable.
            assert_eq!(stale.read(&mut mem, 0)?, 0xa_0);

            // Deferred retire: this operation won the snip above, so it
            // owns the unlink; mint the proof and retire.
            Unlinked::<PairNode>::assume_unlinked(a.raw()).retire(&mut mem)?;
            Ok(Step::Done(1))
        });
        assert_eq!(result, 1);
        assert_eq!(heap.peek(root, 0), b.raw());
        assert_eq!(th.outstanding_garbage(), 1, "retire reached the scheme");
        th.teardown(&mut cpu);
        assert!(!heap.is_live(a), "snipped node freed at teardown");
        assert!(heap.is_live(b), "linked node untouched");
    }

    /// `Field` and `Exclusive` lower to plain load/store/CAS: a writer
    /// takes a lock word, publishes a node by plain store, rewires a
    /// link, and unlocks — the red-black tree's update shape.
    #[test]
    fn field_and_exclusive_lower_to_plain_accesses() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::Hazard)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        // Anchor: [lock, root]; one published node with one data word.
        let anchor = heap.alloc_untimed(2).unwrap();
        let old = heap.alloc_untimed(2).unwrap();
        heap.poke(anchor, 1, old.raw());
        heap.poke(old, 0, 5);

        let result = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let lock = Field::root(anchor, 0);
            match lock.cas(&mut mem, 0, 1)? {
                Ok(_) => {}
                Err(actual) => panic!("lock taken: {actual:#x}"),
            }
            let excl = Exclusive::<PairNode>::assume_exclusive();
            let old_word = excl.read(&mut mem, anchor, 1)?;
            assert_eq!(old_word, old.raw());

            // Publish a replacement by plain store, then unlink the old
            // node (also a plain store under exclusion) and retire it.
            let node = mem.alloc::<PairNode>();
            node.store(&mut mem, 0, 7)?;
            excl.publish(&mut mem, anchor, 1, node)?;
            excl.write(&mut mem, Addr::from_raw(old_word), 1, 0)?;
            Unlinked::<PairNode>::assume_unlinked(old_word).retire(&mut mem)?;

            lock.write(&mut mem, 0)?;
            assert_eq!(lock.read(&mut mem)?, 0);
            Ok(Step::Done(1))
        });
        assert_eq!(result, 1);
        let installed = Addr::from_raw(heap.peek(anchor, 1));
        assert_ne!(installed, old);
        assert_eq!(heap.peek(installed, 0), 7);
        th.teardown(&mut cpu);
        assert!(!heap.is_live(old), "transplanted node freed at teardown");
    }

    #[test]
    fn alloc_var_sizes_within_declared_layout() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::None)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);
        let got = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            // A one-word "tower" of the two-word layout.
            let node = mem.alloc_var::<PairNode>(1);
            node.store(&mut mem, 0, 9)?;
            let addr = node.addr();
            node.dispose(&mut mem)?;
            Ok(Step::Done(addr.raw()))
        });
        assert_ne!(got, 0);
        th.teardown(&mut cpu);
    }

    #[test]
    #[should_panic(expected = "alloc_var")]
    fn alloc_var_rejects_oversized_requests() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::None)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);
        th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let _ = mem.alloc_var::<PairNode>(3);
            Ok(Step::Done(0))
        });
    }

    #[test]
    fn stash_round_trips_across_blocks() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::None)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        assert!(Owned::<PairNode>::unstash(0).is_none());
        let got = th.run_op(&mut cpu, 0, 1, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            match Owned::<PairNode>::unstash(mem.local(0)) {
                None => {
                    let node = mem.alloc::<PairNode>();
                    node.store(&mut mem, 0, 7)?;
                    let word = node.stash();
                    mem.set_local(0, word);
                    Ok(Step::Continue)
                }
                Some(node) => {
                    let addr = node.addr();
                    node.dispose(&mut mem)?;
                    Ok(Step::Done(addr.raw()))
                }
            }
        });
        assert_ne!(got, 0);
        th.teardown(&mut cpu);
    }
}
