//! The typed smart-pointer reclamation API.
//!
//! Structures used to be hand-wired to the reclaim layer through raw
//! guard indices (`G_PREV`/`G_CUR` constants rotated by hand) and untyped
//! [`OpMem::protect`]/[`OpMem::retire`] calls on raw words — each new
//! scheme × structure pairing worked only because a human re-audited every
//! protection point. This module replaces that convention with *types*,
//! in the shape of the reclamation-interface literature (Meyer & Wolff,
//! PAPERS.md) and the `conquer-reclaim` Treiber exemplar (SNIPPETS.md):
//!
//! | Type | Meaning | Enforced by |
//! |------|---------|-------------|
//! | [`Atomic<N>`] | a shared pointer word (a node link or a root) | loads go through scheme protection ([`OpMem::load_ptr`]) |
//! | [`Shared<'g, N>`] | a protected borrow of a node | tied to its [`Guard`]'s borrow — cannot outlive or out-rotate it |
//! | [`Owned<N>`] | a freshly allocated, unpublished node | consumed by publication; its drop path is [`OpMem::free_unpublished`] |
//! | [`Unlinked<N>`] | proof that a node was atomically unlinked | move-only; the **only** way to reach retire |
//!
//! Where `conquer-reclaim` makes the reclaimer a type parameter
//! (`Atomic<T, R>`), this repository dispatches it at runtime: the same
//! operation body runs under every [`crate::SchemeThread`], and the typed
//! layer compiles down to the *identical* [`OpMem`] instruction sequence
//! the hand-wired code issued — same calls, same order, same cycle
//! charges — so all eight schemes compose with zero per-scheme code and
//! the committed benchmark figures stay byte-identical. The node type
//! parameter `N` ([`NodeType`]) carries the layout instead.
//!
//! # Guards and the step machine
//!
//! Operation bodies are basic-block step closures: every block re-enters
//! from shadow-stack locals, and scheme-side guard state persists across
//! blocks. The typed layer mirrors that split:
//!
//! - Within a block, a [`GuardPool`] hands out [`Guard`] handles in
//!   declaration order (deterministic indices — the typed replacement for
//!   the `G_*` constants). [`Guard::shield`] announces a pointer and
//!   returns a [`Shared`] borrow; re-shielding needs `&mut Guard`, which
//!   the borrow checker refuses while a previous [`Shared`] is alive.
//! - Across blocks, pointers persist as words in shadow locals;
//!   [`Guard::assume_protected`] re-materializes the borrow in the next
//!   block. This is the one trust point of the API (see its docs) — it
//!   asserts what the previous block's types already proved.
//!
//! # Oracle attachment
//!
//! The typed layer is the generic hook point for the checker's oracles,
//! for any structure written against it, with no per-structure wiring:
//!
//! - **Use-after-free:** every deref ([`Shared::read`], [`Atomic::load`])
//!   funnels through [`OpMem::load`]/[`OpMem::load_ptr`], which the
//!   simulated heap's poison and speculative-read oracles instrument.
//! - **Heap ledger:** every retirement funnels through
//!   [`Unlinked::retire`] → [`OpMem::retire`], whose scheme
//!   implementations report the pipeline-acceptance point to the heap's
//!   lifecycle ledger; [`Owned`] tokens dropped without being published
//!   or [`Owned::dispose`]d surface as leak-at-teardown.
//!
//! See `docs/MEMORY_API.md` for the full type map, lifetime rules, and
//! the migration guide from raw guards.

use st_machine::Cpu;
use st_simheap::{Addr, TaggedPtr, Word};
use st_simhtm::Abort;
use stacktrack::OpMem;
use std::marker::PhantomData;

/// Declares a node layout: how many heap words one node occupies.
///
/// Implemented by zero-sized marker types (one per structure node kind),
/// which parameterize [`Atomic`], [`Shared`], [`Owned`], and [`Unlinked`]
/// so links of different structures cannot be mixed up.
///
/// ```
/// use st_reclaim::mem::NodeType;
///
/// /// `[key, next]` — a Harris-list node.
/// #[derive(Clone, Copy)]
/// struct ListNode;
/// impl NodeType for ListNode {
///     const WORDS: usize = 2;
/// }
/// assert_eq!(ListNode::WORDS, 2);
/// ```
pub trait NodeType: Copy {
    /// Node size in heap words.
    const WORDS: usize;
}

/// How many guard slots a structure's operations need at once.
///
/// Declared once per structure (next to its node layout) and consumed by
/// [`crate::SchemeFactoryBuilder::guard_requirement`], which derives
/// [`crate::ReclaimConfig::hazard_slots`] from it — replacing the
/// `2 * MAX_LEVEL + 2` arithmetic that used to be copy-pasted into every
/// harness. Harnesses that run several structures (or must keep a
/// determinism contract with committed results) combine requirements with
/// [`GuardRequirement::max`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardRequirement {
    guards: usize,
}

impl GuardRequirement {
    /// A requirement of `guards` simultaneous guard slots.
    pub const fn new(guards: usize) -> Self {
        Self { guards }
    }

    /// The number of guard slots required.
    pub const fn guards(self) -> usize {
        self.guards
    }

    /// The pointwise maximum of two requirements (for harnesses driving
    /// more than one structure through one factory).
    pub const fn max(self, other: Self) -> Self {
        Self {
            guards: if self.guards >= other.guards {
                self.guards
            } else {
                other.guards
            },
        }
    }
}

/// Hands out the operation's [`Guard`] handles in declaration order.
///
/// Created fresh at the top of every basic block (it is plain bookkeeping
/// — no simulated work, no cycle charges): because handles are taken in
/// the same order each block, each guard re-acquires the same slot index
/// its protections were published under in earlier blocks.
pub struct GuardPool {
    next: usize,
    limit: usize,
}

impl GuardPool {
    /// A pool sized by the structure's declared requirement.
    pub fn new(requirement: GuardRequirement) -> Self {
        Self {
            next: 0,
            limit: requirement.guards(),
        }
    }

    /// Takes the next guard handle.
    ///
    /// # Panics
    ///
    /// Panics when the pool's declared requirement is exhausted — the
    /// structure is using more simultaneous guards than it declared, the
    /// bug the requirement exists to catch at the first test run instead
    /// of as a silent out-of-range hazard slot.
    pub fn guard(&mut self) -> Guard {
        assert!(
            self.next < self.limit,
            "guard requirement exhausted: operation takes more than {} guards",
            self.limit
        );
        let index = self.next;
        self.next += 1;
        Guard { index }
    }
}

/// One per-operation protection slot, owned by the operation body.
///
/// A guard covers **one pointer at a time**. Announcing a pointer
/// ([`Guard::shield`], or an [`Atomic::load`] through the guard) returns
/// a [`Shared`] borrow tied to this guard; announcing a *different*
/// pointer requires `&mut Guard` again, so the borrow checker rejects any
/// use of the stale borrow afterwards — the typed form of the rule that
/// rotating a guard slot invalidates what it used to protect.
pub struct Guard {
    index: usize,
}

impl Guard {
    /// The underlying scheme guard-slot index (deterministic: pool
    /// declaration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Announces an **already-protected or immortal** pointer word in
    /// this guard, returning the protected borrow.
    ///
    /// Compiles to exactly one [`OpMem::protect`]: the value must still
    /// be covered — by another guard, by being a never-reclaimed root
    /// (sentinels), or by the enclosing scheme's stronger mechanism — for
    /// the fence-free re-announcement to be sound, exactly as the raw
    /// call required. Tag bits may be present; schemes strip them.
    pub fn shield<'g, N: NodeType>(
        &'g mut self,
        mem: &mut Mem<'_, '_>,
        word: Word,
    ) -> Shared<'g, N> {
        #[allow(deprecated)] // the typed API is the sanctioned caller
        mem.op.protect(mem.cpu, self.index, word);
        Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        }
    }

    /// Re-materializes a borrow for a pointer **this guard already
    /// protects**, without re-announcing it (no simulated work).
    ///
    /// This is the bridge across basic-block boundaries — and the one
    /// trust point of the typed API. The contract: `word` was shielded
    /// into (or loaded through) this guard in an earlier block of the
    /// same operation and the guard has not been rotated since; the
    /// caller typically just read it back from the shadow local it was
    /// stored to in that block. Passing any other word reintroduces the
    /// unprotected-deref bug class the API exists to prevent, so treat
    /// every call site as a (small, local) proof obligation.
    pub fn assume_protected<'g, N: NodeType>(&'g self, word: Word) -> Shared<'g, N> {
        Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        }
    }
}

/// The typed view over one basic block's [`OpMem`] + [`Cpu`] pair.
///
/// Constructed at the top of the block from the body's two arguments;
/// every typed operation borrows it mutably and compiles to exactly one
/// raw [`OpMem`] call.
pub struct Mem<'m, 'c> {
    op: &'m mut dyn OpMem,
    cpu: &'c mut Cpu,
}

impl<'m, 'c> Mem<'m, 'c> {
    /// Wraps the body's raw arguments.
    pub fn new(op: &'m mut dyn OpMem, cpu: &'c mut Cpu) -> Self {
        Self { op, cpu }
    }

    /// Reads shadow-stack local `slot` ([`OpMem::get_local`]).
    pub fn local(&mut self, slot: usize) -> Word {
        self.op.get_local(self.cpu, slot)
    }

    /// Writes shadow-stack local `slot` ([`OpMem::set_local`]).
    pub fn set_local(&mut self, slot: usize, value: Word) {
        self.op.set_local(self.cpu, slot, value);
    }

    /// Allocates a zeroed, unpublished node ([`OpMem::alloc`]).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted (a configuration error,
    /// as for the raw call).
    pub fn alloc<N: NodeType>(&mut self) -> Owned<N> {
        let addr = self.op.alloc(self.cpu, N::WORDS);
        Owned {
            addr,
            _node: PhantomData,
        }
    }

    /// The simulated CPU (for body-side randomness or cycle queries;
    /// never needed for memory operations, which all charge through the
    /// typed methods).
    pub fn cpu(&mut self) -> &mut Cpu {
        self.cpu
    }
}

/// A typed shared pointer **location**: a heap word holding a (possibly
/// mark-tagged) pointer to an `N` node.
///
/// Obtained from a protected node's link field ([`Shared::link`]) or from
/// a never-reclaimed root ([`Atomic::root`]). Copyable — it names a
/// place, not a protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atomic<N: NodeType> {
    base: Addr,
    off: u64,
    _node: PhantomData<N>,
}

impl<N: NodeType> Atomic<N> {
    /// The pointer word at `base + off`, where `base` is a structure
    /// **root** (a sentinel or anchor that is never retired, so reading
    /// through it needs no protection of `base` itself).
    pub fn root(base: Addr, off: u64) -> Self {
        Self {
            base,
            off,
            _node: PhantomData,
        }
    }

    /// Loads the pointer through scheme protection into `guard`
    /// ([`OpMem::load_ptr`]): hazard-style schemes publish, fence, and
    /// revalidate internally; the returned borrow is protected for as
    /// long as the guard is not rotated.
    pub fn load<'g>(
        &self,
        mem: &mut Mem<'_, '_>,
        guard: &'g mut Guard,
    ) -> Result<Shared<'g, N>, Abort> {
        let word = mem.op.load_ptr(mem.cpu, self.base, self.off, guard.index)?;
        Ok(Shared {
            ptr: TaggedPtr::from_word(word),
            _guard: PhantomData,
            _node: PhantomData,
        })
    }

    /// Raw-word compare-and-swap on the location ([`OpMem::cas`]):
    /// `Ok(Ok(prev))` on success, `Ok(Err(actual))` on mismatch.
    ///
    /// For tag flips (Harris delete marks) and other in-place updates
    /// that neither unlink nor publish a node — it can never mint an
    /// [`Unlinked`] token or consume an [`Owned`] one.
    pub fn cas_word(
        &self,
        mem: &mut Mem<'_, '_>,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        mem.op.cas(mem.cpu, self.base, self.off, expected, new)
    }

    /// The unlinking compare-and-swap: swings this location past
    /// `victim` (from `victim`'s address word to `new`), and on success
    /// mints the **unique proof of unlink** — the only value in the API
    /// from which retire is reachable.
    ///
    /// On mismatch returns the actual word; the victim stays linked and
    /// no token exists, so it cannot be retired.
    pub fn cas_unlink(
        &self,
        mem: &mut Mem<'_, '_>,
        victim: Shared<'_, N>,
        new: Word,
    ) -> Result<Result<Unlinked<N>, Word>, Abort> {
        match mem
            .op
            .cas(mem.cpu, self.base, self.off, victim.ptr.word(), new)?
        {
            Ok(_prev) => Ok(Ok(Unlinked {
                addr: victim.ptr.addr(),
                _node: PhantomData,
            })),
            Err(actual) => Ok(Err(actual)),
        }
    }

    /// The publishing compare-and-swap: installs the unpublished `node`
    /// (consuming its [`Owned`] token — once other threads can reach it,
    /// the unpublished drop path is gone forever). On mismatch the token
    /// comes back with the actual word, for retry or disposal.
    pub fn cas_publish(
        &self,
        mem: &mut Mem<'_, '_>,
        expected: Word,
        node: Owned<N>,
    ) -> Result<Result<(), (Owned<N>, Word)>, Abort> {
        match mem
            .op
            .cas(mem.cpu, self.base, self.off, expected, node.addr.raw())?
        {
            Ok(_prev) => Ok(Ok(())),
            Err(actual) => Ok(Err((node, actual))),
        }
    }
}

/// A protected borrow of an `N` node (possibly carrying the Harris
/// deletion mark), valid for `'g` — the borrow of the [`Guard`] that
/// protects it.
///
/// Not `Copy`/`Clone`: consuming operations ([`Atomic::cas_unlink`])
/// take it by value, ending the guard borrow so the guard can rotate.
#[derive(Debug)]
pub struct Shared<'g, N: NodeType> {
    ptr: TaggedPtr,
    _guard: PhantomData<&'g Guard>,
    _node: PhantomData<N>,
}

impl<'g, N: NodeType> Shared<'g, N> {
    /// The raw pointer word, tag bits included.
    pub fn word(&self) -> Word {
        self.ptr.word()
    }

    /// The node address, tag bits stripped.
    pub fn addr(&self) -> Addr {
        self.ptr.addr()
    }

    /// The node address as an (untagged) pointer word — what gets stored
    /// into shadow locals and shielded into rotating guards.
    pub fn addr_word(&self) -> Word {
        self.ptr.addr().raw()
    }

    /// Whether the Harris deletion mark is set on this pointer.
    pub fn marked(&self) -> bool {
        self.ptr.marked()
    }

    /// Whether the address part is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The underlying tagged-pointer view.
    pub fn tagged(&self) -> TaggedPtr {
        self.ptr
    }

    /// Reads a data word of the node ([`OpMem::load`]) — the typed deref.
    /// Every read through a `Shared` is what the heap's poison and
    /// speculative-read use-after-free oracles instrument.
    pub fn read(&self, mem: &mut Mem<'_, '_>, off: u64) -> Result<Word, Abort> {
        mem.op.load(mem.cpu, self.ptr.addr(), off)
    }

    /// The node's link field at word `off`, as a typed location pointing
    /// at `M` nodes — protected access to the node makes naming its
    /// fields safe.
    pub fn link<M: NodeType>(&self, off: u64) -> Atomic<M> {
        Atomic {
            base: self.ptr.addr(),
            off,
            _node: PhantomData,
        }
    }
}

/// A freshly allocated node no other thread can reach yet.
///
/// Move-only: publication ([`Atomic::cas_publish`]) consumes it, and the
/// not-published drop path is [`Owned::dispose`] →
/// [`OpMem::free_unpublished`]. A token abandoned without either (other
/// than by [`Owned::stash`]ing it to a shadow local for a later block) is
/// a leak, and shows up as exactly that in the heap ledger's
/// leak-at-teardown oracle.
#[derive(Debug)]
pub struct Owned<N: NodeType> {
    addr: Addr,
    _node: PhantomData<N>,
}

impl<N: NodeType> Owned<N> {
    /// The node address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The address as a pointer word (for link stores and stashing).
    pub fn word(&self) -> Word {
        self.addr.raw()
    }

    /// Initializes a word of the unpublished node ([`OpMem::store`]).
    pub fn store(&self, mem: &mut Mem<'_, '_>, off: u64, value: Word) -> Result<(), Abort> {
        mem.op.store(mem.cpu, self.addr, off, value)
    }

    /// Consumes the token into a plain word for a shadow local — the
    /// step-machine bridge for keeping an unpublished node across basic
    /// blocks (e.g. retrying a lost insert without reallocating).
    /// Re-materialize it with [`Owned::unstash`] in a later block.
    pub fn stash(self) -> Word {
        self.addr.raw()
    }

    /// Re-materializes a token stashed by [`Owned::stash`]; `None` for
    /// the zero word (no node stashed). The contract mirrors
    /// [`Guard::assume_protected`]: the word must come from a stash of
    /// the same operation, still unpublished.
    pub fn unstash(word: Word) -> Option<Self> {
        if word == 0 {
            None
        } else {
            Some(Self {
                addr: Addr::from_raw(word),
                _node: PhantomData,
            })
        }
    }

    /// Returns the never-published node to the allocator
    /// ([`OpMem::free_unpublished`]) — the drop path for a node whose
    /// publication was abandoned (duplicate key found, operation gave
    /// up).
    pub fn dispose(self, mem: &mut Mem<'_, '_>) -> Result<(), Abort> {
        mem.op.free_unpublished(mem.cpu, self.addr)
    }
}

/// The unique proof that a node was atomically unlinked — and therefore
/// the **only** way to reach [`OpMem::retire`].
///
/// Minted solely by [`Atomic::cas_unlink`] on CAS success; move-only, so
/// the node can be retired at most once (a second retire is a
/// use-of-moved-value compile error — see the `compile_fail` tests in
/// this module's documentation tests and `docs/MEMORY_API.md`).
#[derive(Debug)]
#[must_use = "an unlinked node must be retired (or the structure leaks it)"]
pub struct Unlinked<N: NodeType> {
    addr: Addr,
    _node: PhantomData<N>,
}

impl<N: NodeType> Unlinked<N> {
    /// The unlinked node's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Hands the node to the reclamation scheme ([`OpMem::retire`]),
    /// consuming the proof. Must run in the same basic block as the
    /// unlink CAS (the raw contract, unchanged: StackTrack commits the
    /// segment to make unlink + retire atomic).
    ///
    /// This consumption point is where the heap-ledger oracle attaches
    /// generically: every scheme's `retire` implementation reports the
    /// pipeline-acceptance to the heap's lifecycle ledger.
    pub fn retire(self, mem: &mut Mem<'_, '_>) -> Result<(), Abort> {
        #[allow(deprecated)] // the typed API is the sanctioned caller
        mem.op.retire(mem.cpu, self.addr)
    }
}

/// # Compile-time contracts
///
/// The properties the types enforce, as `compile_fail` doctests (run by
/// `cargo test --doc`; CI builds docs with `-D warnings`).
///
/// An [`Unlinked`] token cannot be retired twice — the second retire is a
/// use of a moved value:
///
/// ```compile_fail,E0382
/// use st_reclaim::mem::{Mem, NodeType, Unlinked};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn double_retire(mem: &mut Mem<'_, '_>, u: Unlinked<Node>) -> Result<(), st_simhtm::Abort> {
///     u.retire(mem)?;
///     u.retire(mem)?; // ERROR: use of moved value `u`
///     Ok(())
/// }
/// ```
///
/// A [`Shared`] borrow cannot outlive its [`Guard`]:
///
/// ```compile_fail,E0597
/// use st_reclaim::mem::{Guard, GuardPool, GuardRequirement, NodeType, Shared};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn escape() -> Shared<'static, Node> {
///     let mut pool = GuardPool::new(GuardRequirement::new(1));
///     let guard = pool.guard();
///     guard.assume_protected::<Node>(8) // ERROR: `guard` does not live long enough
/// }
/// ```
///
/// Rotating a guard ([`Guard::shield`] needs `&mut Guard`) invalidates
/// the borrow it used to protect:
///
/// ```compile_fail,E0502
/// use st_reclaim::mem::{Guard, Mem, NodeType};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn rotate_invalidates(mem: &mut Mem<'_, '_>, g: &mut Guard) -> u64 {
///     let first = g.assume_protected::<Node>(8);
///     let _second = g.shield::<Node>(mem, 16); // rotates the guard...
///     first.word() // ERROR: `first` still borrows `g`
/// }
/// ```
///
/// And an [`Owned`] token is consumed by publication — no path retains it
/// afterwards:
///
/// ```compile_fail,E0382
/// use st_reclaim::mem::{Atomic, Mem, NodeType, Owned};
///
/// #[derive(Clone, Copy)]
/// struct Node;
/// impl NodeType for Node {
///     const WORDS: usize = 2;
/// }
///
/// fn publish_then_touch(
///     mem: &mut Mem<'_, '_>,
///     link: Atomic<Node>,
///     node: Owned<Node>,
/// ) -> Result<(), st_simhtm::Abort> {
///     link.cas_publish(mem, 0, node)?;
///     node.store(mem, 0, 7)?; // ERROR: use of moved value `node`
///     Ok(())
/// }
/// ```
pub mod contracts {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};
    use crate::{Scheme, SchemeFactory};
    use st_simhtm::{HtmConfig, HtmEngine};
    use stacktrack::Step;
    use std::sync::Arc;

    #[derive(Clone, Copy)]
    struct PairNode;
    impl NodeType for PairNode {
        const WORDS: usize = 2;
    }

    #[test]
    fn guard_requirement_max_and_pool_order() {
        let small = GuardRequirement::new(2);
        let big = GuardRequirement::new(5);
        assert_eq!(small.max(big), big);
        assert_eq!(big.max(small), big);
        assert_eq!(big.guards(), 5);

        let mut pool = GuardPool::new(GuardRequirement::new(3));
        assert_eq!(pool.guard().index(), 0);
        assert_eq!(pool.guard().index(), 1);
        assert_eq!(pool.guard().index(), 2);
    }

    #[test]
    #[should_panic(expected = "guard requirement exhausted")]
    fn pool_enforces_declared_requirement() {
        let mut pool = GuardPool::new(GuardRequirement::new(1));
        let _a = pool.guard();
        let _b = pool.guard();
    }

    /// The typed surface compiles to the identical raw call sequence: a
    /// hazard-pointer executor (the scheme with the most observable
    /// protection protocol) sees the same publications, fences, and
    /// retires through the typed API as through hand-written raw calls.
    #[test]
    fn typed_calls_match_raw_calls_under_hazards() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::Hazard)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(3))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        // A two-node chain: root -> a -> b.
        let root = heap.alloc_untimed(1).unwrap();
        let a = heap.alloc_untimed(2).unwrap();
        let b = heap.alloc_untimed(2).unwrap();
        heap.poke(root, 0, a.raw());
        heap.poke(a, 0, 0xa_0);
        heap.poke(a, 1, b.raw());

        // Typed traversal: load a through a guard, read its key, load its
        // next, unlink a, retire it through the minted proof.
        let result = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let mut pool = GuardPool::new(GuardRequirement::new(3));
            let mut g_cur = pool.guard();
            let mut g_next = pool.guard();

            let head = Atomic::<PairNode>::root(root, 0);
            let cur = head.load(&mut mem, &mut g_cur)?;
            assert_eq!(cur.addr(), a);
            assert!(!cur.marked());
            let key = cur.read(&mut mem, 0)?;
            assert_eq!(key, 0xa_0);
            let next = cur.link::<PairNode>(1).load(&mut mem, &mut g_next)?;
            assert_eq!(next.addr(), b);

            match head.cas_unlink(&mut mem, cur, next.addr_word())? {
                Ok(unlinked) => {
                    assert_eq!(unlinked.addr(), a);
                    unlinked.retire(&mut mem)?;
                }
                Err(actual) => panic!("unexpected CAS mismatch: {actual:#x}"),
            }
            Ok(Step::Done(1))
        });
        assert_eq!(result, 1);
        assert_eq!(heap.peek(root, 0), b.raw());
        assert_eq!(th.outstanding_garbage(), 1, "retire reached the scheme");
        th.teardown(&mut cpu);
        assert!(!heap.is_live(a), "retired node freed at teardown");
    }

    #[test]
    fn owned_publish_and_dispose_paths() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::Hazard)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);
        let root = heap.alloc_untimed(1).unwrap();

        // Publish path: the Owned token is consumed by the winning CAS.
        let published = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let node = mem.alloc::<PairNode>();
            node.store(&mut mem, 0, 42)?;
            let link = Atomic::<PairNode>::root(root, 0);
            match link.cas_publish(&mut mem, 0, node)? {
                Ok(()) => Ok(Step::Done(1)),
                Err((lost, _actual)) => {
                    lost.dispose(&mut mem)?;
                    Ok(Step::Done(0))
                }
            }
        });
        assert_eq!(published, 1);
        let installed = Addr::from_raw(heap.peek(root, 0));
        assert_eq!(heap.peek(installed, 0), 42);

        // Dispose path: a lost CAS hands the token back for disposal.
        let live_before = heap.stats().alloc.live_objects;
        let published = th.run_op(&mut cpu, 0, 0, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            let node = mem.alloc::<PairNode>();
            let link = Atomic::<PairNode>::root(root, 0);
            match link.cas_publish(&mut mem, 0, node)? {
                Ok(()) => Ok(Step::Done(1)),
                Err((lost, actual)) => {
                    assert_eq!(actual, installed.raw());
                    lost.dispose(&mut mem)?;
                    Ok(Step::Done(0))
                }
            }
        });
        assert_eq!(published, 0, "second publish must lose");
        th.teardown(&mut cpu);
        assert_eq!(
            heap.stats().alloc.live_objects,
            live_before,
            "disposed node returned to the allocator"
        );
    }

    #[test]
    fn stash_round_trips_across_blocks() {
        let (heap, _) = test_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let factory = SchemeFactory::builder(Scheme::None)
            .engine(engine)
            .max_threads(1)
            .guard_requirement(GuardRequirement::new(1))
            .build();
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        assert!(Owned::<PairNode>::unstash(0).is_none());
        let got = th.run_op(&mut cpu, 0, 1, &mut |op, cpu| {
            let mut mem = Mem::new(op, cpu);
            match Owned::<PairNode>::unstash(mem.local(0)) {
                None => {
                    let node = mem.alloc::<PairNode>();
                    node.store(&mut mem, 0, 7)?;
                    let word = node.stash();
                    mem.set_local(0, word);
                    Ok(Step::Continue)
                }
                Some(node) => {
                    let addr = node.addr();
                    node.dispose(&mut mem)?;
                    Ok(Step::Done(addr.raw()))
                }
            }
        });
        assert_ne!(got, 0);
        th.teardown(&mut cpu);
    }
}
