//! NBR: neutralization-based reclamation (Singh, Brown, Prokopec), the
//! first "beyond the paper" comparator.
//!
//! NBR splits every operation into a *read phase* and a *write phase*. The
//! read phase traverses with **no per-hop protection at all** — no hazard
//! fence, no anchor, nothing — because it is restartable: a reclaimer that
//! wants memory back sends every peer a signal, and a peer caught in its
//! read phase simply abandons the traversal and starts the operation over.
//! Only at the transition to the write phase (the first store/CAS/retire
//! against shared memory) does a thread publish the handful of pointers
//! the write phase will dereference into per-thread *reservation* slots,
//! with a single fence. A reclaimer therefore never waits: it broadcasts
//! the neutralization signal, scans the reservation slots, and immediately
//! frees every retired node no reservation covers.
//!
//! In this simulator the signal is delivered by the scheduler
//! ([`st_machine::SignalBoard`]): the handler
//! ([`SchemeThread::neutralize`]) runs before the victim's next step, the
//! exact analogue of a POSIX handler running before the next user
//! instruction. Because each step is an atomic basic block, the victim can
//! never be "mid-dereference" when neutralized — which is the same
//! argument real NBR makes at instruction granularity. Restarting is
//! trivial for the scheme-neutral operation bodies: all live state sits in
//! declared local slots, so zeroing them re-enters the body at its first
//! phase; allocations made by the abandoned attempt are returned through
//! the heap's unpublished-free path, keeping the ledger exact.
//!
//! The robustness story mirrors hazard pointers (a stalled or dead reader
//! pins at most its reservation slots' worth of nodes — in its read phase,
//! nothing at all) while the common-case read path costs the same as
//! epoch-based reclamation. The price is the signal broadcast, amortized
//! by batching retires ([`NbrGlobals::scan_threshold`]).

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::tagged::TAG_MASK;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::collections::HashSet;
use std::sync::Arc;

/// Shared NBR state: the reservation-slot matrix, one block of
/// `slots_per_thread` words per thread (padded against false sharing).
#[derive(Debug)]
pub struct NbrGlobals {
    slots: Addr,
    max_threads: usize,
    slots_per_thread: usize,
    stride: usize,
}

impl NbrGlobals {
    /// Allocates the reservation matrix for `max_threads` threads with
    /// `slots_per_thread` reservations each (sized like hazard slots: one
    /// per guard the deepest operation body declares).
    pub fn new(heap: &Arc<Heap>, max_threads: usize, slots_per_thread: usize) -> Self {
        let stride = slots_per_thread.next_multiple_of(8);
        let slots = heap
            .alloc_untimed((max_threads * stride).max(1))
            .expect("heap too small for NBR reservations");
        Self {
            slots,
            max_threads,
            slots_per_thread,
            stride,
        }
    }

    /// Retires between signal broadcasts: the same amortization shape as
    /// Michael's scan threshold, which also bounds the garbage a stalled
    /// peer can pin.
    pub fn scan_threshold(&self) -> usize {
        2 * self.max_threads * self.slots_per_thread
    }

    /// The reservation matrix as a `(base, words)` region for the heap's
    /// ABA re-exposure oracle: while a reservation holds a pointer, the
    /// block it names must not be recycled.
    pub fn region(&self) -> (Addr, u64) {
        (self.slots, (self.max_threads * self.stride) as u64)
    }
}

/// Per-thread NBR executor.
pub struct NbrThread {
    globals: Arc<NbrGlobals>,
    heap: Arc<Heap>,
    thread_id: usize,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    /// `true` once the current operation crossed into its write phase
    /// (reservations published, restarts refused).
    in_write_phase: bool,
    /// Pointer last seen through each guard, kept thread-local during the
    /// read phase and published wholesale at the write-phase transition.
    guard_vals: [Word; 64],
    used_guards: u64,
    /// Blocks allocated by the current attempt; returned via
    /// [`Heap::free_unpublished`] if the attempt is neutralized.
    fresh: Vec<Addr>,
    limbo: Vec<Addr>,
    /// Limbo size that triggers a broadcast + scan; 0 means
    /// [`NbrGlobals::scan_threshold`].
    retire_batch: usize,
    /// **Mutation knob for the model checker — never enable in real
    /// runs.** The neutralization handler ignores the signal instead of
    /// restarting, so the thread keeps traversing through pointers the
    /// signaling reclaimer has already freed — the exact bug class the
    /// restart protocol exists to prevent.
    skip_restart: bool,
    /// Restarts taken in the neutralization handler (statistics).
    pub neutralizations: u64,
    /// Signals broadcast as a reclaimer (statistics).
    pub signals_sent: u64,
    /// Nodes returned to the allocator (statistics).
    pub freed: u64,
}

impl NbrThread {
    /// Creates the executor for thread slot `thread_id`. `retire_batch`
    /// overrides the broadcast threshold when non-zero; `skip_restart`
    /// enables the ignore-neutralization mutation (checker use only).
    pub fn new(
        globals: Arc<NbrGlobals>,
        heap: Arc<Heap>,
        thread_id: usize,
        retire_batch: usize,
        skip_restart: bool,
    ) -> Self {
        Self {
            globals,
            heap,
            thread_id,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            in_write_phase: false,
            guard_vals: [0; 64],
            used_guards: 0,
            fresh: Vec::new(),
            limbo: Vec::new(),
            retire_batch,
            skip_restart,
            neutralizations: 0,
            signals_sent: 0,
            freed: 0,
        }
    }

    fn trigger(&self) -> usize {
        if self.retire_batch > 0 {
            self.retire_batch
        } else {
            self.globals.scan_threshold()
        }
    }

    fn slot_index(&self, guard: usize) -> u64 {
        assert!(
            guard < self.globals.slots_per_thread,
            "NBR guard {guard} out of range"
        );
        (self.thread_id * self.globals.stride + guard) as u64
    }

    /// The read-to-write transition: publish every pointer the read phase
    /// collected into this thread's reservation slots, with one fence.
    /// From here on the operation refuses neutralization.
    fn enter_write_phase(&mut self, cpu: &mut Cpu) {
        if self.in_write_phase {
            return;
        }
        let mut used = self.used_guards;
        while used != 0 {
            let g = used.trailing_zeros() as usize;
            used &= used - 1;
            let slot = self.slot_index(g);
            self.heap
                .store(cpu, self.globals.slots, slot, self.guard_vals[g]);
        }
        self.heap.fence(cpu);
        self.in_write_phase = true;
    }

    /// Clears this thread's published reservations (cheap stores; the
    /// slots only carry values while an operation is in its write phase).
    fn clear_reservations(&mut self, cpu: &mut Cpu) {
        if !self.in_write_phase {
            return;
        }
        let mut used = self.used_guards;
        while used != 0 {
            let g = used.trailing_zeros() as usize;
            used &= used - 1;
            let slot = self.slot_index(g);
            self.heap.store(cpu, self.globals.slots, slot, 0);
        }
    }

    /// The reclaimer path: broadcast the neutralization signal to every
    /// peer, scan the reservation matrix, and free whatever no reservation
    /// covers — no waiting, no acknowledgment.
    fn broadcast_and_reclaim(&mut self, cpu: &mut Cpu) {
        let syscall = cpu.costs.signal_deliver;
        for t in 0..self.globals.max_threads {
            if t == self.thread_id {
                continue;
            }
            cpu.raise_signal(t);
            cpu.charge(syscall);
            self.signals_sent += 1;
        }
        let mut reserved: HashSet<Word> =
            HashSet::with_capacity(self.globals.max_threads * self.globals.slots_per_thread);
        for t in 0..self.globals.max_threads {
            for g in 0..self.globals.slots_per_thread {
                let i = (t * self.globals.stride + g) as u64;
                let r = self.heap.load(cpu, self.globals.slots, i);
                if r != 0 {
                    reserved.insert(r);
                }
            }
        }
        let retired = std::mem::take(&mut self.limbo);
        for node in retired {
            if reserved.contains(&node.raw()) {
                self.limbo.push(node);
            } else {
                self.heap.free(cpu, node);
                self.freed += 1;
            }
        }
    }
}

impl OpMem for NbrThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    /// Read phase: a plain load — the pointer is only recorded locally
    /// (restartability is the protection). Write phase: publish + fence,
    /// hazard-style, since restarts are refused from here on.
    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        guard: usize,
    ) -> Result<Word, Abort> {
        let v = self.heap.load(cpu, addr, off);
        if v & !TAG_MASK == 0 {
            return Ok(v);
        }
        self.guard_vals[guard] = v & !TAG_MASK;
        self.used_guards |= 1 << guard;
        if self.in_write_phase {
            let slot = self.slot_index(guard);
            self.heap
                .store(cpu, self.globals.slots, slot, v & !TAG_MASK);
            self.heap.fence(cpu);
        }
        Ok(v)
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        // Initializing a private, not-yet-linked allocation is still part
        // of the restartable read phase; any other store is a write intent.
        if !self.fresh.contains(&addr) {
            self.enter_write_phase(cpu);
        }
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        if !self.fresh.contains(&addr) {
            self.enter_write_phase(cpu);
        }
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        let addr = self
            .heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words");
        self.fresh.push(addr);
        addr
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        // A retire is a write intent by definition (the unlink it follows
        // certainly was); entering the write phase here keeps the
        // retire-then-restart double-retire impossible by construction.
        self.enter_write_phase(cpu);
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        self.limbo.push(addr);
        if self.limbo.len() >= self.trigger() {
            self.broadcast_and_reclaim(cpu);
        }
        Ok(())
    }

    fn protect_slot(&mut self, cpu: &mut Cpu, guard: usize, value: Word) {
        self.guard_vals[guard] = value & !TAG_MASK;
        self.used_guards |= 1 << guard;
        if self.in_write_phase {
            let slot = self.slot_index(guard);
            self.heap
                .store(cpu, self.globals.slots, slot, value & !TAG_MASK);
        }
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for NbrThread {
    fn begin_op(&mut self, _cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
        self.in_write_phase = false;
        self.used_guards = 0;
        debug_assert!(self.fresh.is_empty());
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                self.clear_reservations(cpu);
                self.used_guards = 0;
                self.in_write_phase = false;
                self.fresh.clear();
                self.active = false;
                Some(v)
            }
        }
    }

    /// The neutralization handler. A signal caught outside an operation or
    /// past the write-phase transition is ignored (the reservations cover
    /// the write phase); a signal caught in the read phase abandons the
    /// attempt: locals are zeroed (the body restarts from its first
    /// phase), attempt-private allocations go back to the allocator, and
    /// the collected guards are forgotten.
    fn neutralize(&mut self, cpu: &mut Cpu) {
        if !self.active || self.in_write_phase {
            return;
        }
        if self.skip_restart {
            // Seeded defect: pretend the handler never ran. The traversal
            // keeps its stale locals and walks into freed memory.
            return;
        }
        self.neutralizations += 1;
        self.locals[..self.slots].fill(0);
        self.used_guards = 0;
        for addr in std::mem::take(&mut self.fresh) {
            self.heap.free_unpublished(cpu, addr);
        }
    }

    fn outstanding_garbage(&self) -> u64 {
        self.limbo.len() as u64
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.nbr.neutralizations", self.neutralizations);
        reg.add("scheme.nbr.signals_sent", self.signals_sent);
        reg.add("scheme.nbr.freed", self.freed);
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        if !self.limbo.is_empty() {
            self.broadcast_and_reclaim(cpu);
        }
    }

    fn scheme_name(&self) -> &'static str {
        "NBR"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};
    use st_machine::SignalBoard;

    fn setup(threads: usize) -> (Arc<NbrGlobals>, Arc<Heap>) {
        let (heap, _) = test_env();
        let globals = Arc::new(NbrGlobals::new(&heap, threads, 4));
        (globals, heap)
    }

    #[test]
    fn read_phase_loads_pay_no_fence() {
        let (globals, heap) = setup(1);
        let mut th = NbrThread::new(globals, heap.clone(), 0, 0, false);
        let mut cpu = test_cpu(0);
        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw());

        th.begin_op(&mut cpu, 0, 0);
        let fences = cpu.counters.fences;
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            Ok(Step::Done(v))
        };
        assert_eq!(th.step_op(&mut cpu, &mut body), Some(x.raw()));
        assert_eq!(cpu.counters.fences, fences, "read phase is fence-free");
    }

    #[test]
    fn first_shared_store_publishes_reservations() {
        let (globals, heap) = setup(1);
        let mut th = NbrThread::new(globals.clone(), heap.clone(), 0, 0, false);
        let mut cpu = test_cpu(0);
        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw());

        th.begin_op(&mut cpu, 0, 0);
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 1)?;
            // No publication yet...
            m.store(cpu, cell, 0, v)?; // ...until the first shared store.
            Ok(Step::Continue)
        };
        let fences = cpu.counters.fences;
        th.step_op(&mut cpu, &mut body);
        assert!(th.in_write_phase);
        assert!(cpu.counters.fences > fences, "transition costs one fence");
        assert_eq!(heap.peek(globals.slots, 1), x.raw(), "reservation live");

        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        th.step_op(&mut cpu, &mut fin);
        assert_eq!(heap.peek(globals.slots, 1), 0, "cleared at op end");
    }

    #[test]
    fn reclaimer_frees_immediately_and_respects_reservations() {
        let (globals, heap) = setup(2);
        let mut writer = NbrThread::new(globals.clone(), heap.clone(), 0, 0, false);
        let mut reclaimer = NbrThread::new(globals.clone(), heap.clone(), 1, 1, false);
        let mut cpu_w = test_cpu(0);
        let mut cpu_r = test_cpu(1);

        let cell = heap.alloc_untimed(1).unwrap();
        let x = heap.alloc_untimed(2).unwrap();
        let y = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, x.raw());

        // Writer enters its write phase holding a reservation on X.
        writer.begin_op(&mut cpu_w, 0, 0);
        let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            m.store(cpu, cell, 0, v)?;
            Ok(Step::Continue)
        };
        writer.step_op(&mut cpu_w, &mut hold);

        // Reclaimer (batch 1) retires X and Y: Y is freed on the spot,
        // X survives because the writer's reservation covers it.
        reclaimer.run_op(&mut cpu_r, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, x)?;
            Ok(Step::Done(0))
        });
        reclaimer.run_op(&mut cpu_r, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, y)?;
            Ok(Step::Done(0))
        });
        assert!(heap.is_live(x), "reserved node must survive");
        assert!(!heap.is_live(y), "unreserved node freed without waiting");
        assert_eq!(reclaimer.outstanding_garbage(), 1);

        // Writer finishes; the next broadcast frees X too.
        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        writer.step_op(&mut cpu_w, &mut fin);
        reclaimer.teardown(&mut cpu_r);
        assert!(!heap.is_live(x));
        assert_eq!(reclaimer.outstanding_garbage(), 0);
    }

    #[test]
    fn neutralize_restarts_a_read_phase_attempt() {
        let (globals, heap) = setup(1);
        let mut th = NbrThread::new(globals, heap.clone(), 0, 0, false);
        let mut cpu = test_cpu(0);

        th.begin_op(&mut cpu, 0, 2);
        let mut first = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.set_local(cpu, 0, 7);
            let n = m.alloc(cpu, 2);
            m.set_local(cpu, 1, n.raw());
            Ok(Step::Continue)
        };
        th.step_op(&mut cpu, &mut first);
        let fresh = Addr::from_raw(th.locals[1]);
        assert!(heap.is_live(fresh));

        th.neutralize(&mut cpu);
        assert_eq!(th.neutralizations, 1);
        assert_eq!(th.locals[0], 0, "locals zeroed: body restarts");
        assert!(!heap.is_live(fresh), "abandoned allocation returned");

        // The body re-runs from scratch and completes.
        let mut retry = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.get_local(cpu, 0);
            Ok(Step::Done(v))
        };
        assert_eq!(th.step_op(&mut cpu, &mut retry), Some(0));
    }

    #[test]
    fn neutralize_is_refused_in_the_write_phase_and_when_idle() {
        let (globals, heap) = setup(1);
        let mut th = NbrThread::new(globals, heap.clone(), 0, 0, false);
        let mut cpu = test_cpu(0);

        // Idle: ignored.
        th.neutralize(&mut cpu);
        assert_eq!(th.neutralizations, 0);

        // Write phase: ignored, locals keep their values.
        let cell = heap.alloc_untimed(1).unwrap();
        th.begin_op(&mut cpu, 0, 1);
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.set_local(cpu, 0, 9);
            m.store(cpu, cell, 0, 1)?;
            Ok(Step::Continue)
        };
        th.step_op(&mut cpu, &mut body);
        th.neutralize(&mut cpu);
        assert_eq!(th.neutralizations, 0);
        assert_eq!(th.locals[0], 9, "write phase refuses the restart");
    }

    #[test]
    fn broadcast_raises_signals_against_every_peer() {
        let (globals, heap) = setup(3);
        let board = Arc::new(SignalBoard::new(3));
        let mut th = NbrThread::new(globals, heap.clone(), 0, 1, false);
        let mut cpu = test_cpu(0);
        cpu.attach_signals(board.clone());

        let n = heap.alloc_untimed(2).unwrap();
        th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        assert_eq!(th.signals_sent, 2);
        assert_eq!(board.pending(0), 0, "no self-signal");
        assert_eq!(board.pending(1), 1);
        assert_eq!(board.pending(2), 1);
        assert!(!heap.is_live(n), "freed without waiting for an ack");
    }

    #[test]
    fn skip_restart_mutation_keeps_stale_locals() {
        let (globals, heap) = setup(1);
        let mut th = NbrThread::new(globals, heap.clone(), 0, 0, true);
        let mut cpu = test_cpu(0);
        th.begin_op(&mut cpu, 0, 1);
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            m.set_local(cpu, 0, 5);
            Ok(Step::Continue)
        };
        th.step_op(&mut cpu, &mut body);
        th.neutralize(&mut cpu);
        assert_eq!(th.locals[0], 5, "mutation ignores the signal");
        assert_eq!(th.neutralizations, 0);
    }
}
