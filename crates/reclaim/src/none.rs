//! The "Original" baseline: no memory reclamation.
//!
//! Retired nodes are counted and leaked. This is the performance ceiling
//! every figure in the paper plots against — and the scheme whose leak the
//! integration tests demonstrate.

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::sync::Arc;

/// Executor that never frees.
pub struct NoReclaimThread {
    heap: Arc<Heap>,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    leaked: u64,
}

impl NoReclaimThread {
    /// Creates an executor over `heap`.
    pub fn new(heap: Arc<Heap>) -> Self {
        Self {
            heap,
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            leaked: 0,
        }
    }
}

impl OpMem for NoReclaimThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        _guard: usize,
    ) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        self.heap.alloc(cpu, words).expect(
            "simulated heap exhausted (NoReclaim leaks by design; size the heap for the run)",
        )
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        // The ledger still sees the retire: the audit harness uses this
        // scheme as its positive leak reference.
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        self.leaked += 1;
        Ok(())
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for NoReclaimThread {
    fn begin_op(&mut self, _cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                self.active = false;
                Some(v)
            }
        }
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.none.leaked", self.leaked);
    }

    fn outstanding_garbage(&self) -> u64 {
        self.leaked
    }

    fn teardown(&mut self, _cpu: &mut Cpu) {}

    fn scheme_name(&self) -> &'static str {
        "Original"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::test_env;

    #[test]
    fn ops_run_and_retires_leak() {
        let (heap, mut cpu) = test_env();
        let mut th = NoReclaimThread::new(heap.clone());
        let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.store(cpu, n, 0, 5)?;
            m.set_local(cpu, 0, n.raw());
            m.retire_unlinked(cpu, n)?;
            let n2 = m.get_local(cpu, 0);
            m.load(cpu, Addr::from_raw(n2), 0).map(Step::Done)
        });
        assert_eq!(v, 5);
        assert_eq!(th.outstanding_garbage(), 1);
        // The node is still allocated: a leak, not a free.
        assert_eq!(heap.stats().alloc.live_objects, 1);
    }
}
