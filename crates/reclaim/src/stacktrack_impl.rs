//! [`SchemeThread`] adapter for [`stacktrack::StThread`].

use crate::api::SchemeThread;
use st_machine::Cpu;
use st_simheap::Word;
use stacktrack::{OpBody, StThread};

impl SchemeThread for StThread {
    fn begin_op(&mut self, cpu: &mut Cpu, op_id: u32, slots: usize) {
        StThread::begin_op(self, cpu, op_id, slots);
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        StThread::step_op(self, cpu, body)
    }

    fn idle_work_pending(&self) -> bool {
        StThread::idle_work_pending(self)
    }

    fn step_idle(&mut self, cpu: &mut Cpu) {
        StThread::step_idle(self, cpu);
    }

    fn outstanding_garbage(&self) -> u64 {
        self.free_set_len() as u64
    }

    fn st_stats(&self) -> Option<stacktrack::StThreadStats> {
        Some(self.stats().clone())
    }

    fn reset_stats(&mut self) {
        StThread::reset_stats(self);
    }

    fn teardown(&mut self, cpu: &mut Cpu) {
        // A worker cut off mid-operation by the simulation deadline
        // abandons the operation (the open segment rolls back) so the
        // free set can always be scanned; survivors stay for leak
        // accounting.
        self.abandon_op(cpu);
        self.force_full_scan(cpu);
    }

    fn scheme_name(&self) -> &'static str {
        "StackTrack"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use st_simheap::{Heap, HeapConfig};
    use st_simhtm::{HtmConfig, HtmEngine};
    use stacktrack::{StConfig, StRuntime, Step};
    use std::sync::Arc;

    #[test]
    fn adapter_drives_stacktrack_through_the_trait() {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::small()
        }));
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let rt = StRuntime::new(engine, StConfig::default(), 1);
        let mut th: Box<dyn SchemeThread> = Box::new(rt.register_thread(0));
        let mut cpu = rt.test_cpu(0);

        // Runtime metadata (activity array, slow counter, thread context)
        // stays allocated; only the retired node must come and go.
        let metadata_objects = heap.stats().alloc.live_objects;
        let v = th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.store(cpu, n, 0, 3)?;
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(9))
        });
        assert_eq!(v, 9);
        assert_eq!(th.scheme_name(), "StackTrack");
        assert_eq!(th.outstanding_garbage(), 1);
        th.teardown(&mut cpu);
        assert_eq!(th.outstanding_garbage(), 0);
        assert_eq!(heap.stats().alloc.live_objects, metadata_objects);
    }

    #[test]
    fn teardown_mid_operation_flushes_the_free_set() {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::small()
        }));
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
        let rt = StRuntime::new(engine, StConfig::default(), 1);
        let mut th: Box<dyn SchemeThread> = Box::new(rt.register_thread(0));
        let mut cpu = rt.test_cpu(0);

        let metadata_objects = heap.stats().alloc.live_objects;
        // Retire a node so the free set is non-empty...
        th.run_op(&mut cpu, 0, 1, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.store(cpu, n, 0, 3)?;
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(0))
        });
        assert_eq!(th.outstanding_garbage(), 1);

        // ...then cut the worker off mid-operation, with an unpublished
        // allocation in the open segment — the simulation-deadline shape.
        th.begin_op(&mut cpu, 1, 1);
        let mut stepped = false;
        th.step_op(&mut cpu, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.store(cpu, n, 0, 7)?;
            stepped = true;
            Ok(Step::Continue)
        });
        assert!(stepped);

        // Teardown abandons the operation (rolling back the segment and
        // its allocation) and drains the free set.
        th.teardown(&mut cpu);
        assert_eq!(th.outstanding_garbage(), 0);
        assert_eq!(heap.stats().alloc.live_objects, metadata_objects);
    }
}
