//! Lock-free reference counting (Valois-style), the ablation comparator.
//!
//! The paper excludes reference counting from the plots, arguing hazard
//! pointers upper-bound its performance; this implementation exists to
//! check that claim on the simulator. Every pointer hop performs an atomic
//! count update on the target (plus the release of the guard's previous
//! target) — two atomic read-modify-writes per hop, strictly more
//! coherence traffic than one hazard store + fence.
//!
//! Counts live in a **side table** keyed by node base address rather than
//! in a header word, so nodes created by the schemes-agnostic setup path
//! (sentinels, initial population) are counted uniformly. Each count
//! update is charged as one CAS plus the line traffic of the node itself,
//! which is what the real scheme pays. The increment-validate-retry
//! protocol is atomic at the simulator's basic-block granularity, which
//! closes the classic increment-after-free race (see DESIGN.md on
//! simulation atomicity).

use crate::api::{expect_step, SchemeThread};
use st_machine::Cpu;
use st_simheap::tagged::TAG_MASK;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::layout::STACK_SLOTS;
use stacktrack::{OpBody, OpMem, Step};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Count-table entry.
#[derive(Debug, Default, Clone, Copy)]
struct Entry {
    count: u64,
    retired: bool,
}

/// Shared reference-count table.
#[derive(Debug, Default)]
pub struct RcGlobals {
    counts: Mutex<HashMap<Word, Entry>>,
}

impl RcGlobals {
    /// Creates an empty count table.
    pub fn new(_heap: &Arc<Heap>) -> Self {
        Self::default()
    }

    /// Current count of `base` (tests).
    pub fn count_of(&self, base: Word) -> u64 {
        self.counts
            .lock()
            .unwrap()
            .get(&base)
            .map_or(0, |e| e.count)
    }
}

/// Per-thread reference-counting executor.
pub struct RcThread {
    globals: Arc<RcGlobals>,
    heap: Arc<Heap>,
    guards: Vec<Word>,
    locals: [Word; STACK_SLOTS],
    slots: usize,
    active: bool,
    /// Nodes this thread freed (statistics).
    pub freed: u64,
}

impl RcThread {
    /// Creates an executor with `guard_slots` guards.
    pub fn new(globals: Arc<RcGlobals>, heap: Arc<Heap>, guard_slots: usize) -> Self {
        Self {
            globals,
            heap,
            guards: vec![0; guard_slots],
            locals: [0; STACK_SLOTS],
            slots: 0,
            active: false,
            freed: 0,
        }
    }

    /// Charges one atomic read-modify-write on the node's line.
    fn charge_rmw(&self, cpu: &mut Cpu) {
        cpu.charge(cpu.costs.cas);
        cpu.counters.cas_ops += 1;
    }

    fn acquire(&mut self, cpu: &mut Cpu, user: Word) {
        let base = user & !TAG_MASK;
        if base == 0 {
            return;
        }
        self.charge_rmw(cpu);
        self.globals
            .counts
            .lock()
            .unwrap()
            .entry(base)
            .or_default()
            .count += 1;
    }

    /// Drops one reference; frees the node when the count hits zero with
    /// the retired flag set.
    fn release(&mut self, cpu: &mut Cpu, user: Word) {
        let base = user & !TAG_MASK;
        if base == 0 {
            return;
        }
        self.charge_rmw(cpu);
        let free_now = {
            let mut counts = self.globals.counts.lock().unwrap();
            let e = counts.get_mut(&base).expect("release without acquire");
            debug_assert!(e.count > 0, "refcount underflow on {base:#x}");
            e.count -= 1;
            let free_now = e.count == 0 && e.retired;
            if free_now {
                counts.remove(&base);
            }
            free_now
        };
        if free_now {
            self.heap.free(cpu, Addr::from_raw(base));
            self.freed += 1;
        }
    }
}

impl OpMem for RcThread {
    fn load(&mut self, cpu: &mut Cpu, addr: Addr, off: u64) -> Result<Word, Abort> {
        Ok(self.heap.load(cpu, addr, off))
    }

    /// Counted pointer load: bump the target, validate the source, release
    /// the guard's previous target.
    fn load_ptr(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        guard: usize,
    ) -> Result<Word, Abort> {
        loop {
            let v = self.heap.load(cpu, addr, off);
            if v & !TAG_MASK == 0 {
                return Ok(v);
            }
            self.acquire(cpu, v);
            if self.heap.load(cpu, addr, off) == v {
                let old = std::mem::replace(&mut self.guards[guard], v & !TAG_MASK);
                self.release(cpu, old);
                return Ok(v);
            }
            self.release(cpu, v);
        }
    }

    fn store(&mut self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) -> Result<(), Abort> {
        self.heap.store(cpu, addr, off, value);
        Ok(())
    }

    fn cas(
        &mut self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        Ok(self.heap.cas(cpu, addr, off, expected, new))
    }

    fn alloc(&mut self, cpu: &mut Cpu, words: usize) -> Addr {
        self.heap
            .alloc(cpu, words)
            .expect("simulated heap exhausted; enlarge HeapConfig::capacity_words")
    }

    fn retire_unlinked(&mut self, cpu: &mut Cpu, addr: Addr) -> Result<(), Abort> {
        self.charge_rmw(cpu);
        // Before the possible immediate free below, so the ledger sees
        // retire → free in order.
        self.heap.note_retire(cpu.thread_id, cpu.now(), addr);
        let free_now = {
            let mut counts = self.globals.counts.lock().unwrap();
            let e = counts.entry(addr.raw()).or_default();
            debug_assert!(!e.retired, "double retire of {addr:?}");
            e.retired = true;
            let free_now = e.count == 0;
            if free_now {
                counts.remove(&addr.raw());
            }
            free_now
        };
        if free_now {
            self.heap.free(cpu, addr);
            self.freed += 1;
        }
        Ok(())
    }

    /// Moves a counted reference into another guard: bump the new target,
    /// release the guard's previous one.
    fn protect_slot(&mut self, cpu: &mut Cpu, guard: usize, value: Word) {
        self.acquire(cpu, value);
        let old = std::mem::replace(&mut self.guards[guard], value & !TAG_MASK);
        self.release(cpu, old);
    }

    fn get_local(&mut self, _cpu: &mut Cpu, slot: usize) -> Word {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot]
    }

    fn set_local(&mut self, _cpu: &mut Cpu, slot: usize, value: Word) {
        assert!(slot < self.slots, "undeclared local slot {slot}");
        self.locals[slot] = value;
    }
}

impl SchemeThread for RcThread {
    fn begin_op(&mut self, _cpu: &mut Cpu, _op_id: u32, slots: usize) {
        assert!(!self.active, "operation already active");
        assert!(slots <= STACK_SLOTS);
        self.slots = slots;
        self.locals[..slots].fill(0);
        self.active = true;
    }

    fn step_op(&mut self, cpu: &mut Cpu, body: &mut OpBody<'_>) -> Option<Word> {
        assert!(self.active, "step_op without an active operation");
        match expect_step(body(self, cpu)) {
            Step::Continue => None,
            Step::Done(v) => {
                for g in 0..self.guards.len() {
                    let old = std::mem::take(&mut self.guards[g]);
                    self.release(cpu, old);
                }
                self.active = false;
                Some(v)
            }
        }
    }

    fn report_metrics(&self, reg: &mut st_obs::MetricsRegistry) {
        reg.add("reclaim.outstanding_garbage", self.outstanding_garbage());
        reg.add("scheme.rc.freed", self.freed);
    }

    fn outstanding_garbage(&self) -> u64 {
        // Counts free instantly at zero; nothing is batched locally.
        0
    }

    fn teardown(&mut self, _cpu: &mut Cpu) {}

    fn scheme_name(&self) -> &'static str {
        "RefCount"
    }
}

#[cfg(test)]
// Scheme tests drive the raw `OpMem` surface the executor implements —
// the layer beneath the typed `mem` API structures use.
mod tests {
    use super::*;
    use crate::test_support::{test_cpu, test_env};

    fn thread(heap: &Arc<Heap>, globals: &Arc<RcGlobals>) -> RcThread {
        RcThread::new(globals.clone(), heap.clone(), 4)
    }

    #[test]
    fn unreferenced_retire_frees_immediately() {
        let (heap, mut cpu) = test_env();
        let globals = Arc::new(RcGlobals::default());
        let mut th = thread(&heap, &globals);
        let user = th.run_op(&mut cpu, 0, 0, &mut |m, cpu| {
            let n = m.alloc(cpu, 2);
            m.retire_unlinked(cpu, n)?;
            Ok(Step::Done(n.raw()))
        });
        assert!(!heap.is_live(Addr::from_raw(user)));
        assert_eq!(th.freed, 1);
    }

    #[test]
    fn guarded_node_survives_until_release() {
        let (heap, mut cpu) = test_env();
        let globals = Arc::new(RcGlobals::default());
        let mut holder = thread(&heap, &globals);
        let mut owner = thread(&heap, &globals);
        let mut cpu2 = test_cpu(1);

        let cell = heap.alloc_untimed(1).unwrap();
        let node = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, node.raw());

        // Holder guards the node and stays in its operation.
        holder.begin_op(&mut cpu, 0, 1);
        let mut hold = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            m.set_local(cpu, 0, v);
            Ok(Step::Continue)
        };
        holder.step_op(&mut cpu, &mut hold);
        assert_eq!(globals.count_of(node.raw()), 1);

        // Owner unlinks and retires: the holder's count pins the node.
        owner.run_op(&mut cpu2, 0, 0, &mut |m, cpu| {
            m.store(cpu, cell, 0, 0)?;
            m.retire_unlinked(cpu, node)?;
            Ok(Step::Done(0))
        });
        assert!(heap.is_live(node));

        // Holder finishes: guards release, count hits zero, node freed.
        let mut fin = |_: &mut dyn OpMem, _: &mut Cpu| Ok(Step::Done(0));
        holder.step_op(&mut cpu, &mut fin);
        assert!(!heap.is_live(node));
        assert_eq!(holder.freed, 1);
    }

    #[test]
    fn guard_reuse_releases_previous_target() {
        let (heap, mut cpu) = test_env();
        let globals = Arc::new(RcGlobals::default());
        let mut th = thread(&heap, &globals);

        let a = heap.alloc_untimed(2).unwrap();
        let b = heap.alloc_untimed(2).unwrap();
        let cell = heap.alloc_untimed(1).unwrap();

        th.begin_op(&mut cpu, 0, 0);
        heap.poke(cell, 0, a.raw());
        let mut load_a = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let _ = m.load_ptr(cpu, cell, 0, 0)?;
            Ok(Step::Continue)
        };
        th.step_op(&mut cpu, &mut load_a);
        assert_eq!(globals.count_of(a.raw()), 1);

        heap.poke(cell, 0, b.raw());
        let mut load_b = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let _ = m.load_ptr(cpu, cell, 0, 0)?;
            Ok(Step::Done(0))
        };
        th.step_op(&mut cpu, &mut load_b);
        assert_eq!(globals.count_of(a.raw()), 0, "guard reuse released a");
        assert_eq!(globals.count_of(b.raw()), 0, "op end released b");
    }

    #[test]
    fn marked_pointers_count_the_base() {
        let (heap, mut cpu) = test_env();
        let globals = Arc::new(RcGlobals::default());
        let mut th = thread(&heap, &globals);
        let cell = heap.alloc_untimed(1).unwrap();
        let node = heap.alloc_untimed(2).unwrap();
        heap.poke(cell, 0, node.raw() | 1); // marked

        th.begin_op(&mut cpu, 0, 0);
        let mut body = |m: &mut dyn OpMem, cpu: &mut Cpu| {
            let v = m.load_ptr(cpu, cell, 0, 0)?;
            Ok(Step::Done(v))
        };
        let v = th.step_op(&mut cpu, &mut body).unwrap();
        assert_eq!(v, node.raw() | 1);
        assert_eq!(globals.count_of(node.raw()), 0, "released at op end");
    }
}
