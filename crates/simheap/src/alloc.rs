//! Size-class free-list allocator over the simulated heap.
//!
//! The allocator is deliberately simple: power-of-two size classes, a bump
//! pointer for fresh memory, and per-class LIFO free lists. Two properties
//! matter for the reproduction:
//!
//! - **Type-stable recycling**: a freed slot is only ever reused for the
//!   same size class, so a stale pointer always points at "an object-shaped
//!   hole", mirroring the arena allocators lock-free C code uses. (The
//!   correctness of every scheme here is nevertheless independent of this.)
//! - **An allocation table** recording `start -> object info` for every
//!   object ever carved out, answering the interior-pointer range queries of
//!   paper section 5.5 and the liveness assertions the test suite relies on.

use crate::addr::Addr;
use std::collections::BTreeMap;

/// Number of size classes (class `c` holds blocks of `1 << c` words).
pub const NUM_CLASSES: usize = 16;

/// Largest supported allocation, in words.
pub const MAX_ALLOC_WORDS: usize = 1 << (NUM_CLASSES - 1);

/// Information about one carved-out block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjInfo {
    /// Requested length in words.
    pub len: u32,
    /// Size class (block length is `1 << class`).
    pub class: u8,
    /// Whether the block is currently allocated.
    pub live: bool,
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The heap is out of fresh memory and the class free list is empty.
    OutOfMemory,
    /// The request exceeds [`MAX_ALLOC_WORDS`] or is zero.
    BadSize,
}

/// Running allocator statistics.
#[derive(Debug, Default, Clone)]
pub struct AllocStats {
    /// Total successful allocations.
    pub allocs: u64,
    /// Total frees.
    pub frees: u64,
    /// Allocations served from a free list (recycled).
    pub recycled: u64,
    /// Currently live objects.
    pub live_objects: u64,
    /// Currently live words (by block size).
    pub live_words: u64,
    /// High-water mark of live words.
    pub peak_live_words: u64,
}

/// The allocator state (kept behind the heap's lock).
#[derive(Debug)]
pub struct Allocator {
    capacity: u64,
    bump: u64,
    free_lists: Vec<Vec<u64>>,
    objects: BTreeMap<u64, ObjInfo>,
    stats: AllocStats,
}

fn class_of(words: usize) -> Option<u8> {
    if words == 0 || words > MAX_ALLOC_WORDS {
        return None;
    }
    Some(words.next_power_of_two().trailing_zeros() as u8)
}

impl Allocator {
    /// Creates an allocator over `capacity_words` of heap, reserving word 0
    /// (so that no object ever has the null address).
    pub fn new(capacity_words: u64) -> Self {
        Self {
            capacity: capacity_words,
            bump: 1,
            free_lists: vec![Vec::new(); NUM_CLASSES],
            objects: BTreeMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// Allocates a block of at least `words` words.
    pub fn alloc(&mut self, words: usize) -> Result<Addr, AllocError> {
        let class = class_of(words).ok_or(AllocError::BadSize)?;
        let block = 1u64 << class;

        let start = if let Some(idx) = self.free_lists[class as usize].pop() {
            self.stats.recycled += 1;
            idx
        } else {
            if self.bump + block > self.capacity {
                return Err(AllocError::OutOfMemory);
            }
            let idx = self.bump;
            self.bump += block;
            idx
        };

        self.objects.insert(
            start,
            ObjInfo {
                len: words as u32,
                class,
                live: true,
            },
        );
        self.stats.allocs += 1;
        self.stats.live_objects += 1;
        self.stats.live_words += block;
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.stats.live_words);
        Ok(Addr::from_index(start))
    }

    /// Returns a block to its class free list.
    ///
    /// # Panics
    ///
    /// Panics on double free or on an address that was never allocated —
    /// both are scheme bugs this reproduction wants loud.
    pub fn free(&mut self, addr: Addr) {
        let start = addr.index();
        let info = self
            .objects
            .get_mut(&start)
            .unwrap_or_else(|| panic!("free of never-allocated address {addr:?}"));
        assert!(info.live, "double free of {addr:?}");
        info.live = false;
        let class = info.class;
        self.free_lists[class as usize].push(start);
        self.stats.frees += 1;
        self.stats.live_objects -= 1;
        self.stats.live_words -= 1u64 << class;
    }

    /// Looks up the object containing the word address `raw` (which may
    /// point anywhere inside the object). Returns `(base, info)`.
    pub fn object_at(&self, raw: u64) -> Option<(Addr, ObjInfo)> {
        if raw & 7 != 0 {
            return None;
        }
        let idx = raw >> 3;
        if idx == 0 {
            return None;
        }
        let (&start, info) = self.objects.range(..=idx).next_back()?;
        let block = 1u64 << info.class;
        (idx < start + block).then(|| (Addr::from_index(start), *info))
    }

    /// Whether `addr` is the base of a currently live object.
    pub fn is_live(&self, addr: Addr) -> bool {
        self.objects
            .get(&addr.index())
            .is_some_and(|info| info.live)
    }

    /// The block length (in words) of the object based at `addr`, if known.
    pub fn block_len(&self, addr: Addr) -> Option<u64> {
        self.objects
            .get(&addr.index())
            .map(|info| 1u64 << info.class)
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(2), Some(1));
        assert_eq!(class_of(3), Some(2));
        assert_eq!(class_of(4), Some(2));
        assert_eq!(class_of(5), Some(3));
        assert_eq!(class_of(0), None);
        assert_eq!(class_of(MAX_ALLOC_WORDS), Some((NUM_CLASSES - 1) as u8));
        assert_eq!(class_of(MAX_ALLOC_WORDS + 1), None);
    }

    #[test]
    fn alloc_never_returns_null_or_overlap() {
        let mut a = Allocator::new(1 << 16);
        let mut seen = std::collections::HashSet::new();
        for i in 1..100usize {
            let addr = a.alloc(i % 9 + 1).unwrap();
            assert!(!addr.is_null());
            assert!(seen.insert(addr), "overlapping allocation {addr:?}");
        }
    }

    #[test]
    fn recycling_is_type_stable() {
        let mut a = Allocator::new(1 << 12);
        let x = a.alloc(4).unwrap();
        a.free(x);
        let y = a.alloc(3).unwrap(); // same class (4 words)
        assert_eq!(x, y, "same-class alloc should recycle the freed slot");
        let z = a.alloc(8).unwrap(); // different class: fresh memory
        assert_ne!(x, z);
        assert_eq!(a.stats().recycled, 1);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a = Allocator::new(8);
        assert!(a.alloc(4).is_ok());
        assert_eq!(a.alloc(4), Err(AllocError::OutOfMemory));
        assert_eq!(a.alloc(0), Err(AllocError::BadSize));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Allocator::new(1 << 10);
        let x = a.alloc(2).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    #[should_panic(expected = "never-allocated")]
    fn foreign_free_panics() {
        let mut a = Allocator::new(1 << 10);
        a.free(Addr::from_index(5));
    }

    #[test]
    fn object_at_resolves_interior_pointers() {
        let mut a = Allocator::new(1 << 12);
        let x = a.alloc(6).unwrap(); // class 3, 8 words
        let interior = x.offset(5).raw();
        let (base, info) = a.object_at(interior).unwrap();
        assert_eq!(base, x);
        assert!(info.live);
        // One past the block is not inside.
        assert!(
            a.object_at(x.offset(8).raw()).map(|(b, _)| b) != Some(x),
            "past-the-end must not resolve to this object"
        );
        // Unaligned and null raw values resolve to nothing.
        assert_eq!(a.object_at(x.raw() + 1).map(|(b, _)| b), None);
        assert_eq!(a.object_at(0).map(|(b, _)| b), None);
    }

    #[test]
    fn stats_track_live_and_peak() {
        let mut a = Allocator::new(1 << 12);
        let x = a.alloc(4).unwrap();
        let y = a.alloc(4).unwrap();
        assert_eq!(a.stats().live_objects, 2);
        assert_eq!(a.stats().live_words, 8);
        a.free(x);
        a.free(y);
        assert_eq!(a.stats().live_objects, 0);
        assert_eq!(a.stats().peak_live_words, 8);
    }
}
