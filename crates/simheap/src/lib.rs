//! Simulated word-addressable heap.
//!
//! All shared memory in this reproduction lives in one simulated heap of
//! 64-bit words. This is the substitute for the raw process memory the C
//! implementation of StackTrack operates on; putting it behind an API gives
//! the reproduction three things the paper got from hardware or libc:
//!
//! - **Type-stable, scannable memory**: the reclaimer can walk any thread's
//!   exposed stack words and compare raw values against a candidate pointer,
//!   exactly like the paper's word-by-word stack scan.
//! - **Allocation metadata with range queries** ([`Heap::object_base`]),
//!   the equivalent of the paper's `malloc` hook used to resolve interior
//!   pointers (section 5.5).
//! - **Poison-on-free plus liveness tracking**, which turns any
//!   use-after-free in a scheme or data structure into a deterministic test
//!   failure instead of silent corruption.
//!
//! Addresses ([`Addr`]) are byte-style and 8-aligned, so the low 3 bits of a
//! stored pointer are free for the mark bits lock-free structures need
//! ([`tagged`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod heap;
pub mod tagged;
pub mod traffic;

pub use addr::{Addr, Word, NULL};
pub use heap::{
    Heap, HeapConfig, HeapStats, LedgerKind, LedgerStats, LedgerViolation, UafKind, UafViolation,
    POISON,
};
pub use tagged::TaggedPtr;
