//! The heap façade: words + allocator + traffic + poison.

use crate::addr::{Addr, Word};
use crate::alloc::{AllocError, AllocStats, Allocator};
use crate::traffic::Traffic;
use st_machine::Cpu;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Pattern written to freed words; reading it back from a committed
/// operation is a use-after-free and fails tests loudly.
pub const POISON: Word = 0xDEAD_BEEF_DEAD_BEE8;

/// What the use-after-free oracle caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UafKind {
    /// A timed load from a freed block.
    Read,
    /// A timed store into a freed block.
    Write,
    /// A timed CAS/fetch-add on a freed block.
    Cas,
    /// A freed block was handed out again while a registered protection
    /// root still referenced it (the ABA re-exposure window).
    Reexposure,
}

impl std::fmt::Display for UafKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UafKind::Read => "read-after-free",
            UafKind::Write => "write-after-free",
            UafKind::Cas => "cas-after-free",
            UafKind::Reexposure => "aba-reexposure",
        })
    }
}

/// One recorded memory-safety violation.
///
/// Recording does not stop the simulation — execution proceeds (and may
/// later panic on poison) so a checker can collect every violation of a
/// schedule and attribute it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UafViolation {
    /// Violation class.
    pub kind: UafKind,
    /// Simulated thread that performed the access (for
    /// [`UafKind::Reexposure`], the thread whose allocation recycled the
    /// block).
    pub thread: usize,
    /// Base address of the affected block.
    pub base: Addr,
    /// Raw address of the offending word: the accessed word, or for
    /// re-exposure the root word still holding the reference.
    pub raw: u64,
}

impl std::fmt::Display for UafViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            UafKind::Reexposure => write!(
                f,
                "{}: thread {} re-allocated block {:?} while root word {:#x} still references it",
                self.kind, self.thread, self.base, self.raw
            ),
            _ => write!(
                f,
                "{}: thread {} touched word {:#x} of freed block {:?}",
                self.kind, self.thread, self.raw, self.base
            ),
        }
    }
}

/// A protection region the re-exposure check scans on every timed
/// allocation: `words` heap words starting at `base`, holding published
/// (possibly tag-marked) pointers — e.g. the hazard-slot matrix.
#[derive(Debug, Clone, Copy)]
struct UafRoot {
    base: Addr,
    words: u64,
}

#[derive(Debug, Default)]
struct UafState {
    roots: Vec<UafRoot>,
    violations: Vec<UafViolation>,
}

/// What the heap-ledger oracle caught (see `docs/AUDIT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerKind {
    /// The same block was retired twice without an intervening free —
    /// downstream this becomes a double free once both retirements drain.
    DoubleRetire,
    /// The block was freed while the ledger already recorded it freed.
    /// Recorded *before* the allocator's own double-free panic, so a
    /// harness that catches the panic still sees the attribution.
    DoubleFree,
    /// The block was freed through the retire-aware path without ever
    /// being retired — a scheme bypassed its own deferral pipeline.
    FreeBeforeRetire,
    /// At teardown the block was still retired-but-not-freed (reported by
    /// [`Heap::ledger_leaks`], with the retiring thread and cycle).
    Leak,
}

impl std::fmt::Display for LedgerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LedgerKind::DoubleRetire => "double-retire",
            LedgerKind::DoubleFree => "double-free",
            LedgerKind::FreeBeforeRetire => "free-before-retire",
            LedgerKind::Leak => "leak-at-teardown",
        })
    }
}

/// One recorded lifecycle violation. Like [`UafViolation`], recording does
/// not stop the simulation; a harness collects and attributes afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerViolation {
    /// Violation class.
    pub kind: LedgerKind,
    /// Simulated thread that performed the offending (or for
    /// [`LedgerKind::Leak`], the original retiring) event.
    pub thread: usize,
    /// Base address of the affected block.
    pub base: Addr,
    /// Virtual cycle of the offending event (for leaks, of the retire).
    pub cycle: u64,
}

impl std::fmt::Display for LedgerViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: block {:?}, thread {}, cycle {}",
            self.kind, self.base, self.thread, self.cycle
        )
    }
}

/// Lifecycle position of one tracked block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Live,
    Retired { thread: usize, cycle: u64 },
    Freed,
}

/// Aggregate ledger counters for metrics snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Blocks currently tracked as live.
    pub live: u64,
    /// Blocks currently tracked as retired (not yet freed).
    pub retired: u64,
    /// Blocks currently tracked as freed.
    pub freed: u64,
    /// Retire events observed since the ledger was enabled.
    pub retire_events: u64,
    /// Free events observed since the ledger was enabled.
    pub free_events: u64,
}

#[derive(Debug, Default)]
struct LedgerBook {
    blocks: BTreeMap<u64, BlockState>,
    violations: Vec<LedgerViolation>,
    retire_events: u64,
    free_events: u64,
}

/// Heap sizing and behaviour knobs.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Total heap capacity in 64-bit words.
    pub capacity_words: u64,
    /// Whether `free` fills the block with [`POISON`].
    pub poison_on_free: bool,
    /// Slots in the cache-line traffic table.
    pub traffic_slots: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self {
            capacity_words: 1 << 22,
            poison_on_free: true,
            traffic_slots: 1 << 14,
        }
    }
}

impl HeapConfig {
    /// A small heap for unit tests.
    pub fn small() -> Self {
        Self {
            capacity_words: 1 << 14,
            ..Self::default()
        }
    }
}

/// Snapshot of heap statistics.
#[derive(Debug, Clone, Default)]
pub struct HeapStats {
    /// Allocator statistics.
    pub alloc: AllocStats,
}

/// The simulated heap.
///
/// Word storage is a fixed slab of `AtomicU64`; atomics make the heap
/// `Sync` so it can also be exercised by real OS threads in stress tests,
/// even though the discrete-event simulator only ever runs one at a time.
/// All orderings are `Relaxed` on purpose: *simulated* memory-model effects
/// (fences, coherence misses) are charged as virtual cycles by the cost
/// model, not delegated to the host's memory model.
#[derive(Debug)]
pub struct Heap {
    words: Box<[AtomicU64]>,
    allocator: Mutex<Allocator>,
    traffic: Traffic,
    config: HeapConfig,
    /// Fast-path flag for the use-after-free oracle; checked before any
    /// locking so a disabled oracle costs one relaxed atomic load.
    uaf_enabled: AtomicBool,
    uaf: Mutex<UafState>,
    /// Fast-path flag for the lifecycle ledger, same discipline as
    /// `uaf_enabled`.
    ledger_enabled: AtomicBool,
    ledger: Mutex<LedgerBook>,
}

impl Heap {
    /// Creates a heap per `config`.
    pub fn new(config: HeapConfig) -> Self {
        let words = (0..config.capacity_words)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            words,
            allocator: Mutex::new(Allocator::new(config.capacity_words)),
            traffic: Traffic::new(config.traffic_slots),
            config,
            uaf_enabled: AtomicBool::new(false),
            uaf: Mutex::new(UafState::default()),
            ledger_enabled: AtomicBool::new(false),
            ledger: Mutex::new(LedgerBook::default()),
        }
    }

    /// Creates a heap with default configuration.
    pub fn default_sized() -> Self {
        Self::new(HeapConfig::default())
    }

    fn cell(&self, addr: Addr, off: u64) -> &AtomicU64 {
        let idx = addr.index() + off;
        assert!(
            idx > 0 && idx < self.config.capacity_words,
            "address {addr:?}+{off} outside the heap"
        );
        &self.words[idx as usize]
    }

    // ------------------------------------------------------------------
    // Timed accessors: charge virtual cycles to the running thread.
    // ------------------------------------------------------------------

    /// Plain load of `addr + off` (charges load cost + coherence traffic).
    pub fn load(&self, cpu: &mut Cpu, addr: Addr, off: u64) -> Word {
        let line = addr.offset(off).line();
        cpu.charge_mem(line);
        let extra = self.traffic.on_read(&cpu.costs, line, cpu.hw.id, cpu.now());
        cpu.charge(cpu.costs.load + extra);
        cpu.counters.loads += 1;
        self.uaf_check(cpu.thread_id, UafKind::Read, addr, off);
        self.cell(addr, off).load(Ordering::Relaxed)
    }

    /// Plain store to `addr + off` (charges store cost + coherence traffic).
    pub fn store(&self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) {
        let line = addr.offset(off).line();
        cpu.charge_mem(line);
        let extra = self
            .traffic
            .on_write(&cpu.costs, line, cpu.hw.id, cpu.now());
        cpu.charge(cpu.costs.store + extra);
        cpu.counters.stores += 1;
        self.uaf_check(cpu.thread_id, UafKind::Write, addr, off);
        self.cell(addr, off).store(value, Ordering::Relaxed);
    }

    /// Compare-and-swap on `addr + off`; returns the previous value on
    /// success, or `Err(actual)` on failure. Contended lines cost more.
    pub fn cas(
        &self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Word, Word> {
        let line = addr.offset(off).line();
        cpu.charge_mem(line);
        let extra = self
            .traffic
            .on_write(&cpu.costs, line, cpu.hw.id, cpu.now());
        cpu.charge(cpu.costs.cas + extra);
        cpu.counters.cas_ops += 1;
        self.uaf_check(cpu.thread_id, UafKind::Cas, addr, off);
        self.cell(addr, off)
            .compare_exchange(expected, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    /// A full memory fence: charges fence cost only (ordering is free in a
    /// serialized simulation).
    pub fn fence(&self, cpu: &mut Cpu) {
        cpu.charge(cpu.costs.fence);
        cpu.counters.fences += 1;
    }

    /// Atomic fetch-and-add on `addr + off`; returns the previous value.
    ///
    /// Charged like a CAS (it is one on most hardware).
    pub fn fetch_add(&self, cpu: &mut Cpu, addr: Addr, off: u64, delta: Word) -> Word {
        let line = addr.offset(off).line();
        cpu.charge_mem(line);
        let extra = self
            .traffic
            .on_write(&cpu.costs, line, cpu.hw.id, cpu.now());
        cpu.charge(cpu.costs.cas + extra);
        cpu.counters.cas_ops += 1;
        self.uaf_check(cpu.thread_id, UafKind::Cas, addr, off);
        self.cell(addr, off).fetch_add(delta, Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Untimed accessors: for scanners and assertions that account their
    // costs in bulk, and for tests.
    // ------------------------------------------------------------------

    /// Reads a word without charging time.
    pub fn peek(&self, addr: Addr, off: u64) -> Word {
        self.cell(addr, off).load(Ordering::Relaxed)
    }

    /// Writes a word without charging time (test/bootstrap use).
    pub fn poke(&self, addr: Addr, off: u64, value: Word) {
        self.cell(addr, off).store(value, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Allocation.
    // ------------------------------------------------------------------

    /// Allocates `words` zeroed words.
    pub fn alloc(&self, cpu: &mut Cpu, words: usize) -> Result<Addr, AllocError> {
        cpu.charge(cpu.costs.alloc);
        cpu.counters.allocs += 1;
        let addr = self.allocator.lock().unwrap().alloc(words)?;
        let block = {
            let a = self.allocator.lock().unwrap();
            a.block_len(addr).expect("just allocated")
        };
        for off in 0..block {
            self.cell(addr, off).store(0, Ordering::Relaxed);
        }
        self.uaf_check_reexposure(cpu.thread_id, addr, block);
        self.ledger_on_alloc(addr);
        Ok(addr)
    }

    /// Allocates `words` zeroed words without charging virtual time.
    ///
    /// For bootstrap only (building thread contexts and initial data
    /// structure population before the measured run starts).
    pub fn alloc_untimed(&self, words: usize) -> Result<Addr, AllocError> {
        let addr = self.allocator.lock().unwrap().alloc(words)?;
        let block = {
            let a = self.allocator.lock().unwrap();
            a.block_len(addr).expect("just allocated")
        };
        for off in 0..block {
            self.cell(addr, off).store(0, Ordering::Relaxed);
        }
        self.ledger_on_alloc(addr);
        Ok(addr)
    }

    /// Frees the block based at `addr`, poisoning it first if configured.
    ///
    /// Callers that interact with transactional readers must poison through
    /// the HTM engine (`privatize`) *before* calling this, so that in-flight
    /// transactions observing the block are doomed; this raw free is the
    /// allocator-level step.
    ///
    /// # Panics
    ///
    /// Panics on a never-allocated address, and on double free when the
    /// lifecycle ledger is disabled. With the ledger armed a double free
    /// of a tracked block is *recorded and absorbed* instead: the audit
    /// oracle's job is to report the defect with attribution, and
    /// re-freeing would corrupt the allocator's free lists before the
    /// report could be read.
    pub fn free(&self, cpu: &mut Cpu, addr: Addr) {
        if self.ledger_on_free(cpu.thread_id, cpu.now(), addr, true) {
            return;
        }
        self.free_inner(cpu, addr);
    }

    /// Frees a block that was never published to other threads (e.g. an
    /// allocation rolled back by an aborted segment).
    ///
    /// Identical to [`Heap::free`] except that the lifecycle ledger does
    /// not require a prior retire: unpublished blocks are reclaimed
    /// directly by their allocating thread, which is the one legitimate
    /// free-without-retire path.
    pub fn free_unpublished(&self, cpu: &mut Cpu, addr: Addr) {
        if self.ledger_on_free(cpu.thread_id, cpu.now(), addr, false) {
            return;
        }
        self.free_inner(cpu, addr);
    }

    fn free_inner(&self, cpu: &mut Cpu, addr: Addr) {
        cpu.charge(cpu.costs.free);
        cpu.counters.frees += 1;
        let block = {
            let a = self.allocator.lock().unwrap();
            a.block_len(addr)
                .unwrap_or_else(|| panic!("free of unknown address {addr:?}"))
        };
        if self.config.poison_on_free {
            for off in 0..block {
                self.cell(addr, off).store(POISON, Ordering::Relaxed);
            }
        }
        self.allocator.lock().unwrap().free(addr);
    }

    // ------------------------------------------------------------------
    // Use-after-free oracle.
    // ------------------------------------------------------------------

    /// Enables or disables the use-after-free oracle.
    ///
    /// While enabled, every *timed* access (the accesses simulated
    /// programs make) to a word inside a freed block records a
    /// [`UafViolation`], and every timed allocation checks the registered
    /// protection roots for references into the recycled block (ABA
    /// re-exposure). Untimed `peek`/`poke` are exempt: they model test and
    /// scanner introspection, not program reads.
    pub fn set_uaf_oracle(&self, enabled: bool) {
        self.uaf_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Registers a protection-root region for the re-exposure check:
    /// `words` heap words at `base` holding published (possibly
    /// tag-marked) pointers. Only precise publication regions belong here
    /// — words that always reference currently-protected objects, like the
    /// hazard-slot matrix. Conservative regions (StackTrack's committed
    /// shadow frames, which legitimately hold stale values) would produce
    /// false positives.
    pub fn add_uaf_root(&self, base: Addr, words: u64) {
        self.uaf.lock().unwrap().roots.push(UafRoot { base, words });
    }

    /// Violations recorded since the oracle was enabled.
    pub fn uaf_violations(&self) -> Vec<UafViolation> {
        self.uaf.lock().unwrap().violations.clone()
    }

    /// Oracle hook for *validated speculative* reads (the HTM engine's
    /// transactional loads, which go through `peek` plus version
    /// validation rather than [`Heap::load`]).
    ///
    /// A speculative read that passes validation yet lands in a freed
    /// block belongs to a transaction that *began after* the free —
    /// in-flight readers at free time are doomed by the version bump and
    /// never return data — so it is a genuine use-after-free, not HTM
    /// speculation that will be discarded.
    pub fn note_speculative_read(&self, thread: usize, addr: Addr, off: u64) {
        self.uaf_check(thread, UafKind::Read, addr, off);
    }

    /// Records a violation if `addr + off` lies inside a freed block.
    fn uaf_check(&self, thread: usize, kind: UafKind, addr: Addr, off: u64) {
        if !self.uaf_enabled.load(Ordering::Relaxed) {
            return;
        }
        let raw = addr.offset(off).raw();
        let freed_base = {
            let a = self.allocator.lock().unwrap();
            match a.object_at(raw) {
                Some((base, info)) if !info.live => Some(base),
                _ => None,
            }
        };
        if let Some(base) = freed_base {
            self.uaf.lock().unwrap().violations.push(UafViolation {
                kind,
                thread: thread,
                base,
                raw,
            });
        }
    }

    /// Records a violation if any registered root still references the
    /// just-(re)allocated block `[addr, addr + block)`.
    fn uaf_check_reexposure(&self, thread: usize, addr: Addr, block: u64) {
        if !self.uaf_enabled.load(Ordering::Relaxed) {
            return;
        }
        let lo = addr.raw();
        let hi = addr.offset(block).raw();
        let mut state = self.uaf.lock().unwrap();
        let roots = state.roots.clone();
        for root in roots {
            for off in 0..root.words {
                let stripped = self.peek(root.base, off) & !crate::tagged::TAG_MASK;
                if stripped >= lo && stripped < hi {
                    state.violations.push(UafViolation {
                        kind: UafKind::Reexposure,
                        thread: thread,
                        base: addr,
                        raw: root.base.offset(off).raw(),
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Lifecycle ledger (allocated → retired → freed audit oracle).
    // ------------------------------------------------------------------

    /// Enables or disables the heap-ledger oracle.
    ///
    /// While enabled, every allocation registers its block as live, every
    /// retire reported via [`Heap::note_retire`] moves it to retired, and
    /// every [`Heap::free`] moves it to freed — recording a
    /// [`LedgerViolation`] on any out-of-order transition (double retire,
    /// double free, free before retire). Blocks allocated while the ledger
    /// was disabled are untracked and exempt, so enabling the oracle
    /// *before* building structures and thread contexts gives full
    /// coverage. Recording never stops the run.
    pub fn set_ledger_oracle(&self, enabled: bool) {
        self.ledger_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Reports that `thread` retired the block based at `addr` at virtual
    /// cycle `cycle`. Reclamation schemes call this where they accept a
    /// block into their deferral pipeline (limbo list, hazard retire list,
    /// free set, ...). A retire of an already-retired or already-freed
    /// block records [`LedgerKind::DoubleRetire`].
    pub fn note_retire(&self, thread: usize, cycle: u64, addr: Addr) {
        if !self.ledger_enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut book = self.ledger.lock().unwrap();
        book.retire_events += 1;
        match book.blocks.get(&addr.raw()) {
            Some(BlockState::Retired { .. }) | Some(BlockState::Freed) => {
                book.violations.push(LedgerViolation {
                    kind: LedgerKind::DoubleRetire,
                    thread,
                    base: addr,
                    cycle,
                });
            }
            // Untracked blocks (allocated before the ledger was enabled)
            // join the pipeline at their first observed event.
            Some(BlockState::Live) | None => {
                book.blocks
                    .insert(addr.raw(), BlockState::Retired { thread, cycle });
            }
        }
    }

    /// Lifecycle violations recorded since the ledger was enabled
    /// (excluding leaks, which only exist relative to a teardown point —
    /// see [`Heap::ledger_leaks`]).
    pub fn ledger_violations(&self) -> Vec<LedgerViolation> {
        self.ledger.lock().unwrap().violations.clone()
    }

    /// Blocks currently retired but never freed, as [`LedgerKind::Leak`]
    /// violations attributed to the retiring thread and cycle.
    ///
    /// Only meaningful after teardown of a scheme that promises to drain
    /// its deferral pipeline; a truncated or faulted run legitimately
    /// holds retired blocks, so the caller decides when to ask.
    pub fn ledger_leaks(&self) -> Vec<LedgerViolation> {
        let book = self.ledger.lock().unwrap();
        book.blocks
            .iter()
            .filter_map(|(&raw, state)| match state {
                BlockState::Retired { thread, cycle } => Some(LedgerViolation {
                    kind: LedgerKind::Leak,
                    thread: *thread,
                    base: Addr::from_raw(raw),
                    cycle: *cycle,
                }),
                _ => None,
            })
            .collect()
    }

    /// Aggregate ledger counters (for `audit.*` metrics snapshots).
    pub fn ledger_stats(&self) -> LedgerStats {
        let book = self.ledger.lock().unwrap();
        let mut stats = LedgerStats {
            retire_events: book.retire_events,
            free_events: book.free_events,
            ..LedgerStats::default()
        };
        for state in book.blocks.values() {
            match state {
                BlockState::Live => stats.live += 1,
                BlockState::Retired { .. } => stats.retired += 1,
                BlockState::Freed => stats.freed += 1,
            }
        }
        stats
    }

    /// Registers an allocation with the ledger (block becomes live,
    /// superseding any record of the address's previous lifetime).
    fn ledger_on_alloc(&self, addr: Addr) {
        if !self.ledger_enabled.load(Ordering::Relaxed) {
            return;
        }
        self.ledger
            .lock()
            .unwrap()
            .blocks
            .insert(addr.raw(), BlockState::Live);
    }

    /// Registers a free with the ledger. `expect_retired` distinguishes
    /// the normal reclamation path (retire must have happened) from the
    /// unpublished-rollback path ([`Heap::free_unpublished`]). Returns
    /// `true` when the free was a recorded double free, in which case the
    /// caller must *not* touch the allocator: the block is already on a
    /// free list (or reallocated to someone else), and the oracle's
    /// contract is to report the defect, not to let it corrupt the heap.
    fn ledger_on_free(&self, thread: usize, cycle: u64, addr: Addr, expect_retired: bool) -> bool {
        if !self.ledger_enabled.load(Ordering::Relaxed) {
            return false;
        }
        let mut book = self.ledger.lock().unwrap();
        book.free_events += 1;
        let kind = match book.blocks.get(&addr.raw()) {
            Some(BlockState::Freed) => Some(LedgerKind::DoubleFree),
            Some(BlockState::Live) if expect_retired => Some(LedgerKind::FreeBeforeRetire),
            // Untracked blocks are exempt (allocated before enabling).
            _ => None,
        };
        let absorbed = matches!(kind, Some(LedgerKind::DoubleFree));
        if let Some(kind) = kind {
            book.violations.push(LedgerViolation {
                kind,
                thread,
                base: addr,
                cycle,
            });
        }
        if !absorbed {
            book.blocks.insert(addr.raw(), BlockState::Freed);
        }
        absorbed
    }

    // ------------------------------------------------------------------
    // Introspection (the paper's malloc-hook range queries, plus test
    // support).
    // ------------------------------------------------------------------

    /// Resolves a raw scanned word to the base of the live object it points
    /// into, if any (section 5.5 interior-pointer support).
    pub fn object_base(&self, raw: Word) -> Option<Addr> {
        let a = self.allocator.lock().unwrap();
        a.object_at(raw)
            .and_then(|(base, info)| info.live.then_some(base))
    }

    /// Whether `addr` is the base of a live object.
    pub fn is_live(&self, addr: Addr) -> bool {
        self.allocator.lock().unwrap().is_live(addr)
    }

    /// Block length in words of the object at `addr`, if it was ever
    /// allocated.
    pub fn block_len(&self, addr: Addr) -> Option<u64> {
        self.allocator.lock().unwrap().block_len(addr)
    }

    /// Whether the word at `addr + off` currently holds poison.
    pub fn is_poisoned(&self, addr: Addr, off: u64) -> bool {
        self.peek(addr, off) == POISON
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            alloc: self.allocator.lock().unwrap().stats(),
        }
    }

    /// Heap capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.config.capacity_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_machine::{cpu::ActivityBoard, CostModel, HwContext, Topology};
    use std::sync::Arc;

    fn cpu() -> Cpu {
        let topo = Topology::haswell();
        Cpu::new(
            0,
            HwContext::new(&topo, 0),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            7,
        )
    }

    #[test]
    fn fresh_allocations_are_zeroed() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 4).unwrap();
        for off in 0..4 {
            assert_eq!(heap.load(&mut c, a, off), 0);
        }
    }

    #[test]
    fn recycled_allocations_are_zeroed() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 4).unwrap();
        heap.store(&mut c, a, 0, 99);
        heap.free(&mut c, a);
        let b = heap.alloc(&mut c, 4).unwrap();
        assert_eq!(b, a, "type-stable recycle");
        assert_eq!(heap.load(&mut c, b, 0), 0, "recycled memory must be zeroed");
    }

    #[test]
    fn store_load_roundtrip_charges_time() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 2).unwrap();
        let before = c.now();
        heap.store(&mut c, a, 1, 0xABCD);
        assert_eq!(heap.load(&mut c, a, 1), 0xABCD);
        assert!(c.now() > before);
        assert_eq!(c.counters.stores, 1);
        assert_eq!(c.counters.loads, 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 1).unwrap();
        heap.store(&mut c, a, 0, 5);
        assert_eq!(heap.cas(&mut c, a, 0, 5, 6), Ok(5));
        assert_eq!(heap.cas(&mut c, a, 0, 5, 7), Err(6));
        assert_eq!(heap.peek(a, 0), 6);
    }

    #[test]
    fn free_poisons() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 3).unwrap();
        heap.store(&mut c, a, 0, 1);
        heap.free(&mut c, a);
        assert!(heap.is_poisoned(a, 0));
        assert!(
            heap.is_poisoned(a, 3),
            "whole block (class-rounded) poisoned"
        );
        assert!(!heap.is_live(a));
    }

    #[test]
    fn object_base_only_for_live_objects() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 6).unwrap();
        assert_eq!(heap.object_base(a.offset(4).raw()), Some(a));
        heap.free(&mut c, a);
        assert_eq!(heap.object_base(a.offset(4).raw()), None);
    }

    #[test]
    #[should_panic(expected = "outside the heap")]
    fn out_of_bounds_access_panics() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let top = heap.capacity_words();
        heap.load(&mut c, Addr::from_index(top), 0);
    }

    #[test]
    #[should_panic(expected = "outside the heap")]
    fn null_access_panics() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.load(&mut c, Addr::from_index(0), 0);
    }

    #[test]
    fn uaf_oracle_records_access_to_freed_block() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_uaf_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.free(&mut c, a);
        heap.load(&mut c, a, 1);
        heap.store(&mut c, a, 0, 9);
        let _ = heap.cas(&mut c, a, 0, 9, 10);
        let v = heap.uaf_violations();
        assert_eq!(
            v.iter().map(|x| x.kind).collect::<Vec<_>>(),
            vec![UafKind::Read, UafKind::Write, UafKind::Cas]
        );
        assert!(v.iter().all(|x| x.base == a && x.thread == 0));
    }

    #[test]
    fn uaf_oracle_is_silent_when_disabled_or_block_live() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.load(&mut c, a, 0); // live: fine
        heap.free(&mut c, a);
        heap.load(&mut c, a, 0); // oracle off: unrecorded
        assert!(heap.uaf_violations().is_empty());
    }

    #[test]
    fn uaf_oracle_flags_reexposure_through_a_root() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_uaf_oracle(true);
        // A one-word "hazard slot" region still holding a (tagged) pointer
        // to the block when the allocator recycles it.
        let slot = heap.alloc(&mut c, 1).unwrap();
        heap.add_uaf_root(slot, 1);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.store(&mut c, slot, 0, a.raw() | 1);
        heap.free(&mut c, a);
        let b = heap.alloc(&mut c, 2).unwrap();
        assert_eq!(b, a, "size-class free list recycles the block");
        let v = heap.uaf_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, UafKind::Reexposure);
        assert_eq!(v[0].base, a);
        assert_eq!(v[0].raw, slot.raw());
        // Clearing the slot before recycling is clean.
        heap.store(&mut c, slot, 0, 0);
        heap.free(&mut c, b);
        let _ = heap.alloc(&mut c, 2).unwrap();
        assert_eq!(heap.uaf_violations().len(), 1, "no new violation");
    }

    #[test]
    fn ledger_tracks_the_clean_lifecycle() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.note_retire(0, c.now(), a);
        heap.free(&mut c, a);
        assert!(heap.ledger_violations().is_empty());
        assert!(heap.ledger_leaks().is_empty());
        let stats = heap.ledger_stats();
        assert_eq!(stats.retire_events, 1);
        assert_eq!(stats.free_events, 1);
        assert_eq!(stats.freed, 1);
    }

    #[test]
    fn ledger_flags_double_retire() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.note_retire(0, 10, a);
        heap.note_retire(1, 20, a);
        let v = heap.ledger_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, LedgerKind::DoubleRetire);
        assert_eq!(v[0].thread, 1);
        assert_eq!(v[0].base, a);
        assert_eq!(v[0].cycle, 20);
    }

    #[test]
    fn ledger_flags_free_before_retire() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.free(&mut c, a);
        let v = heap.ledger_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, LedgerKind::FreeBeforeRetire);
    }

    #[test]
    fn ledger_exempts_unpublished_rollback_frees() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.free_unpublished(&mut c, a);
        assert!(heap.ledger_violations().is_empty());
    }

    #[test]
    fn ledger_records_and_absorbs_a_double_free() {
        let heap = Arc::new(Heap::new(HeapConfig::small()));
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.note_retire(0, c.now(), a);
        heap.free(&mut c, a);
        // With the ledger armed the second free is recorded with full
        // attribution and absorbed: it must not reach the allocator,
        // whose free lists already hold (or re-issued) the block.
        heap.free(&mut c, a);
        let v = heap.ledger_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, LedgerKind::DoubleFree);
        // The absorbed free did not double-insert into a free list: the
        // address can be reallocated and freed exactly once again.
        let b = heap.alloc(&mut c, 2).unwrap();
        assert_eq!(b, a, "small heap re-issues the freed block");
        heap.note_retire(0, c.now(), b);
        heap.free(&mut c, b);
        assert_eq!(heap.ledger_violations().len(), 1, "clean second lifetime");
    }

    #[test]
    fn allocator_still_panics_on_double_free_without_the_ledger() {
        let heap = Arc::new(Heap::new(HeapConfig::small()));
        let mut c = cpu();
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.free(&mut c, a);
        let h = heap.clone();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut c2 = cpu();
            h.free(&mut c2, a);
        }));
        assert!(panicked.is_err(), "unledgered double free stays loud");
    }

    #[test]
    fn ledger_reports_retired_but_unfreed_blocks_as_leaks() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        let b = heap.alloc(&mut c, 2).unwrap();
        heap.note_retire(1, 42, a);
        heap.note_retire(0, 43, b);
        heap.free(&mut c, b);
        let leaks = heap.ledger_leaks();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].kind, LedgerKind::Leak);
        assert_eq!(leaks[0].base, a);
        assert_eq!(leaks[0].thread, 1);
        assert_eq!(leaks[0].cycle, 42);
        // Live-but-unretired blocks are not leaks: nodes still reachable
        // in a structure at teardown are legitimately alive.
        assert_eq!(heap.ledger_stats().live, 0);
    }

    #[test]
    fn ledger_is_silent_when_disabled_and_exempts_prior_blocks() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        let a = heap.alloc(&mut c, 2).unwrap(); // untracked: pre-enable
        heap.set_ledger_oracle(true);
        heap.free(&mut c, a); // no free-before-retire for untracked blocks
        assert!(heap.ledger_violations().is_empty());
        heap.set_ledger_oracle(false);
        let b = heap.alloc(&mut c, 2).unwrap();
        heap.free(&mut c, b);
        assert!(heap.ledger_violations().is_empty());
        assert_eq!(heap.ledger_stats().free_events, 1);
    }

    #[test]
    fn ledger_recycled_block_starts_a_fresh_lifetime() {
        let heap = Heap::new(HeapConfig::small());
        let mut c = cpu();
        heap.set_ledger_oracle(true);
        let a = heap.alloc(&mut c, 2).unwrap();
        heap.note_retire(0, 1, a);
        heap.free(&mut c, a);
        let b = heap.alloc(&mut c, 2).unwrap();
        assert_eq!(b, a, "size-class free list recycles the block");
        heap.note_retire(0, 2, b);
        heap.free(&mut c, b);
        assert!(heap.ledger_violations().is_empty(), "no stale double-free");
    }

    #[test]
    fn coherence_miss_charged_on_foreign_line() {
        let heap = Heap::new(HeapConfig::small());
        let topo = Topology::haswell();
        let board = Arc::new(ActivityBoard::new(topo.hw_contexts()));
        let costs = Arc::new(CostModel::default());
        let mut c0 = Cpu::new(0, HwContext::new(&topo, 0), costs.clone(), board.clone(), 7);
        let mut c1 = Cpu::new(1, HwContext::new(&topo, 1), costs.clone(), board, 7);
        let a = heap.alloc(&mut c0, 1).unwrap();
        heap.store(&mut c0, a, 0, 1);
        c1.advance_to(c0.now()); // make the write "recent" for c1
        let before = c1.now();
        heap.load(&mut c1, a, 0);
        assert!(
            c1.now() - before >= costs.load + costs.coherence_miss,
            "foreign read of a hot line must cost a miss"
        );
    }
}
