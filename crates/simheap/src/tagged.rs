//! Tagged (marked) pointer codec.
//!
//! Lock-free structures in the Harris family store a *mark* in the low bits
//! of next-pointers to flag logically deleted nodes. Since simulated
//! addresses are 8-aligned, the low 3 bits of any pointer word are free.

use crate::addr::Addr;

/// A pointer word carrying up to 3 tag bits.
///
/// # Examples
///
/// ```
/// use st_simheap::{Addr, TaggedPtr};
///
/// let p = TaggedPtr::new(Addr::from_index(9), 0);
/// let marked = p.with_mark(true);
/// assert!(marked.marked());
/// assert_eq!(marked.addr(), p.addr());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedPtr(pub u64);

/// The deletion-mark bit used by Harris-style lists.
pub const MARK_BIT: u64 = 1;

/// Mask of all tag bits.
pub const TAG_MASK: u64 = 7;

impl TaggedPtr {
    /// Packs an address and tag bits into one word.
    ///
    /// # Panics
    ///
    /// Panics if `tag` uses bits outside [`TAG_MASK`].
    pub fn new(addr: Addr, tag: u64) -> Self {
        assert_eq!(tag & !TAG_MASK, 0, "tag {tag:#x} out of range");
        TaggedPtr(addr.raw() | tag)
    }

    /// Interprets a raw memory word as a tagged pointer.
    pub fn from_word(word: u64) -> Self {
        TaggedPtr(word)
    }

    /// The raw word to store in memory.
    pub fn word(self) -> u64 {
        self.0
    }

    /// The address with tag bits stripped.
    pub fn addr(self) -> Addr {
        Addr(self.0 & !TAG_MASK)
    }

    /// The tag bits.
    pub fn tag(self) -> u64 {
        self.0 & TAG_MASK
    }

    /// Whether the Harris deletion mark is set.
    pub fn marked(self) -> bool {
        self.0 & MARK_BIT != 0
    }

    /// This pointer with the deletion mark set or cleared.
    pub fn with_mark(self, mark: bool) -> Self {
        if mark {
            TaggedPtr(self.0 | MARK_BIT)
        } else {
            TaggedPtr(self.0 & !MARK_BIT)
        }
    }

    /// Whether the address part is null.
    pub fn is_null(self) -> bool {
        self.addr().is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NULL;

    #[test]
    fn pack_unpack() {
        let a = Addr::from_index(1234);
        for tag in 0..8 {
            let p = TaggedPtr::new(a, tag);
            assert_eq!(p.addr(), a);
            assert_eq!(p.tag(), tag);
        }
    }

    #[test]
    fn mark_toggles_only_mark_bit() {
        let p = TaggedPtr::new(Addr::from_index(5), 0b100);
        let m = p.with_mark(true);
        assert!(m.marked());
        assert_eq!(m.tag(), 0b101);
        assert_eq!(m.with_mark(false), p);
    }

    #[test]
    fn null_detection_ignores_tags() {
        assert!(TaggedPtr::new(NULL, 1).is_null());
        assert!(!TaggedPtr::new(Addr::from_index(1), 1).is_null());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_tag_rejected() {
        let _ = TaggedPtr::new(Addr::from_index(1), 8);
    }
}
