//! Cache-line traffic model.
//!
//! A flat cost model cannot reproduce two effects the paper's evaluation
//! leans on: coherence misses on recently written lines, and the
//! "over-throttle" behaviour of the Michael-Scott queue, whose head/tail
//! words become slower per access as more hardware contexts hammer them
//! (section 6.2 cites Dice et al. for the effect). This module keeps a
//! small, lossy, per-line table of who wrote a line last and how *hot* it
//! is, and converts that into extra virtual-cycle charges.
//!
//! The table is open-addressed by line hash with no collision resolution;
//! a collision just attributes heat to the wrong line, which is acceptable
//! noise for a cost model (real L1 set conflicts behave similarly).

use st_machine::{CostModel, Cycles};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sliding window within which a line is considered recently touched.
const HOT_WINDOW: Cycles = 4_000;

/// Maximum tracked contenders per line (heat saturates here).
const MAX_HEAT: u64 = 32;

#[derive(Debug)]
struct Slot {
    /// Virtual time of the last write to the line.
    last_write: AtomicU64,
    /// Hardware context that performed the last write (plus one; 0 = none).
    last_writer: AtomicU64,
    /// Saturating count of distinct recent writers.
    heat: AtomicU64,
}

/// Per-line recent-writer table.
#[derive(Debug)]
pub struct Traffic {
    slots: Vec<Slot>,
    mask: u64,
}

impl Traffic {
    /// Creates a table with `size` slots (rounded up to a power of two).
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(64);
        Self {
            slots: (0..size)
                .map(|_| Slot {
                    last_write: AtomicU64::new(0),
                    last_writer: AtomicU64::new(0),
                    heat: AtomicU64::new(0),
                })
                .collect(),
            mask: size as u64 - 1,
        }
    }

    fn slot(&self, line: u64) -> &Slot {
        // Fibonacci hashing spreads consecutive lines across the table.
        let h = line.wrapping_mul(0x9e3779b97f4a7c15);
        &self.slots[((h >> 32) & self.mask) as usize]
    }

    /// Extra charge for a read of `line` by hardware context `ctx` at `now`.
    ///
    /// Reading a line someone else wrote recently costs a coherence miss.
    pub fn on_read(&self, costs: &CostModel, line: u64, ctx: usize, now: Cycles) -> Cycles {
        let s = self.slot(line);
        let writer = s.last_writer.load(Ordering::Relaxed);
        let when = s.last_write.load(Ordering::Relaxed);
        if writer != 0 && writer != ctx as u64 + 1 && now.saturating_sub(when) < HOT_WINDOW {
            costs.coherence_miss
        } else {
            0
        }
    }

    /// Extra charge for a write/CAS of `line` by context `ctx` at `now`,
    /// and bookkeeping of the line's heat.
    ///
    /// The returned charge grows with the number of distinct recent writers,
    /// which is what throttles hot CAS words like queue head/tail.
    pub fn on_write(&self, costs: &CostModel, line: u64, ctx: usize, now: Cycles) -> Cycles {
        let s = self.slot(line);
        let me = ctx as u64 + 1;
        let writer = s.last_writer.load(Ordering::Relaxed);
        let when = s.last_write.load(Ordering::Relaxed);
        let recent = now.saturating_sub(when) < HOT_WINDOW;

        let heat = if !recent {
            s.heat.store(0, Ordering::Relaxed);
            0
        } else if writer != 0 && writer != me {
            let h = s.heat.load(Ordering::Relaxed).min(MAX_HEAT - 1) + 1;
            s.heat.store(h, Ordering::Relaxed);
            h
        } else {
            // Self-write (or first write ever): ownership migrates to this
            // context, cooling the line one step per write.
            let h = s.heat.load(Ordering::Relaxed).saturating_sub(1);
            s.heat.store(h, Ordering::Relaxed);
            h
        };

        s.last_writer.store(me, Ordering::Relaxed);
        s.last_write.store(now, Ordering::Relaxed);

        let mut extra = 0;
        if writer != 0 && writer != me && recent {
            extra += costs.coherence_miss;
        }
        extra + costs.cas_contention * heat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn cold_reads_are_free() {
        let t = Traffic::new(256);
        assert_eq!(t.on_read(&costs(), 42, 0, 0), 0);
    }

    #[test]
    fn read_after_foreign_write_costs_a_miss() {
        let t = Traffic::new(256);
        let c = costs();
        t.on_write(&c, 42, 1, 100);
        assert_eq!(t.on_read(&c, 42, 0, 150), c.coherence_miss);
        // Reading my own line is free.
        assert_eq!(t.on_read(&c, 42, 1, 150), 0);
    }

    #[test]
    fn heat_decays_after_the_window() {
        let t = Traffic::new(256);
        let c = costs();
        t.on_write(&c, 7, 0, 0);
        t.on_write(&c, 7, 1, 10);
        // Long pause: heat resets, no miss.
        assert_eq!(t.on_write(&c, 7, 2, 10 + HOT_WINDOW + 1), 0);
    }

    #[test]
    fn contended_writes_get_progressively_slower() {
        let t = Traffic::new(256);
        let c = costs();
        let mut prev = t.on_write(&c, 3, 0, 0);
        for (i, ctx) in (1..6).enumerate() {
            let cost = t.on_write(&c, 3, ctx, (i as u64 + 1) * 10);
            assert!(cost >= prev, "heat should not cool while hammered");
            prev = cost;
        }
        assert!(prev >= c.coherence_miss + 2 * c.cas_contention);
    }

    #[test]
    fn heat_saturates() {
        let t = Traffic::new(256);
        let c = costs();
        let mut last = 0;
        for i in 0..64 {
            last = t.on_write(&c, 9, (i % 7) as usize, i * 10);
        }
        assert!(last <= c.coherence_miss + MAX_HEAT * c.cas_contention);
    }
}
