//! Simulated addresses.

/// One 64-bit word of simulated memory.
pub type Word = u64;

/// The null address.
pub const NULL: Addr = Addr(0);

/// An address into the simulated heap.
///
/// Addresses are byte-style but always 8-aligned (they denote whole words),
/// so the low 3 bits of a stored pointer word are available as mark/tag bits
/// (see [`crate::tagged`]). `Addr(0)` is null; the word at index 0 is
/// reserved and never handed out by the allocator.
///
/// # Examples
///
/// ```
/// use st_simheap::Addr;
///
/// let a = Addr::from_index(5);
/// assert_eq!(a.raw(), 40);
/// assert_eq!(a.index(), 5);
/// assert!(!a.is_null());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// Builds an address from a word index.
    pub fn from_index(index: u64) -> Self {
        Addr(index << 3)
    }

    /// Reinterprets a raw word as an address.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 8-aligned; raw scan candidates should be
    /// filtered with [`Addr::try_from_raw`] instead.
    pub fn from_raw(raw: u64) -> Self {
        assert_eq!(raw & 7, 0, "unaligned address {raw:#x}");
        Addr(raw)
    }

    /// Reinterprets a raw word as an address if it is 8-aligned.
    pub fn try_from_raw(raw: u64) -> Option<Self> {
        (raw & 7 == 0).then_some(Addr(raw))
    }

    /// The raw numeric value stored in memory for this address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The word index this address denotes.
    pub fn index(self) -> u64 {
        self.0 >> 3
    }

    /// Whether this is the null address.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The address `words` whole words past this one.
    pub fn offset(self, words: u64) -> Self {
        Addr(self.0 + (words << 3))
    }

    /// The 64-byte cache line this address falls in.
    pub fn line(self) -> u64 {
        self.0 >> 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_raw_roundtrip() {
        for i in [0u64, 1, 7, 8, 1000, 1 << 40] {
            assert_eq!(Addr::from_index(i).index(), i);
        }
    }

    #[test]
    fn null_is_index_zero() {
        assert!(NULL.is_null());
        assert_eq!(Addr::from_index(0), NULL);
        assert!(!Addr::from_index(1).is_null());
    }

    #[test]
    fn offset_moves_whole_words() {
        let a = Addr::from_index(10);
        assert_eq!(a.offset(3).index(), 13);
        assert_eq!(a.offset(0), a);
    }

    #[test]
    fn line_groups_eight_words() {
        assert_eq!(Addr::from_index(0).line(), Addr::from_index(7).line());
        assert_ne!(Addr::from_index(7).line(), Addr::from_index(8).line());
    }

    #[test]
    fn try_from_raw_filters_unaligned() {
        assert_eq!(Addr::try_from_raw(16), Some(Addr(16)));
        assert_eq!(Addr::try_from_raw(17), None);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn from_raw_panics_on_unaligned() {
        let _ = Addr::from_raw(9);
    }
}
