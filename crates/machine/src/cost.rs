//! Virtual-cycle cost model.
//!
//! Every simulated memory, synchronization, and HTM event charges a number
//! of virtual cycles to the thread that performs it. The defaults are
//! order-of-magnitude figures for a Haswell-class part (uncontended L1 load
//! a few cycles, fence/atomic tens of cycles, context switch tens of
//! thousands); the evaluation only relies on their *ratios*, which drive the
//! qualitative shapes the paper reports (fence-per-load makes hazard
//! pointers expensive, commit-per-segment amortizes StackTrack's cost, and
//! so on).

use crate::Cycles;

/// Per-event virtual-cycle charges.
///
/// All costs are in cycles of the simulated machine. The model is
/// intentionally flat (no cache hierarchy simulation beyond the HTM layer's
/// L1 capacity budget); contention-dependent costs take a small multiplier
/// computed by the caller.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Plain (non-transactional) load.
    pub load: Cycles,
    /// Plain (non-transactional) store.
    pub store: Cycles,
    /// Extra charge per load/store when the line was recently written by
    /// another hardware context (coherence miss).
    pub coherence_miss: Cycles,
    /// Extra charge when the accessed line is absent from the thread's
    /// modeled private cache (cold/capacity miss — the cost that makes a
    /// pointer hop through a large structure expensive).
    pub mem_miss: Cycles,
    /// Full memory fence (drains the store buffer; the per-protected-load
    /// cost that dominates hazard pointers).
    pub fence: Cycles,
    /// Compare-and-swap, uncontended.
    pub cas: Cycles,
    /// Extra compare-and-swap charge per recent contender on the same line
    /// (models the over-throttle effect on the queue benchmark).
    pub cas_contention: Cycles,
    /// Starting a hardware transaction (XBEGIN).
    pub htm_begin: Cycles,
    /// Committing a hardware transaction (XEND, includes the implicit
    /// publication fence).
    pub htm_commit: Cycles,
    /// Fixed penalty for an aborted hardware transaction, on top of the
    /// wasted work the transaction already charged.
    pub htm_abort: Cycles,
    /// Transactional load (speculative, L1-resident).
    pub tx_load: Cycles,
    /// Transactional store (speculative, write-buffered).
    pub tx_store: Cycles,
    /// Heap allocation (size-class free list pop).
    pub alloc: Cycles,
    /// Heap de-allocation (free-list push + poison).
    pub free: Cycles,
    /// Register-to-register / local bookkeeping step (checkpoint counter
    /// increment and similar).
    pub local_op: Cycles,
    /// Inter-thread signal, charged twice: to the sender per raise (the
    /// `pthread_kill` syscall) and to the receiver when the scheduler
    /// delivers pending signals before its next step (kernel-to-handler
    /// transition). This is the per-neutralization cost that NBR
    /// amortizes by batching retires between signal broadcasts.
    pub signal_deliver: Cycles,
    /// Direct cost of a context switch, charged when a quantum expires and
    /// another thread is waiting on the same hardware context.
    pub context_switch: Cycles,
    /// Scheduler quantum: virtual cycles a thread runs before it can be
    /// preempted (1 ms at 2 GHz by default, like a CFS-ish slice).
    pub quantum: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            load: 4,
            store: 6,
            coherence_miss: 60,
            mem_miss: 60,
            fence: 90,
            cas: 40,
            cas_contention: 45,
            htm_begin: 45,
            htm_commit: 55,
            htm_abort: 160,
            tx_load: 5,
            tx_store: 7,
            alloc: 120,
            free: 90,
            local_op: 1,
            signal_deliver: 2_500,
            context_switch: 30_000,
            quantum: 2_000_000,
        }
    }
}

impl CostModel {
    /// A cost model with every charge set to `c` (useful in unit tests).
    pub fn uniform(c: Cycles) -> Self {
        Self {
            load: c,
            store: c,
            coherence_miss: c,
            mem_miss: c,
            fence: c,
            cas: c,
            cas_contention: c,
            htm_begin: c,
            htm_commit: c,
            htm_abort: c,
            tx_load: c,
            tx_store: c,
            alloc: c,
            free: c,
            local_op: c,
            signal_deliver: c,
            context_switch: c,
            quantum: 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let m = CostModel::default();
        assert!(m.load < m.fence, "a fence must dwarf a cached load");
        assert!(m.tx_load < m.htm_commit);
        assert!(m.htm_abort > m.htm_commit);
        assert!(m.context_switch > m.fence * 100);
        assert!(m.quantum > m.context_switch);
        // A signal is far pricier than a fence (why NBR batches retires
        // between broadcasts) but cheaper than a full context switch.
        assert!(m.signal_deliver > m.fence * 10);
        assert!(m.signal_deliver < m.context_switch);
    }

    #[test]
    fn uniform_sets_all_fields() {
        let m = CostModel::uniform(3);
        assert_eq!(m.load, 3);
        assert_eq!(m.context_switch, 3);
        assert_eq!(m.htm_abort, 3);
    }
}
