//! Per-simulated-thread execution context.

use crate::{CostModel, Cycles, HwContext, Pcg32};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters of simulated machine events, kept per thread.
#[derive(Debug, Default, Clone)]
pub struct EventCounters {
    /// Plain loads issued.
    pub loads: u64,
    /// Plain stores issued.
    pub stores: u64,
    /// Memory fences issued.
    pub fences: u64,
    /// Compare-and-swap operations issued.
    pub cas_ops: u64,
    /// Transactional loads issued.
    pub tx_loads: u64,
    /// Transactional stores issued.
    pub tx_stores: u64,
    /// Hardware transactions started.
    pub tx_begun: u64,
    /// Hardware transactions committed.
    pub tx_committed: u64,
    /// Hardware transactions aborted.
    pub tx_aborted: u64,
    /// Heap allocations.
    pub allocs: u64,
    /// Heap frees.
    pub frees: u64,
    /// Context switches suffered.
    pub context_switches: u64,
}

/// Shared per-hardware-context activity board.
///
/// Each hardware context publishes a coarse "transactional footprint"
/// (distinct cache lines touched by its current transaction) so that the HTM
/// capacity model can ask how much L1 pressure the SMT sibling is creating.
#[derive(Debug)]
pub struct ActivityBoard {
    footprint: Vec<AtomicU64>,
    running: Vec<AtomicU64>,
}

impl ActivityBoard {
    /// Creates a board for `hw_contexts` contexts.
    pub fn new(hw_contexts: usize) -> Self {
        Self {
            footprint: (0..hw_contexts).map(|_| AtomicU64::new(0)).collect(),
            running: (0..hw_contexts).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes the current transactional footprint of `ctx` (in lines).
    pub fn set_footprint(&self, ctx: usize, lines: u64) {
        self.footprint[ctx].store(lines, Ordering::Relaxed);
    }

    /// Reads the transactional footprint of `ctx` (in lines).
    pub fn footprint(&self, ctx: usize) -> u64 {
        self.footprint[ctx].load(Ordering::Relaxed)
    }

    /// Marks `ctx` as occupied by a runnable thread (or not).
    pub fn set_running(&self, ctx: usize, on: bool) {
        self.running[ctx].store(u64::from(on), Ordering::Relaxed);
    }

    /// Whether a runnable thread currently occupies `ctx`.
    pub fn is_running(&self, ctx: usize) -> bool {
        self.running[ctx].load(Ordering::Relaxed) != 0
    }
}

/// Shared board of pending inter-thread signals.
///
/// Models POSIX-style per-thread signals at the granularity the simulator
/// needs for neutralization-based reclamation: any thread may raise a
/// signal against any other through its [`Cpu`], and the scheduler delivers
/// all pending signals to a thread immediately before its next step (the
/// simulated analogue of "the handler runs before the next instruction").
/// Raises against out-of-range targets are ignored, so a board is safe to
/// share across differently sized runs.
#[derive(Debug)]
pub struct SignalBoard {
    pending: Vec<AtomicU64>,
}

impl SignalBoard {
    /// Creates a board for `threads` simulated threads.
    pub fn new(threads: usize) -> Self {
        Self {
            pending: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Raises one signal against `target` (ignored if out of range).
    pub fn raise(&self, target: usize) {
        if let Some(slot) = self.pending.get(target) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains and returns the number of signals pending against `target`.
    ///
    /// The read-before-swap fast path keeps the common no-signal case a
    /// plain load. The simulator steps every thread of a run from one OS
    /// thread, so a raise can never race the check-then-swap; even under a
    /// hypothetical concurrent raiser the signal is not lost, only
    /// delivered at the next take.
    pub fn take(&self, target: usize) -> u64 {
        let Some(slot) = self.pending.get(target) else {
            return 0;
        };
        if slot.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        slot.swap(0, Ordering::Relaxed)
    }

    /// Signals currently pending against `target`, without draining.
    pub fn pending(&self, target: usize) -> u64 {
        self.pending
            .get(target)
            .map_or(0, |slot| slot.load(Ordering::Relaxed))
    }
}

/// A small direct-mapped model of the thread's private cache, used only
/// to decide whether an access pays the cold-miss charge.
#[derive(Debug)]
struct MiniCache {
    /// `line + 1` per slot; 0 = empty.
    slots: Box<[u64]>,
    mask: u64,
}

impl MiniCache {
    fn new(lines: usize) -> Self {
        let lines = lines.next_power_of_two();
        Self {
            slots: vec![0; lines].into_boxed_slice(),
            mask: lines as u64 - 1,
        }
    }

    /// Touches `line`; returns `true` on a miss.
    fn access(&mut self, line: u64) -> bool {
        let idx = ((line.wrapping_mul(0x9e3779b97f4a7c15) >> 32) & self.mask) as usize;
        let stored = line + 1;
        if self.slots[idx] == stored {
            false
        } else {
            self.slots[idx] = stored;
            true
        }
    }
}

/// The execution context handed to a simulated thread while it runs.
///
/// A `Cpu` owns the thread's virtual clock, PRNG stream, placement, and
/// event counters. Substrate layers (heap, HTM) charge costs through it; the
/// scheduler reads and advances the clock between steps.
#[derive(Debug)]
pub struct Cpu {
    /// Simulated thread id (dense, `0..n_threads`).
    pub thread_id: usize,
    /// Hardware placement of this thread.
    pub hw: HwContext,
    /// Cost model used for all charges.
    pub costs: Arc<CostModel>,
    /// Shared activity board (SMT pressure, run states).
    pub board: Arc<ActivityBoard>,
    /// Deterministic PRNG stream private to this thread.
    pub rng: Pcg32,
    /// Event counters.
    pub counters: EventCounters,
    now: Cell<Cycles>,
    cache: MiniCache,
    signals: Arc<SignalBoard>,
}

impl Cpu {
    /// Creates a context for `thread_id` placed on `hw`.
    pub fn new(
        thread_id: usize,
        hw: HwContext,
        costs: Arc<CostModel>,
        board: Arc<ActivityBoard>,
        seed: u64,
    ) -> Self {
        Self {
            thread_id,
            hw,
            costs,
            board,
            rng: Pcg32::new_stream(seed, thread_id as u64 + 1),
            counters: EventCounters::default(),
            now: Cell::new(0),
            cache: MiniCache::new(512),
            // Unattached zero-size board: raises and takes are no-ops until
            // the scheduler (or a test) attaches a shared board.
            signals: Arc::new(SignalBoard::new(0)),
        }
    }

    /// Attaches the shared signal board of the run. The simulator calls
    /// this for every thread it hosts; contexts built directly (scratch
    /// CPUs, teardown helpers) keep the default inert board.
    pub fn attach_signals(&mut self, board: Arc<SignalBoard>) {
        self.signals = board;
    }

    /// Raises a neutralization signal against `target` (no-op when no
    /// board is attached or `target` is out of range).
    pub fn raise_signal(&self, target: usize) {
        self.signals.raise(target);
    }

    /// Drains this thread's pending signals, returning how many were
    /// raised since the last delivery. Called by the scheduler before each
    /// step; also usable directly by tests driving a worker by hand.
    pub fn take_signals(&self) -> u64 {
        self.signals.take(self.thread_id)
    }

    /// Models one cache access to `line`, charging the cold-miss cost on a
    /// miss. Called by the heap and the HTM engine for every data access.
    pub fn charge_mem(&mut self, line: u64) {
        if self.cache.access(line) {
            self.now.set(self.now.get() + self.costs.mem_miss);
        }
    }

    /// Current virtual time of this thread.
    pub fn now(&self) -> Cycles {
        self.now.get()
    }

    /// Charges `c` cycles to this thread's clock.
    pub fn charge(&self, c: Cycles) {
        self.now.set(self.now.get() + c);
    }

    /// Advances the clock to at least `t` (used by the scheduler when the
    /// thread was parked on a busy hardware context).
    pub fn advance_to(&self, t: Cycles) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// SMT capacity pressure from the sibling hardware context, in `[0, 1]`.
    ///
    /// `0.0` means the sibling context is idle (full private L1 budget);
    /// `1.0` means a co-tenant is actively running. The HTM layer halves the
    /// capacity budget and adds probabilistic evictions proportionally.
    pub fn smt_pressure(&self) -> f64 {
        match self.hw.sibling {
            Some(sib) if self.board.is_running(sib) => 1.0,
            _ => 0.0,
        }
    }

    /// Transactional footprint (lines) currently published by the sibling.
    pub fn sibling_footprint(&self) -> u64 {
        self.hw.sibling.map_or(0, |s| self.board.footprint(s))
    }

    /// Publishes this thread's current transactional footprint.
    pub fn publish_footprint(&self, lines: u64) {
        self.board.set_footprint(self.hw.id, lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn cpu(thread: usize) -> Cpu {
        let topo = Topology::haswell();
        let hw = HwContext::new(&topo, topo.place(thread));
        Cpu::new(
            thread,
            hw,
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            1,
        )
    }

    #[test]
    fn charge_advances_clock() {
        let c = cpu(0);
        assert_eq!(c.now(), 0);
        c.charge(10);
        c.charge(5);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = cpu(0);
        c.charge(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        c.advance_to(150);
        assert_eq!(c.now(), 150);
    }

    #[test]
    fn smt_pressure_tracks_sibling() {
        let c = cpu(0);
        assert_eq!(c.smt_pressure(), 0.0);
        let sib = c.hw.sibling.unwrap();
        c.board.set_running(sib, true);
        assert_eq!(c.smt_pressure(), 1.0);
        c.board.set_running(sib, false);
        assert_eq!(c.smt_pressure(), 0.0);
    }

    #[test]
    fn footprint_roundtrip() {
        let c0 = cpu(0);
        let c4 = Cpu::new(
            4,
            HwContext::new(&Topology::haswell(), 4),
            c0.costs.clone(),
            c0.board.clone(),
            1,
        );
        c4.publish_footprint(33);
        assert_eq!(c0.sibling_footprint(), 33);
    }

    #[test]
    fn signal_board_roundtrip() {
        let board = Arc::new(SignalBoard::new(2));
        let mut a = cpu(0);
        let mut b = cpu(1);
        a.attach_signals(board.clone());
        b.attach_signals(board.clone());

        // Unraised: nothing to take.
        assert_eq!(b.take_signals(), 0);
        a.raise_signal(1);
        a.raise_signal(1);
        assert_eq!(board.pending(1), 2);
        assert_eq!(b.take_signals(), 2, "both raises coalesce into one take");
        assert_eq!(b.take_signals(), 0, "take drains the slot");

        // Out-of-range targets are ignored, not a panic.
        a.raise_signal(99);
    }

    #[test]
    fn unattached_board_is_inert() {
        let c = cpu(0);
        c.raise_signal(0);
        assert_eq!(c.take_signals(), 0);
    }

    #[test]
    fn rng_streams_are_thread_private() {
        let mut a = cpu(0);
        let mut b = cpu(1);
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::Topology;

    fn cpu() -> Cpu {
        let topo = Topology::haswell();
        Cpu::new(
            0,
            HwContext::new(&topo, 0),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            3,
        )
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = cpu();
        let t0 = c.now();
        c.charge_mem(1234);
        let after_miss = c.now();
        assert_eq!(after_miss - t0, c.costs.mem_miss, "cold line: full miss");
        c.charge_mem(1234);
        assert_eq!(c.now(), after_miss, "warm line: free");
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        let mut c = cpu();
        // Touch far more distinct lines than the cache holds; re-touching
        // the first line must miss again.
        c.charge_mem(1);
        for line in 2..5_000u64 {
            c.charge_mem(line);
        }
        let before = c.now();
        c.charge_mem(1);
        assert_eq!(
            c.now() - before,
            c.costs.mem_miss,
            "line 1 must have been evicted by the working set"
        );
    }
}
