//! Machine topology: cores, SMT contexts, and thread placement.

/// Hardware topology of the simulated machine.
///
/// The paper's testbed is 4 cores with 2 hyperthreads each; that is the
/// default. Threads are placed on hardware contexts the way Linux numbers
/// sibling threads: context `c` lives on core `c % cores`, so contexts
/// `0..cores` occupy distinct cores before SMT siblings start doubling up.
///
/// # Examples
///
/// ```
/// use st_machine::Topology;
///
/// let t = Topology::haswell();
/// assert_eq!(t.hw_contexts(), 8);
/// assert_eq!(t.core_of(0), t.core_of(4)); // SMT siblings
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of physical cores.
    pub cores: usize,
    /// Hardware threads per core.
    pub smt_per_core: usize,
}

impl Topology {
    /// The paper's testbed: 4 cores x 2 hyperthreads.
    pub fn haswell() -> Self {
        Self {
            cores: 4,
            smt_per_core: 2,
        }
    }

    /// A single-core machine (useful in tests).
    pub fn unicore() -> Self {
        Self {
            cores: 1,
            smt_per_core: 1,
        }
    }

    /// Total hardware contexts (`cores * smt_per_core`).
    pub fn hw_contexts(&self) -> usize {
        self.cores * self.smt_per_core
    }

    /// The core a hardware context belongs to.
    pub fn core_of(&self, ctx: usize) -> usize {
        ctx % self.cores
    }

    /// The SMT sibling context of `ctx`, if the core has exactly two
    /// hardware threads.
    pub fn sibling_of(&self, ctx: usize) -> Option<usize> {
        if self.smt_per_core != 2 {
            return None;
        }
        let half = self.cores;
        Some(if ctx < half { ctx + half } else { ctx - half })
    }

    /// The hardware context a software thread is pinned to.
    ///
    /// Threads fill distinct cores first, then SMT siblings, then start
    /// time-sharing (`thread % hw_contexts`), matching how the paper's 1-16
    /// thread sweeps behave on an 8-way machine.
    pub fn place(&self, thread: usize) -> usize {
        thread % self.hw_contexts()
    }
}

/// A hardware context identifier together with its placement facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwContext {
    /// Index of the context in `0..topology.hw_contexts()`.
    pub id: usize,
    /// Core the context lives on.
    pub core: usize,
    /// SMT sibling context, if any.
    pub sibling: Option<usize>,
}

impl HwContext {
    /// Resolves placement facts for context `id` under `topo`.
    pub fn new(topo: &Topology, id: usize) -> Self {
        Self {
            id,
            core: topo.core_of(id),
            sibling: topo.sibling_of(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_shape() {
        let t = Topology::haswell();
        assert_eq!(t.cores, 4);
        assert_eq!(t.hw_contexts(), 8);
    }

    #[test]
    fn distinct_cores_first() {
        let t = Topology::haswell();
        let cores: Vec<_> = (0..4).map(|th| t.core_of(t.place(th))).collect();
        let mut sorted = cores.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "threads 0-3 must use 4 distinct cores");
    }

    #[test]
    fn siblings_share_core() {
        let t = Topology::haswell();
        for ctx in 0..t.hw_contexts() {
            let sib = t.sibling_of(ctx).unwrap();
            assert_ne!(ctx, sib);
            assert_eq!(t.core_of(ctx), t.core_of(sib));
            assert_eq!(t.sibling_of(sib), Some(ctx));
        }
    }

    #[test]
    fn oversubscription_wraps() {
        let t = Topology::haswell();
        assert_eq!(t.place(8), t.place(0));
        assert_eq!(t.place(15), t.place(7));
    }

    #[test]
    fn unicore_has_no_sibling() {
        let t = Topology::unicore();
        assert_eq!(t.sibling_of(0), None);
        assert_eq!(t.hw_contexts(), 1);
    }

    #[test]
    fn hw_context_resolution() {
        let t = Topology::haswell();
        let c = HwContext::new(&t, 5);
        assert_eq!(c.core, 1);
        assert_eq!(c.sibling, Some(1));
    }
}
