//! Deterministic discrete-event scheduler.
//!
//! Simulated threads are state machines ([`Worker`]); one call to
//! [`Worker::step`] executes roughly one basic block of the simulated
//! program (the same granularity at which StackTrack injects split
//! checkpoints). The scheduler always steps the runnable thread with the
//! smallest virtual clock, so shared-memory interleavings are ordered by
//! virtual time and every run is reproducible from the seed.
//!
//! Threads are pinned to hardware contexts ([`Topology::place`]); when a
//! context hosts more than one thread, they round-robin with a quantum and a
//! context-switch charge — this is how the paper's above-8-threads
//! preemption regime (and the resulting epoch-reclamation collapse) is
//! regenerated.

use crate::cpu::ActivityBoard;
use crate::fault::CompiledFaults;
use crate::{
    CostModel, Cpu, Cycles, EventCounters, FaultPlan, FaultStats, HwContext, Topology,
    CYCLES_PER_SECOND,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// What a worker accomplished in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Made progress inside an operation.
    Progress,
    /// Completed one data-structure operation (counted for throughput).
    OpDone,
    /// Spun without logical progress (waiting on other threads).
    Idle,
    /// No more work; do not step this worker again.
    Finished,
}

/// A simulated thread body.
///
/// `step` must charge the virtual cycles of whatever it simulated through
/// `cpu`; the scheduler guarantees forward progress by charging one cycle
/// itself if a step leaves the clock untouched.
pub trait Worker {
    /// Executes roughly one basic block of simulated work.
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome;

    /// Called once when the simulation ends (deadline or all finished),
    /// while the worker's `cpu` is still available. Not called for workers
    /// retired by a [`crate::FaultEvent::Kill`] — a crashed thread does not
    /// run its teardown.
    fn finish(&mut self, _cpu: &mut Cpu) {}

    /// Delivered when another thread raised a signal against this one via
    /// [`Cpu::raise_signal`] (the NBR neutralization path). The scheduler
    /// calls this immediately before the victim's next step, after its
    /// fault checks — the simulated analogue of a POSIX handler running
    /// before the next user instruction. Because steps are atomic basic
    /// blocks, a handler here observes only committed state. Default:
    /// ignore the signal.
    fn neutralize(&mut self, _cpu: &mut Cpu) {}
}

impl<W: Worker + ?Sized> Worker for Box<W> {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        (**self).step(cpu)
    }

    fn finish(&mut self, cpu: &mut Cpu) {
        (**self).finish(cpu)
    }

    fn neutralize(&mut self, cpu: &mut Cpu) {
        (**self).neutralize(cpu)
    }
}

/// Dictates the next-thread choice at every preemption point.
///
/// When installed via [`SimConfig::with_controller`], the simulator stops
/// picking the runnable thread with the smallest virtual clock and instead
/// consults the controller at every scheduling decision: it passes the ids
/// of all runnable threads (front-of-queue threads plus stalled threads
/// eligible to wake, sorted ascending) and steps whichever the controller
/// returns. This trades timing realism for schedule control — it is the
/// hook the `st-check` model checker enumerates interleavings through.
///
/// Controllers are shared (`Arc`) and called through `&self`; use interior
/// mutability to record or replay decisions.
pub trait ScheduleController: std::fmt::Debug + Send + Sync {
    /// Returns the thread id to step next. Must be an element of
    /// `runnable` (the simulator panics otherwise).
    fn pick(&self, runnable: &[usize]) -> usize;
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Machine shape.
    pub topology: Topology,
    /// Event costs.
    pub costs: CostModel,
    /// Master seed; thread PRNG streams derive from it.
    pub seed: u64,
    /// Virtual run length in cycles (threads stop once they pass it).
    pub duration: Cycles,
    /// Optional hard cap on total scheduler steps (`None` = unlimited).
    /// When hit, the report is marked truncated instead of looping forever.
    pub step_limit: Option<u64>,
    /// Deterministic fault schedule (empty = no faults).
    pub faults: FaultPlan,
    /// Optional schedule controller overriding the virtual-time pick
    /// (`None` = the default smallest-clock policy).
    pub controller: Option<Arc<dyn ScheduleController>>,
}

impl SimConfig {
    /// The paper's setup: Haswell topology, default costs, `duration`
    /// virtual milliseconds.
    pub fn haswell_ms(duration_ms: u64, seed: u64) -> Self {
        Self {
            topology: Topology::haswell(),
            costs: CostModel::default(),
            seed,
            duration: duration_ms * (CYCLES_PER_SECOND / 1000),
            step_limit: None,
            faults: FaultPlan::default(),
            controller: None,
        }
    }

    /// Returns `self` with the given fault plan installed (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns `self` with a schedule controller installed (builder style).
    pub fn with_controller(mut self, controller: Arc<dyn ScheduleController>) -> Self {
        self.controller = Some(controller);
        self
    }
}

/// Per-thread results.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Operations completed before the deadline.
    pub ops: u64,
    /// Final virtual clock of the thread.
    pub final_time: Cycles,
    /// Machine event counters.
    pub counters: EventCounters,
}

/// Whole-run results.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-thread results, indexed by thread id.
    pub threads: Vec<ThreadReport>,
    /// Virtual run length (cycles).
    pub duration: Cycles,
    /// True if the step limit cut the run short.
    pub truncated: bool,
    /// Fault events the scheduler actually applied.
    pub faults: FaultStats,
}

impl SimReport {
    /// Total operations completed across all threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(|t| t.ops).sum()
    }

    /// Throughput in operations per virtual second.
    pub fn ops_per_second(&self) -> f64 {
        self.total_ops() as f64 * CYCLES_PER_SECOND as f64 / self.duration as f64
    }

    /// Sums one counter across threads via an accessor.
    pub fn sum_counter(&self, f: impl Fn(&EventCounters) -> u64) -> u64 {
        self.threads.iter().map(|t| f(&t.counters)).sum()
    }
}

struct ThreadState<W> {
    cpu: Cpu,
    worker: W,
    ops: u64,
    finished: bool,
    /// Retired by a `Kill` fault; `finish` is skipped (crash semantics).
    killed: bool,
    /// Virtual time at which this thread was last scheduled in.
    sched_in: Cycles,
}

struct ContextState {
    /// Run queue of indices into the thread table; front is running.
    queue: VecDeque<usize>,
    /// Wall clock of this hardware context.
    wall: Cycles,
}

/// Removes a context's front thread from its run queue and resumes the next
/// one (charging the context switch), or marks the context idle. Keeps the
/// pick scan's candidate-clock cache (`cand[c]`) in sync with the new front.
fn retire_front<W>(
    ctx: &mut ContextState,
    threads: &mut [ThreadState<W>],
    costs: &CostModel,
    board: &ActivityBoard,
    cand: &mut [Cycles],
    c: usize,
) {
    ctx.queue.pop_front();
    if let Some(&next) = ctx.queue.front() {
        let resume = ctx.wall + costs.context_switch;
        threads[next].cpu.advance_to(resume);
        threads[next].sched_in = threads[next].cpu.now();
        threads[next].cpu.counters.context_switches += 1;
        cand[c] = threads[next].cpu.now();
    } else {
        board.set_running(c, false);
        cand[c] = Cycles::MAX;
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// Runs `workers` to the virtual deadline and returns the report plus
    /// the workers (so callers can extract scheme-specific statistics).
    ///
    /// Thread `i` is pinned to hardware context `topology.place(i)`.
    pub fn run<W: Worker>(&self, workers: Vec<W>) -> (SimReport, Vec<W>) {
        let topo = self.config.topology;
        let costs = Arc::new(self.config.costs.clone());
        let board = Arc::new(ActivityBoard::new(topo.hw_contexts()));
        let signals = Arc::new(crate::cpu::SignalBoard::new(workers.len()));
        let n = workers.len();

        let mut threads: Vec<ThreadState<W>> = workers
            .into_iter()
            .enumerate()
            .map(|(i, worker)| {
                let hw = HwContext::new(&topo, topo.place(i));
                let mut cpu = Cpu::new(i, hw, costs.clone(), board.clone(), self.config.seed);
                cpu.attach_signals(signals.clone());
                ThreadState {
                    cpu,
                    worker,
                    ops: 0,
                    finished: false,
                    killed: false,
                    sched_in: 0,
                }
            })
            .collect();

        let mut contexts: Vec<ContextState> = (0..topo.hw_contexts())
            .map(|_| ContextState {
                queue: VecDeque::new(),
                wall: 0,
            })
            .collect();
        for i in 0..n {
            contexts[topo.place(i)].queue.push_back(i);
        }
        for (c, ctx) in contexts.iter().enumerate() {
            board.set_running(c, !ctx.queue.is_empty());
        }
        // Candidate-clock cache: `cand[c]` mirrors the virtual clock of
        // context `c`'s front thread (`Cycles::MAX` = context idle), so the
        // per-pick scan reads a flat array instead of chasing
        // queue-front -> thread -> clock pointers. Every site that changes a
        // front thread or its clock updates the slot.
        let mut cand: Vec<Cycles> = contexts
            .iter()
            .map(|ctx| {
                ctx.queue
                    .front()
                    .map_or(Cycles::MAX, |&t| threads[t].cpu.now())
            })
            .collect();

        let deadline = self.config.duration;
        let mut steps: u64 = 0;
        let mut truncated = false;
        let mut faults = CompiledFaults::new(&self.config.faults, n, topo.hw_contexts());
        let mut fstats = FaultStats::default();
        // Resume time of each stalled thread (`None` = not stalled), plus a
        // count of `Some` slots so the fault-free scan skips the whole list.
        let mut parked: Vec<Option<Cycles>> = vec![None; n];
        let mut n_parked: usize = 0;

        // A run with no fault plan never kills, stalls, or storms; hoist
        // that fact out of the per-step loop.
        let faults_inert = faults.is_inert();

        'run: loop {
            // Pick the next event with the smallest virtual time: either the
            // running (front-of-queue) thread of some context, or the wakeup
            // of a stalled thread. Ties go to running threads, then to the
            // lowest index — strictly deterministic.
            //
            // `ru_lo`/`ru_hi` bound how long the picked thread provably stays
            // the pick without re-scanning. The scan visits contexts in index
            // order, then parked threads, replacing the best only on a
            // *strictly* smaller time — so a picked context `c` wins again
            // exactly when its clock is strictly below every earlier-index
            // candidate (`ru_lo`) and at-or-below every later-index and
            // parked candidate (`ru_hi`, where ties still go to `c`). While
            // that holds, the quantum-slice loop below keeps stepping it
            // (nothing it does can move another candidate's clock or
            // runnability); otherwise the full deterministic scan re-runs, so
            // the step sequence is identical to the one-scan-per-step
            // scheduler.
            #[derive(Clone, Copy)]
            enum Pick {
                Ctx(usize),
                Unpark(usize),
            }
            let mut ru_lo = Cycles::MAX;
            let mut ru_hi = Cycles::MAX;
            let pick = if let Some(ctrl) = self.config.controller.as_deref() {
                // Controller mode: every runnable thread is a candidate and
                // the controller dictates the interleaving (virtual clocks
                // no longer order the picks).
                let mut cands: Vec<(usize, Pick)> = Vec::new();
                for (c, ctx) in contexts.iter().enumerate() {
                    let Some(&t) = ctx.queue.front() else {
                        continue;
                    };
                    if threads[t].cpu.now() < deadline {
                        cands.push((t, Pick::Ctx(c)));
                    }
                }
                for (t, slot) in parked.iter().enumerate() {
                    if slot.is_some_and(|resume| resume < deadline) {
                        cands.push((t, Pick::Unpark(t)));
                    }
                }
                if cands.is_empty() {
                    break;
                }
                cands.sort_by_key(|&(t, _)| t);
                let ids: Vec<usize> = cands.iter().map(|&(t, _)| t).collect();
                let chosen = ctrl.pick(&ids);
                // Controller mode never batches: every preemption point is
                // the controller's decision, so re-consult it every step.
                ru_lo = 0;
                cands
                    .iter()
                    .find(|&&(t, _)| t == chosen)
                    .unwrap_or_else(|| {
                        panic!("controller picked non-runnable thread {chosen} (runnable: {ids:?})")
                    })
                    .1
            } else {
                // One scan computes the pick *and* the batch bounds. When
                // the running best is dethroned, every candidate seen so far
                // (old best included) sits at an earlier scan position than
                // the new best, so the whole hi-pool folds into `ru_lo`.
                // Idle contexts carry `Cycles::MAX` in the cache, which the
                // deadline filter rejects like any past-deadline clock.
                let mut best: Option<(Pick, Cycles)> = None;
                for (c, &now) in cand.iter().enumerate() {
                    if now >= deadline {
                        continue;
                    }
                    if best.map_or(true, |(_, bt)| now < bt) {
                        if let Some((_, bt)) = best {
                            ru_lo = ru_lo.min(ru_hi).min(bt);
                            ru_hi = Cycles::MAX;
                        }
                        best = Some((Pick::Ctx(c), now));
                    } else {
                        ru_hi = ru_hi.min(now);
                    }
                }
                if n_parked > 0 {
                    for (t, slot) in parked.iter().enumerate() {
                        let Some(resume) = *slot else {
                            continue;
                        };
                        // A stall outlasting the deadline never wakes up:
                        // the thread keeps its publications and its clock
                        // stays at park time.
                        if resume >= deadline {
                            continue;
                        }
                        if best.map_or(true, |(_, bt)| resume < bt) {
                            // The bounds are now stale, but an `Unpark` pick
                            // never batches, so they are also never read.
                            best = Some((Pick::Unpark(t), resume));
                        } else {
                            // Parked threads are scanned after every
                            // context, so a picked context wins ties against
                            // them: non-strict bound.
                            ru_hi = ru_hi.min(resume);
                        }
                    }
                }
                let Some((pick, _)) = best else {
                    break;
                };
                pick
            };

            let c = match pick {
                Pick::Unpark(t) => {
                    let resume = parked[t].take().expect("picked parked thread");
                    n_parked -= 1;
                    let c = topo.place(t);
                    let th = &mut threads[t];
                    // Waking up is a context switch: the clock jumps past the
                    // stall window and transactional schemes abort their open
                    // segment, exactly as after a real preemption.
                    th.cpu
                        .advance_to(resume.saturating_add(costs.context_switch));
                    th.cpu.counters.context_switches += 1;
                    let was_idle = contexts[c].queue.is_empty();
                    contexts[c].queue.push_back(t);
                    if was_idle {
                        th.sched_in = th.cpu.now();
                        board.set_running(c, true);
                        cand[c] = th.cpu.now();
                    }
                    continue;
                }
                Pick::Ctx(c) => c,
            };

            // Quantum-slice batch: step this context's front thread until a
            // scheduling boundary — a fault, the quantum, a storm, finish,
            // the deadline, or its clock crossing the `ru_lo`/`ru_hi`
            // bounds. Each iteration is byte-for-byte the old per-pick
            // body; only the outer candidate re-scan between steps is
            // elided, which is safe because a stepping thread cannot change
            // any *other* candidate's virtual time or runnability.
            let t = *contexts[c].queue.front().expect("picked nonempty queue");
            loop {
                let now = threads[t].cpu.now();
                if !faults_inert && faults.kill_due(t, now) {
                    threads[t].finished = true;
                    threads[t].killed = true;
                    fstats.kills += 1;
                    contexts[c].wall = contexts[c].wall.max(now);
                    retire_front(&mut contexts[c], &mut threads, &costs, &board, &mut cand, c);
                    break;
                }
                if !faults_inert {
                    if let Some(resume) = faults.take_stall(t, now) {
                        fstats.stalls += 1;
                        fstats.stall_cycles += resume - now;
                        parked[t] = Some(resume);
                        n_parked += 1;
                        contexts[c].wall = contexts[c].wall.max(now);
                        retire_front(&mut contexts[c], &mut threads, &costs, &board, &mut cand, c);
                        break;
                    }
                }

                if let Some(limit) = self.config.step_limit {
                    if steps >= limit {
                        truncated = true;
                        break 'run;
                    }
                }
                steps += 1;

                // Signal delivery: pending signals are handed to the victim
                // before its next step, like a kernel running the handler on
                // the way back to user space. Coalesced raises cost one
                // delivery; a parked thread receives on its wake-up step.
                if threads[t].cpu.take_signals() > 0 {
                    let th = &mut threads[t];
                    th.cpu.charge(costs.signal_deliver);
                    th.worker.neutralize(&mut th.cpu);
                }

                let before = threads[t].cpu.now();
                let th = &mut threads[t];
                let outcome = th.worker.step(&mut th.cpu);
                if th.cpu.now() == before {
                    // Forward-progress backstop: a step always consumes time.
                    th.cpu.charge(1);
                }
                match outcome {
                    StepOutcome::OpDone => th.ops += 1,
                    StepOutcome::Finished => th.finished = true,
                    StepOutcome::Progress | StepOutcome::Idle => {}
                }
                contexts[c].wall = threads[t].cpu.now();
                cand[c] = threads[t].cpu.now();

                let done = threads[t].finished || threads[t].cpu.now() >= deadline;
                let quantum_up = contexts[c].queue.len() > 1
                    && threads[t].cpu.now() - threads[t].sched_in >= costs.quantum;
                // An active preemption storm forces a context switch after
                // every step on this context (interrupt-storm model).
                let storm = !done && !faults_inert && faults.storm_active(c, contexts[c].wall);
                if storm {
                    fstats.storm_switches += 1;
                }

                if done {
                    retire_front(&mut contexts[c], &mut threads, &costs, &board, &mut cand, c);
                    break;
                } else if quantum_up || storm {
                    if contexts[c].queue.len() > 1 {
                        contexts[c].queue.rotate_left(1);
                        let &next = contexts[c].queue.front().expect("rotated nonempty queue");
                        let resume = contexts[c].wall + costs.context_switch;
                        threads[next].cpu.advance_to(resume);
                        threads[next].sched_in = threads[next].cpu.now();
                        threads[next].cpu.counters.context_switches += 1;
                        cand[c] = threads[next].cpu.now();
                    } else {
                        // Sole tenant: the storm still evicts and immediately
                        // reschedules it, charging the switch to the thread.
                        let th = &mut threads[t];
                        th.cpu.charge(costs.context_switch);
                        th.cpu.counters.context_switches += 1;
                        th.sched_in = th.cpu.now();
                        contexts[c].wall = th.cpu.now();
                        cand[c] = th.cpu.now();
                    }
                    break;
                }
                // The slice continues only while this thread provably
                // re-wins the pick: strictly ahead of earlier-scanned
                // candidates, at-or-ahead of later-scanned ones.
                let after = threads[t].cpu.now();
                if after >= ru_lo || after > ru_hi {
                    break;
                }
            }
        }

        let mut report_threads = Vec::with_capacity(n);
        let mut workers_out = Vec::with_capacity(n);
        for mut th in threads {
            if !th.killed {
                th.worker.finish(&mut th.cpu);
            }
            report_threads.push(ThreadReport {
                ops: th.ops,
                final_time: th.cpu.now(),
                counters: th.cpu.counters.clone(),
            });
            workers_out.push(th.worker);
        }
        (
            SimReport {
                threads: report_threads,
                duration: deadline,
                truncated,
                faults: fstats,
            },
            workers_out,
        )
    }

    /// Convenience wrapper: builds `n` workers from a factory and runs them.
    pub fn run_with(
        &self,
        n: usize,
        mut factory: impl FnMut(usize) -> Box<dyn Worker>,
    ) -> SimReport {
        let workers = (0..n).map(&mut factory).collect();
        self.run(workers).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worker that completes an op every `per_op` charged cycles.
    struct Clockwork {
        per_op: Cycles,
    }

    impl Worker for Clockwork {
        fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
            cpu.charge(self.per_op);
            StepOutcome::OpDone
        }
    }

    fn config(duration: Cycles) -> SimConfig {
        SimConfig {
            topology: Topology::haswell(),
            costs: CostModel::default(),
            seed: 42,
            duration,
            step_limit: None,
            faults: FaultPlan::default(),
            controller: None,
        }
    }

    /// Controller steering: always run the highest runnable thread id.
    #[derive(Debug)]
    struct HighestFirst;
    impl ScheduleController for HighestFirst {
        fn pick(&self, runnable: &[usize]) -> usize {
            *runnable.last().expect("nonempty candidates")
        }
    }

    #[test]
    fn controller_dictates_the_interleaving() {
        struct Greedy {
            left: u32,
        }
        impl Worker for Greedy {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                cpu.charge(10);
                if self.left == 0 {
                    return StepOutcome::Finished;
                }
                self.left -= 1;
                StepOutcome::OpDone
            }
        }
        let cfg = config(Cycles::MAX / 2).with_controller(Arc::new(HighestFirst));
        let sim = Simulator::new(cfg);
        let (report, _) = sim.run(vec![Greedy { left: 50 }, Greedy { left: 50 }]);
        // Thread 1 ran to completion before thread 0 ever stepped, so its
        // final clock is *earlier* — the opposite of the time-ordered
        // policy, which would interleave them step by step.
        assert_eq!(report.total_ops(), 100);
        assert!(
            report.threads[1].final_time <= report.threads[0].final_time,
            "controller must have run thread 1 first"
        );
    }

    #[test]
    fn controller_runs_are_deterministic() {
        let run = || {
            let cfg = config(100_000).with_controller(Arc::new(HighestFirst));
            Simulator::new(cfg).run_with(4, |_| Box::new(Clockwork { per_op: 777 }))
        };
        let ops = |r: &SimReport| r.threads.iter().map(|t| t.ops).collect::<Vec<_>>();
        assert_eq!(ops(&run()), ops(&run()));
    }

    #[test]
    #[should_panic(expected = "non-runnable thread")]
    fn controller_must_pick_a_runnable_thread() {
        #[derive(Debug)]
        struct Bogus;
        impl ScheduleController for Bogus {
            fn pick(&self, _runnable: &[usize]) -> usize {
                usize::MAX
            }
        }
        let cfg = config(1_000).with_controller(Arc::new(Bogus));
        Simulator::new(cfg).run_with(1, |_| Box::new(Clockwork { per_op: 10 }));
    }

    #[test]
    fn single_thread_throughput_is_exact() {
        let sim = Simulator::new(config(1_000_000));
        let report = sim.run_with(1, |_| Box::new(Clockwork { per_op: 1000 }));
        assert_eq!(report.threads[0].ops, 1000);
        assert!(!report.truncated);
    }

    #[test]
    fn scaling_up_to_physical_contexts() {
        // 8 independent threads on 8 contexts: 8x the single-thread total.
        let sim = Simulator::new(config(1_000_000));
        let r1 = sim.run_with(1, |_| Box::new(Clockwork { per_op: 1000 }));
        let r8 = sim.run_with(8, |_| Box::new(Clockwork { per_op: 1000 }));
        assert_eq!(r8.total_ops(), 8 * r1.total_ops());
    }

    #[test]
    fn oversubscription_time_shares() {
        // 16 threads on 8 contexts cannot do more total work than 8.
        let sim = Simulator::new(config(10_000_000));
        let r8 = sim.run_with(8, |_| Box::new(Clockwork { per_op: 1000 }));
        let r16 = sim.run_with(16, |_| Box::new(Clockwork { per_op: 1000 }));
        assert!(r16.total_ops() <= r8.total_ops());
        // But both co-tenant threads must have run (round-robin fairness).
        let ops: Vec<_> = r16.threads.iter().map(|t| t.ops).collect();
        assert!(ops.iter().all(|&o| o > 0), "starved thread: {ops:?}");
        // And context switches must have been charged.
        assert!(r16.sum_counter(|c| c.context_switches) > 0);
    }

    #[test]
    fn deterministic_runs() {
        let sim = Simulator::new(config(5_000_000));
        let a = sim.run_with(6, |_| Box::new(Clockwork { per_op: 777 }));
        let b = sim.run_with(6, |_| Box::new(Clockwork { per_op: 777 }));
        let ops_a: Vec<_> = a.threads.iter().map(|t| t.ops).collect();
        let ops_b: Vec<_> = b.threads.iter().map(|t| t.ops).collect();
        assert_eq!(ops_a, ops_b);
    }

    #[test]
    fn finished_workers_stop() {
        struct OneShot {
            left: u32,
        }
        impl Worker for OneShot {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                cpu.charge(10);
                if self.left == 0 {
                    return StepOutcome::Finished;
                }
                self.left -= 1;
                StepOutcome::OpDone
            }
        }
        let sim = Simulator::new(config(Cycles::MAX / 2));
        let report = sim.run_with(3, |_| Box::new(OneShot { left: 5 }));
        assert_eq!(report.total_ops(), 15);
    }

    #[test]
    fn step_limit_truncates() {
        let mut cfg = config(Cycles::MAX / 2);
        cfg.step_limit = Some(100);
        let sim = Simulator::new(cfg);
        let report = sim.run_with(2, |_| Box::new(Clockwork { per_op: 1 }));
        assert!(report.truncated);
    }

    #[test]
    fn zero_charge_steps_still_make_progress() {
        struct Lazy;
        impl Worker for Lazy {
            fn step(&mut self, _cpu: &mut Cpu) -> StepOutcome {
                StepOutcome::Idle
            }
        }
        let sim = Simulator::new(config(1_000));
        // Must terminate: scheduler charges 1 cycle for idle steps.
        let report = sim.run_with(1, |_| Box::new(Lazy));
        assert_eq!(report.total_ops(), 0);
    }

    #[test]
    fn ops_per_second_matches_hand_math() {
        let sim = Simulator::new(config(CYCLES_PER_SECOND / 100)); // 10 ms
        let report = sim.run_with(1, |_| Box::new(Clockwork { per_op: 20_000 }));
        let expect = report.total_ops() as f64 * 100.0;
        assert!((report.ops_per_second() - expect).abs() < 1e-6);
    }

    #[test]
    fn raised_signals_reach_the_victim_before_its_next_step() {
        use std::cell::RefCell;
        use std::rc::Rc;
        type Log = Rc<RefCell<Vec<&'static str>>>;

        struct Sender {
            log: Log,
            sent: bool,
        }
        impl Worker for Sender {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                cpu.charge(1000);
                if self.sent {
                    return StepOutcome::Finished;
                }
                self.sent = true;
                self.log.borrow_mut().push("raise");
                cpu.raise_signal(1);
                StepOutcome::Progress
            }
        }

        struct Victim {
            log: Log,
        }
        impl Worker for Victim {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                cpu.charge(1000);
                self.log.borrow_mut().push("step");
                StepOutcome::OpDone
            }
            fn neutralize(&mut self, _cpu: &mut Cpu) {
                self.log.borrow_mut().push("neutralize");
            }
        }

        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let sim = Simulator::new(config(10_000));
        let (_, _) = sim.run(vec![
            Box::new(Sender {
                log: log.clone(),
                sent: false,
            }) as Box<dyn Worker>,
            Box::new(Victim { log: log.clone() }),
        ]);

        let log = log.borrow();
        let raises = log.iter().filter(|&&e| e == "raise").count();
        let deliveries = log.iter().filter(|&&e| e == "neutralize").count();
        assert_eq!(raises, 1);
        assert_eq!(deliveries, 1, "one raise, one delivery: {log:?}");
        let raise_at = log.iter().position(|&e| e == "raise").unwrap();
        let deliver_at = log.iter().position(|&e| e == "neutralize").unwrap();
        assert!(
            deliver_at > raise_at,
            "delivery cannot precede the raise: {log:?}"
        );
        assert!(
            !log[raise_at + 1..deliver_at].contains(&"step"),
            "the victim stepped between raise and delivery: {log:?}"
        );
    }

    #[test]
    fn coalesced_signals_cost_one_delivery() {
        struct Spammer {
            left: u32,
        }
        impl Worker for Spammer {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                cpu.charge(10);
                if self.left == 0 {
                    return StepOutcome::Finished;
                }
                self.left -= 1;
                cpu.raise_signal(1);
                StepOutcome::Progress
            }
        }
        struct Counter {
            hits: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl Worker for Counter {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                // Run slowly so several raises land between two steps.
                cpu.charge(100);
                StepOutcome::OpDone
            }
            fn neutralize(&mut self, _cpu: &mut Cpu) {
                self.hits.set(self.hits.get() + 1);
            }
        }
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let sim = Simulator::new(config(5_000));
        let (_, _) = sim.run(vec![
            Box::new(Spammer { left: 20 }) as Box<dyn Worker>,
            Box::new(Counter { hits: hits.clone() }),
        ]);
        let h = hits.get();
        assert!(h >= 1, "at least one delivery must have happened");
        assert!(h < 20, "back-to-back raises must coalesce (got {h})");
    }

    #[test]
    fn stall_freezes_one_thread_and_spares_the_rest() {
        let mut cfg = config(1_000_000);
        // Freeze thread 0 for 90% of the run, starting almost immediately.
        cfg.faults = FaultPlan::new().stall(0, 10_000, 900_000);
        let sim = Simulator::new(cfg);
        let faulted = sim.run_with(4, |_| Box::new(Clockwork { per_op: 1000 }));
        let clean =
            Simulator::new(config(1_000_000)).run_with(4, |_| Box::new(Clockwork { per_op: 1000 }));

        assert_eq!(faulted.faults.stalls, 1);
        assert_eq!(faulted.faults.stall_cycles, 900_000);
        assert_eq!(faulted.faults.kills, 0);
        // The victim lost roughly the stall window...
        assert!(
            faulted.threads[0].ops < clean.threads[0].ops / 5,
            "victim did {} of {} ops",
            faulted.threads[0].ops,
            clean.threads[0].ops
        );
        // ...but did resume and make some progress after the window.
        assert!(faulted.threads[0].ops > 0, "victim never resumed");
        // Unrelated threads are unaffected (distinct hardware contexts).
        for i in 1..4 {
            assert_eq!(faulted.threads[i].ops, clean.threads[i].ops);
        }
        // Resuming charged a context switch (transactional schemes key
        // preemption detection off this counter).
        assert!(faulted.threads[0].counters.context_switches >= 1);
    }

    #[test]
    fn stall_past_the_deadline_never_wakes() {
        let mut cfg = config(1_000_000);
        cfg.faults = FaultPlan::new().stall(2, 500_000, 10_000_000);
        let sim = Simulator::new(cfg);
        let report = sim.run_with(4, |_| Box::new(Clockwork { per_op: 1000 }));
        // The victim stopped at the stall point; its clock stays parked.
        assert!(report.threads[2].ops < 520);
        assert!(report.threads[2].final_time < 520_000);
        assert_eq!(report.faults.stalls, 1);
    }

    #[test]
    fn stalled_thread_cedes_its_context_to_a_cotenant() {
        // 16 threads on 8 contexts: thread 0 and its co-tenant share one
        // context; stalling thread 0 should *speed up* the co-tenant.
        let mut cfg = config(10_000_000);
        cfg.faults = FaultPlan::new().stall(0, 0, 9_000_000);
        let faulted = Simulator::new(cfg).run_with(16, |_| Box::new(Clockwork { per_op: 1000 }));
        let clean = Simulator::new(config(10_000_000))
            .run_with(16, |_| Box::new(Clockwork { per_op: 1000 }));
        let mate = (0..16)
            .find(|&i| i != 0 && Topology::haswell().place(i) == Topology::haswell().place(0))
            .expect("oversubscribed context has a co-tenant");
        assert!(
            faulted.threads[mate].ops > clean.threads[mate].ops,
            "co-tenant {} did {} <= {} ops despite a free context",
            mate,
            faulted.threads[mate].ops,
            clean.threads[mate].ops
        );
    }

    #[test]
    fn kill_retires_a_thread_without_running_finish() {
        struct Flagging {
            finished: std::rc::Rc<std::cell::Cell<bool>>,
        }
        impl Worker for Flagging {
            fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
                cpu.charge(1000);
                StepOutcome::OpDone
            }
            fn finish(&mut self, _cpu: &mut Cpu) {
                self.finished.set(true);
            }
        }
        let flags: Vec<_> = (0..2)
            .map(|_| std::rc::Rc::new(std::cell::Cell::new(false)))
            .collect();
        let mut cfg = config(1_000_000);
        cfg.faults = FaultPlan::new().kill(1, 200_000);
        let sim = Simulator::new(cfg);
        let workers: Vec<_> = flags
            .iter()
            .map(|f| Flagging {
                finished: f.clone(),
            })
            .collect();
        let (report, _) = sim.run(workers);
        assert_eq!(report.faults.kills, 1);
        assert!(flags[0].get(), "surviving thread must run finish");
        assert!(!flags[1].get(), "killed thread must not run finish");
        assert!(report.threads[1].ops < report.threads[0].ops / 2);
        assert!(report.threads[1].ops > 0, "victim ran before the kill");
    }

    #[test]
    fn storm_forces_context_switches() {
        let mut cfg = config(1_000_000);
        cfg.faults = FaultPlan::new().storm(0, 100_000, 200_000);
        let report = Simulator::new(cfg).run_with(1, |_| Box::new(Clockwork { per_op: 1000 }));
        let clean =
            Simulator::new(config(1_000_000)).run_with(1, |_| Box::new(Clockwork { per_op: 1000 }));
        assert!(report.faults.storm_switches > 0);
        assert_eq!(
            report.threads[0].counters.context_switches,
            report.faults.storm_switches
        );
        // Switch charges eat throughput during the window.
        assert!(report.threads[0].ops < clean.threads[0].ops);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let plan = FaultPlan::new()
            .stall(1, 50_000, 200_000)
            .storm(0, 100_000, 100_000)
            .kill(3, 700_000);
        let run = || {
            let mut cfg = config(1_000_000);
            cfg.faults = plan.clone();
            Simulator::new(cfg).run_with(6, |_| Box::new(Clockwork { per_op: 777 }))
        };
        let (a, b) = (run(), run());
        let fp = |r: &SimReport| {
            (
                r.faults,
                r.threads.iter().map(|t| t.ops).collect::<Vec<_>>(),
                r.threads.iter().map(|t| t.final_time).collect::<Vec<_>>(),
            )
        };
        assert_eq!(fp(&a), fp(&b));
    }
}
