//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seed-independent *schedule* of fault events the
//! scheduler consults before every step. Because the simulator is a
//! deterministic function of `(seed, plan)`, fault runs reproduce exactly:
//! the same plan on the same seed yields byte-identical metrics snapshots.
//!
//! Three event kinds cover the delay/crash spectrum the reclamation
//! literature cares about (see `docs/FAULTS.md`):
//!
//! - [`FaultEvent::Stall`] freezes one thread mid-operation for a window of
//!   virtual time. The thread stays *registered* — its published stacks,
//!   epochs, anchors, and hazard slots remain visible, so reclamation scans
//!   must still honour them — but it accrues no virtual time and executes
//!   nothing until the window ends. This is the "preempted reader" that
//!   makes epoch-based reclamation hoard garbage without bound.
//! - [`FaultEvent::PreemptionStorm`] forces a context switch after every
//!   step on one hardware context for a window of virtual time, modeling an
//!   interrupt storm. Hardware transactions abort on every context switch,
//!   so transactional schemes see a burst of `preempted` aborts.
//! - [`FaultEvent::Kill`] permanently retires a thread at a point in
//!   virtual time, as an OS kill would: the worker is never stepped again
//!   and its [`crate::Worker::finish`] hook is *not* called (a crashed
//!   thread does not run its teardown).
//!
//! Event times are *trigger thresholds*: the scheduler applies an event the
//! first time it would step the target at or after `at_cycle` (a thread
//! parked behind a co-tenant notices its stall only when it is next
//! scheduled, exactly like a signal delivered on kernel entry).

use crate::Cycles;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Freeze `thread` for `for_cycles` once its clock reaches `at_cycle`.
    ///
    /// The thread keeps every shared-memory publication it has made (it is
    /// still "registered" from the reclamation schemes' point of view) but
    /// is removed from its run queue until the window ends; co-tenants of
    /// its hardware context keep running. Resuming charges one context
    /// switch, so a transactional thread aborts its open segment on wakeup.
    Stall {
        /// Target thread id.
        thread: usize,
        /// Virtual time at which the stall takes effect.
        at_cycle: Cycles,
        /// Stall length in virtual cycles (measured from the moment the
        /// stall is applied).
        for_cycles: Cycles,
    },
    /// Force a context switch after every step on hardware context `ctx`
    /// while its wall clock is inside `[at_cycle, at_cycle + for_cycles)`.
    PreemptionStorm {
        /// Target hardware context.
        ctx: usize,
        /// Virtual time at which the storm starts.
        at_cycle: Cycles,
        /// Storm length in virtual cycles.
        for_cycles: Cycles,
    },
    /// Permanently retire `thread` once its clock reaches `at_cycle`.
    Kill {
        /// Target thread id.
        thread: usize,
        /// Virtual time at which the kill takes effect.
        at_cycle: Cycles,
    },
}

/// A deterministic schedule of fault events (empty by default).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a [`FaultEvent::Stall`] (builder style).
    pub fn stall(mut self, thread: usize, at_cycle: Cycles, for_cycles: Cycles) -> Self {
        self.events.push(FaultEvent::Stall {
            thread,
            at_cycle,
            for_cycles,
        });
        self
    }

    /// Adds a [`FaultEvent::PreemptionStorm`] (builder style).
    pub fn storm(mut self, ctx: usize, at_cycle: Cycles, for_cycles: Cycles) -> Self {
        self.events.push(FaultEvent::PreemptionStorm {
            ctx,
            at_cycle,
            for_cycles,
        });
        self
    }

    /// Adds a [`FaultEvent::Kill`] (builder style).
    pub fn kill(mut self, thread: usize, at_cycle: Cycles) -> Self {
        self.events.push(FaultEvent::Kill { thread, at_cycle });
        self
    }

    /// Appends one event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// What the scheduler actually applied from a [`FaultPlan`] during one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stalls that took effect.
    pub stalls: u64,
    /// Total virtual cycles threads spent stalled.
    pub stall_cycles: Cycles,
    /// Kills that took effect.
    pub kills: u64,
    /// Context switches forced by preemption storms.
    pub storm_switches: u64,
}

/// Per-run view of a plan, indexed for O(1) consultation per step.
#[derive(Debug)]
pub(crate) struct CompiledFaults {
    /// Per-thread `(at, for)` stall windows, sorted by trigger time.
    stalls: Vec<Vec<(Cycles, Cycles)>>,
    /// Per-thread cursor into `stalls`.
    next_stall: Vec<usize>,
    /// Per-thread earliest kill time.
    kill_at: Vec<Option<Cycles>>,
    /// Per-context `(start, end)` storm windows, sorted by start.
    storms: Vec<Vec<(Cycles, Cycles)>>,
    /// Per-context cursor into `storms` (windows fully in the past are
    /// skipped).
    next_storm: Vec<usize>,
}

impl CompiledFaults {
    /// Indexes `plan` for `threads` thread slots and `contexts` hardware
    /// contexts. Events naming out-of-range targets are ignored (a plan can
    /// be reused across runs of different widths).
    pub(crate) fn new(plan: &FaultPlan, threads: usize, contexts: usize) -> Self {
        let mut stalls = vec![Vec::new(); threads];
        let mut kill_at: Vec<Option<Cycles>> = vec![None; threads];
        let mut storms = vec![Vec::new(); contexts];
        for event in plan.events() {
            match *event {
                FaultEvent::Stall {
                    thread,
                    at_cycle,
                    for_cycles,
                } => {
                    if thread < threads && for_cycles > 0 {
                        stalls[thread].push((at_cycle, for_cycles));
                    }
                }
                FaultEvent::PreemptionStorm {
                    ctx,
                    at_cycle,
                    for_cycles,
                } => {
                    if ctx < contexts && for_cycles > 0 {
                        storms[ctx].push((at_cycle, at_cycle.saturating_add(for_cycles)));
                    }
                }
                FaultEvent::Kill { thread, at_cycle } => {
                    if thread < threads {
                        let at = kill_at[thread].map_or(at_cycle, |k| k.min(at_cycle));
                        kill_at[thread] = Some(at);
                    }
                }
            }
        }
        for s in &mut stalls {
            s.sort_unstable();
        }
        for s in &mut storms {
            s.sort_unstable();
        }
        Self {
            next_stall: vec![0; stalls.len()],
            next_storm: vec![0; storms.len()],
            stalls,
            kill_at,
            storms,
        }
    }

    /// Whether this compiled plan can never fire: no stalls, kills, or
    /// storms survived indexing. The scheduler hoists this to skip the
    /// per-step fault probes entirely on fault-free runs (the common case).
    pub(crate) fn is_inert(&self) -> bool {
        self.stalls.iter().all(|s| s.is_empty())
            && self.kill_at.iter().all(|k| k.is_none())
            && self.storms.iter().all(|s| s.is_empty())
    }

    /// Whether `thread` must be killed at time `now`.
    pub(crate) fn kill_due(&self, thread: usize, now: Cycles) -> bool {
        self.kill_at[thread].is_some_and(|at| now >= at)
    }

    /// If a stall for `thread` is due at `now`, consumes it and returns the
    /// resume time.
    pub(crate) fn take_stall(&mut self, thread: usize, now: Cycles) -> Option<Cycles> {
        let cursor = self.next_stall[thread];
        let &(at, for_cycles) = self.stalls[thread].get(cursor)?;
        if now < at {
            return None;
        }
        self.next_stall[thread] = cursor + 1;
        // The stall runs `for_cycles` from the moment it is applied (the
        // thread could not have been frozen before the scheduler noticed).
        Some(now.max(at).saturating_add(for_cycles))
    }

    /// Whether a preemption storm is active on `ctx` at time `now`.
    pub(crate) fn storm_active(&mut self, ctx: usize, now: Cycles) -> bool {
        let windows = &self.storms[ctx];
        let mut cursor = self.next_storm[ctx];
        while cursor < windows.len() && windows[cursor].1 <= now {
            cursor += 1;
        }
        self.next_storm[ctx] = cursor;
        windows.get(cursor).is_some_and(|&(start, _)| now >= start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let plan = FaultPlan::new()
            .stall(1, 100, 50)
            .storm(0, 10, 20)
            .kill(2, 400);
        assert_eq!(plan.events().len(), 3);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn stalls_trigger_once_in_time_order() {
        let plan = FaultPlan::new().stall(0, 200, 10).stall(0, 100, 5);
        let mut c = CompiledFaults::new(&plan, 1, 8);
        assert_eq!(c.take_stall(0, 50), None, "not due yet");
        assert_eq!(c.take_stall(0, 150), Some(155), "earliest window first");
        assert_eq!(c.take_stall(0, 150), None, "second not due yet");
        assert_eq!(c.take_stall(0, 200), Some(210));
        assert_eq!(c.take_stall(0, 10_000), None, "plan exhausted");
    }

    #[test]
    fn kills_pick_the_earliest_time() {
        let plan = FaultPlan::new().kill(0, 500).kill(0, 300);
        let c = CompiledFaults::new(&plan, 1, 8);
        assert!(!c.kill_due(0, 299));
        assert!(c.kill_due(0, 300));
    }

    #[test]
    fn storm_windows_bound_activity() {
        let plan = FaultPlan::new().storm(2, 100, 50).storm(2, 300, 10);
        let mut c = CompiledFaults::new(&plan, 1, 8);
        assert!(!c.storm_active(2, 99));
        assert!(c.storm_active(2, 100));
        assert!(c.storm_active(2, 149));
        assert!(!c.storm_active(2, 150), "window is half-open");
        assert!(c.storm_active(2, 305));
        assert!(!c.storm_active(2, 310));
        assert!(!c.storm_active(3, 305), "other contexts untouched");
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        let plan = FaultPlan::new().stall(9, 0, 10).kill(9, 0).storm(99, 0, 10);
        let mut c = CompiledFaults::new(&plan, 2, 8);
        assert_eq!(c.take_stall(0, 100), None);
        assert!(!c.kill_due(1, 100));
        assert!(!c.storm_active(0, 100));
    }
}
