//! Small deterministic PRNG for simulation hot paths.
//!
//! The simulator must be bit-for-bit reproducible from a seed and must not
//! pull a heavyweight dependency into every memory access, so it carries its
//! own PCG-XSH-RR 32 generator (O'Neill, 2014). Benchmark workloads that do
//! not sit on the hot path use the `rand` crate instead.

/// A PCG-XSH-RR 32-bit pseudo-random generator with 64-bit state.
///
/// # Examples
///
/// ```
/// use st_machine::Pcg32;
///
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed, with the default stream.
    pub fn new(seed: u64) -> Self {
        Self::new_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator from a seed on a specific stream.
    ///
    /// Distinct streams yield independent sequences even for equal seeds;
    /// the simulator gives every simulated thread its own stream.
    pub fn new_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method on 64 bits.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(x) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::new(7);
        let mut b = Pcg32::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "distinct seeds should diverge, {same} collisions");
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::new_stream(9, 1);
        let mut b = Pcg32::new_stream(9, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Pcg32::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn below_hits_every_residue() {
        let mut rng = Pcg32::new(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Pcg32::new(5);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_statistics() {
        let mut rng = Pcg32::new(6);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
