//! Deterministic simulated multicore machine.
//!
//! The StackTrack paper evaluates on an 8-way Intel Haswell (4 cores, 2
//! hyperthreads each) with best-effort HTM. Neither that HTM nor a real
//! multicore is available to this reproduction, so every experiment runs on a
//! *virtual* machine instead: simulated threads are deterministic state
//! machines stepped by a discrete-event scheduler, and every memory/HTM
//! event charges *virtual cycles* from a [`CostModel`]. Reported throughput
//! is committed operations per virtual second.
//!
//! The model regenerates the three hardware mechanisms the paper's results
//! hinge on:
//!
//! 1. **Parallelism** up to `cores * smt_per_core` hardware contexts.
//! 2. **SMT co-tenancy**: two contexts of one core share an L1 budget; the
//!    HTM layer queries [`Cpu::smt_pressure`] to shrink transaction capacity
//!    (the paper's capacity-abort explosion at 5-8 threads).
//! 3. **Preemption**: with more threads than hardware contexts, threads
//!    time-share a context in round-robin quanta with a context-switch cost
//!    (the paper's epoch-reclamation collapse at 9-16 threads).
//!
//! Everything is deterministic given [`SimConfig::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod fault;
pub mod rng;
pub mod sched;
pub mod topology;

pub use cost::CostModel;
pub use cpu::{Cpu, EventCounters, SignalBoard};
pub use fault::{FaultEvent, FaultPlan, FaultStats};
pub use rng::Pcg32;
pub use sched::{
    ScheduleController, SimConfig, SimReport, Simulator, StepOutcome, ThreadReport, Worker,
};
pub use topology::{HwContext, Topology};

/// Virtual time, in CPU cycles of the simulated machine.
pub type Cycles = u64;

/// Cycles per simulated second (a 2 GHz part; only ratios matter).
pub const CYCLES_PER_SECOND: Cycles = 2_000_000_000;
