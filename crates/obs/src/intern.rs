//! Interned metric ids and flat scratch registries.
//!
//! [`MetricsRegistry`] keys every operation by string through a `BTreeMap`,
//! which is the right shape for snapshots (sorted, diffable) but the wrong
//! shape for a recording path: every `add`/`record` pays a string compare
//! walk, and building a key dynamically costs an allocation. This module
//! splits the two concerns:
//!
//! - [`MetricSchema`] interns names once, at registration, into dense
//!   [`MetricId`]s. Interning is the only place a name is ever resolved.
//! - [`ScratchRegistry`] is a flat `Vec` indexed by [`MetricId`] — recording
//!   is an array index, no hashing, no string compares, no allocation
//!   (after the first touch of a histogram slot). One scratch per thread,
//!   merged element-wise at report time.
//! - [`ScratchRegistry::merge_into`] resolves ids back to names exactly
//!   once per report and feeds the ordinary [`MetricsRegistry`], so the
//!   JSON snapshot schema and key set are byte-identical to direct
//!   string-keyed recording (a property the unit tests pin down).
//!
//! Merging scratches is element-wise over ids, so the merged result — and
//! therefore the serialized snapshot — does not depend on merge order.

use crate::hist::LogHistogram;
use crate::registry::{Metric, MetricsRegistry};

/// A dense handle for an interned metric name.
///
/// Valid only with the [`MetricSchema`] that produced it; schemas hand out
/// ids in registration order starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u32);

impl MetricId {
    /// The id's index into schema/scratch storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An intern table from metric name to [`MetricId`].
///
/// Built once at registration time (setup, not the hot loop); lookups on
/// the recording path should never happen — hold on to the returned ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSchema {
    names: Vec<String>,
}

impl MetricSchema {
    /// An empty schema.
    pub fn new() -> MetricSchema {
        MetricSchema::default()
    }

    /// Interns `name`, returning its id; re-interning an existing name
    /// returns the same id. Registration-time only — the scan is linear
    /// because schemas hold a few dozen names, once.
    pub fn intern(&mut self, name: &str) -> MetricId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return MetricId(i as u32);
        }
        let id = MetricId(self.names.len() as u32);
        self.names.push(String::from(name)); // alloc-gate: allow — one-time registration.
        id
    }

    /// The id of an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<MetricId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| MetricId(i as u32))
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// If `id` did not come from this schema.
    pub fn name(&self, id: MetricId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A flat, id-indexed registry for hot-path recording.
///
/// Mirrors the [`MetricsRegistry`] API (counter/histogram slots, same
/// panics on type confusion) but indexes by [`MetricId`]. Use one per
/// thread and [`ScratchRegistry::merge_into`] a shared string-keyed
/// registry at report time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScratchRegistry {
    slots: Vec<Option<Metric>>,
}

impl ScratchRegistry {
    /// An empty scratch sized for `schema` (slots grow on demand anyway,
    /// so a schema that keeps interning stays compatible).
    pub fn for_schema(schema: &MetricSchema) -> ScratchRegistry {
        ScratchRegistry {
            slots: vec![None; schema.len()],
        }
    }

    fn slot(&mut self, id: MetricId) -> &mut Option<Metric> {
        if id.index() >= self.slots.len() {
            self.slots.resize(id.index() + 1, None);
        }
        &mut self.slots[id.index()]
    }

    /// Adds `n` to the counter `id`, creating it at zero first.
    ///
    /// # Panics
    /// If `id` already holds a histogram.
    pub fn add(&mut self, id: MetricId, n: u64) {
        match self.slot(id).get_or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            Metric::Histogram(_) => panic!("metric id {id:?} is a histogram, not a counter"),
        }
    }

    /// Sets the counter `id` to exactly `n` (gauge semantics).
    pub fn set(&mut self, id: MetricId, n: u64) {
        *self.slot(id) = Some(Metric::Counter(n));
    }

    /// Records one sample into the histogram `id`.
    pub fn record(&mut self, id: MetricId, value: u64) {
        self.record_n(id, value, 1);
    }

    /// Records `n` identical samples into the histogram `id`.
    ///
    /// # Panics
    /// If `id` already holds a counter.
    pub fn record_n(&mut self, id: MetricId, value: u64, n: u64) {
        match self
            .slot(id)
            .get_or_insert_with(|| Metric::Histogram(LogHistogram::new()))
        {
            Metric::Histogram(h) => h.record_n(value, n),
            Metric::Counter(_) => panic!("metric id {id:?} is a counter, not a histogram"),
        }
    }

    /// Merges an existing histogram into the histogram `id`.
    pub fn record_hist(&mut self, id: MetricId, hist: &LogHistogram) {
        match self
            .slot(id)
            .get_or_insert_with(|| Metric::Histogram(LogHistogram::new()))
        {
            Metric::Histogram(h) => h.merge(hist),
            Metric::Counter(_) => panic!("metric id {id:?} is a counter, not a histogram"),
        }
    }

    /// The counter at `id`, or 0 if untouched.
    pub fn counter(&self, id: MetricId) -> u64 {
        match self.slots.get(id.index()) {
            Some(Some(Metric::Counter(c))) => *c,
            _ => 0,
        }
    }

    /// The histogram at `id`, if one was recorded.
    pub fn histogram(&self, id: MetricId) -> Option<&LogHistogram> {
        match self.slots.get(id.index()) {
            Some(Some(Metric::Histogram(h))) => Some(h),
            _ => None,
        }
    }

    /// Element-wise merge of another scratch: counters sum, histograms
    /// merge. Slot-indexed, so merging a set of scratches in any order
    /// produces the same result (the merge-order determinism the parallel
    /// report path relies on).
    ///
    /// # Panics
    /// If a slot holds a counter on one side and a histogram on the other.
    pub fn merge(&mut self, other: &ScratchRegistry) {
        for (i, slot) in other.slots.iter().enumerate() {
            let Some(metric) = slot else { continue };
            let id = MetricId(i as u32);
            match metric {
                Metric::Counter(n) => self.add(id, *n),
                Metric::Histogram(h) => self.record_hist(id, h),
            }
        }
    }

    /// Resolves every touched slot back to its name — once, here, not per
    /// record — and merges into a string-keyed registry. The result is
    /// indistinguishable from having recorded through `reg` directly.
    ///
    /// # Panics
    /// If a slot's id was not interned in `schema`, or a key collides with
    /// a different metric type already in `reg`.
    pub fn merge_into(&self, schema: &MetricSchema, reg: &mut MetricsRegistry) {
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(metric) = slot else { continue };
            let name = schema.name(MetricId(i as u32));
            match metric {
                Metric::Counter(n) => reg.add(name, *n),
                Metric::Histogram(h) => reg.record_hist(name, h),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut schema = MetricSchema::new();
        let a = schema.intern("st.ops");
        let b = schema.intern("st.scans");
        let a2 = schema.intern("st.ops");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.name(a), "st.ops");
        assert_eq!(schema.lookup("st.scans"), Some(b));
        assert_eq!(schema.lookup("missing"), None);
    }

    /// The tentpole contract: recording through interned ids then resolving
    /// at report time yields the *same keys and same JSON output* as the
    /// string-keyed registry fed directly.
    #[test]
    fn id_and_string_paths_serialize_identically() {
        let mut schema = MetricSchema::new();
        let ops = schema.intern("st.ops");
        let scans = schema.intern("st.scans");
        let seg = schema.intern("st.segment_length");
        let gauge = schema.intern("heap.live_words");

        // Interned path: per-thread scratch, resolved once at report time.
        let mut scratch = ScratchRegistry::for_schema(&schema);
        scratch.add(ops, 41);
        scratch.add(ops, 1);
        scratch.add(scans, 7);
        scratch.record(seg, 17);
        scratch.record_n(seg, 3, 2);
        scratch.set(gauge, 123);
        let mut via_ids = MetricsRegistry::new();
        scratch.merge_into(&schema, &mut via_ids);

        // String path: the exact same recording, keyed directly.
        let mut via_strings = MetricsRegistry::new();
        via_strings.add("st.ops", 41);
        via_strings.add("st.ops", 1);
        via_strings.add("st.scans", 7);
        via_strings.record("st.segment_length", 17);
        via_strings.record_n("st.segment_length", 3, 2);
        via_strings.set("heap.live_words", 123);

        assert_eq!(via_ids, via_strings);
        assert_eq!(
            via_ids.to_json().to_string(),
            via_strings.to_json().to_string(),
            "snapshot schema must be byte-identical across recording paths"
        );
    }

    /// Merging thread-local scratches in any order yields the same merged
    /// state and the same serialized snapshot.
    #[test]
    fn scratch_merge_is_order_independent() {
        let mut schema = MetricSchema::new();
        let ops = schema.intern("st.ops");
        let lat = schema.intern("st.free_latency_cycles");

        let make = |ops_n: u64, samples: &[u64]| {
            let mut s = ScratchRegistry::for_schema(&schema);
            s.add(ops, ops_n);
            for &v in samples {
                s.record(lat, v);
            }
            s
        };
        let threads = [make(3, &[10, 900]), make(5, &[2]), make(0, &[7, 7, 4096])];

        // Merge in ascending and descending thread order.
        let mut fwd = ScratchRegistry::for_schema(&schema);
        for t in &threads {
            fwd.merge(t);
        }
        let mut rev = ScratchRegistry::for_schema(&schema);
        for t in threads.iter().rev() {
            rev.merge(t);
        }
        assert_eq!(fwd, rev);

        let (mut reg_fwd, mut reg_rev) = (MetricsRegistry::new(), MetricsRegistry::new());
        fwd.merge_into(&schema, &mut reg_fwd);
        rev.merge_into(&schema, &mut reg_rev);
        assert_eq!(
            reg_fwd.to_json().to_string(),
            reg_rev.to_json().to_string(),
            "report-time snapshot must not depend on merge order"
        );
        assert_eq!(reg_fwd.counter("st.ops"), 8);
        assert_eq!(
            reg_fwd.histogram("st.free_latency_cycles").unwrap().count(),
            6
        );
    }

    #[test]
    fn scratch_mirrors_registry_accessors() {
        let mut schema = MetricSchema::new();
        let c = schema.intern("c");
        let h = schema.intern("h");
        let mut s = ScratchRegistry::for_schema(&schema);
        assert_eq!(s.counter(c), 0);
        assert!(s.histogram(h).is_none());
        s.add(c, 2);
        s.set(c, 9);
        s.record(h, 31);
        assert_eq!(s.counter(c), 9);
        assert_eq!(s.histogram(h).unwrap().count(), 1);
    }

    #[test]
    fn scratch_grows_for_late_interned_ids() {
        let mut schema = MetricSchema::new();
        let early = schema.intern("early");
        let mut s = ScratchRegistry::for_schema(&schema);
        let late = schema.intern("late");
        s.add(early, 1);
        s.add(late, 2);
        assert_eq!(s.counter(late), 2);
    }

    #[test]
    #[should_panic(expected = "is a histogram")]
    fn add_on_histogram_slot_panics() {
        let mut schema = MetricSchema::new();
        let id = schema.intern("x");
        let mut s = ScratchRegistry::for_schema(&schema);
        s.record(id, 1);
        s.add(id, 1);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn record_on_counter_slot_panics() {
        let mut schema = MetricSchema::new();
        let id = schema.intern("x");
        let mut s = ScratchRegistry::for_schema(&schema);
        s.add(id, 1);
        s.record(id, 1);
    }
}
