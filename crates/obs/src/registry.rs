//! The [`MetricsRegistry`]: an ordered, string-keyed map of typed metrics.
//!
//! Each key holds either a monotonic counter or a [`LogHistogram`]. Keys are
//! dotted paths (`"st.aborts.conflict"`, `"scheme.epoch.retired"`); the
//! registry itself imposes no namespace, but the conventions are documented
//! in `docs/METRICS.md`. Per-thread registries merge element-wise into a
//! per-run registry, which serializes into the versioned snapshot the bench
//! harness writes to `results/*.metrics.json`.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;
use crate::json::{Json, JsonError};

/// One named metric: a counter or a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A monotonic `u64` counter.
    Counter(u64),
    /// A log-scale histogram of samples.
    Histogram(LogHistogram),
}

/// An ordered map from metric name to [`Metric`].
///
/// Sorted key order (via `BTreeMap`) makes snapshots diffable and table
/// generation deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter named `key`, creating it at zero first.
    ///
    /// Re-recording an existing key allocates nothing; only a key's first
    /// touch copies the name into the map.
    ///
    /// # Panics
    /// If `key` already names a histogram.
    pub fn add(&mut self, key: &str, n: u64) {
        match self.metrics.get_mut(key) {
            Some(Metric::Counter(c)) => *c += n,
            Some(Metric::Histogram(_)) => {
                panic!("metric '{key}' is a histogram, not a counter")
            }
            None => {
                self.insert_owned(key, Metric::Counter(n));
            }
        }
    }

    /// Sets the counter named `key` to exactly `n` (for gauges sampled once
    /// per run, e.g. outstanding garbage at teardown).
    pub fn set(&mut self, key: &str, n: u64) {
        match self.metrics.get_mut(key) {
            Some(m) => *m = Metric::Counter(n),
            None => self.insert_owned(key, Metric::Counter(n)),
        }
    }

    /// Records one sample into the histogram named `key`, creating it empty
    /// first.
    ///
    /// # Panics
    /// If `key` already names a counter.
    pub fn record(&mut self, key: &str, value: u64) {
        self.record_n(key, value, 1);
    }

    /// Records `n` identical samples into the histogram named `key`.
    pub fn record_n(&mut self, key: &str, value: u64, n: u64) {
        match self.metrics.get_mut(key) {
            Some(Metric::Histogram(h)) => h.record_n(value, n),
            Some(Metric::Counter(_)) => {
                panic!("metric '{key}' is a counter, not a histogram")
            }
            None => {
                let mut h = LogHistogram::new();
                h.record_n(value, n);
                self.insert_owned(key, Metric::Histogram(h));
            }
        }
    }

    /// Merges an existing histogram into the one named `key`.
    pub fn record_hist(&mut self, key: &str, hist: &LogHistogram) {
        match self.metrics.get_mut(key) {
            Some(Metric::Histogram(h)) => h.merge(hist),
            Some(Metric::Counter(_)) => {
                panic!("metric '{key}' is a counter, not a histogram")
            }
            None => {
                let mut h = LogHistogram::new();
                h.merge(hist);
                self.insert_owned(key, Metric::Histogram(h));
            }
        }
    }

    /// The cold half of every record path: a key's *first* touch copies
    /// the name into the map. Everything hotter goes through `get_mut`
    /// above, or skips strings entirely via [`crate::ScratchRegistry`].
    #[cold]
    fn insert_owned(&mut self, key: &str, metric: Metric) {
        self.metrics.insert(String::from(key), metric); // alloc-gate: allow — one-time key registration.
    }

    /// The counter named `key`, or 0 if absent.
    pub fn counter(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The histogram named `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&LogHistogram> {
        match self.metrics.get(key) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates over `(name, metric)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merges `other` into `self`: counters sum, histograms merge.
    ///
    /// # Panics
    /// If a key names a counter on one side and a histogram on the other.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, metric) in &other.metrics {
            match metric {
                Metric::Counter(n) => self.add(key, *n),
                Metric::Histogram(h) => self.record_hist(key, h),
            }
        }
    }

    /// Serializes to the snapshot schema (see `docs/METRICS.md`).
    ///
    /// Counters appear as bare numbers, histograms as objects with a
    /// `"count"` field — the consumer distinguishes them by shape.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (key, metric) in &self.metrics {
            match metric {
                Metric::Counter(n) => obj.set(key, *n),
                Metric::Histogram(h) => obj.set(key, h.to_json()),
            };
        }
        obj
    }

    /// Deserializes a registry written by [`MetricsRegistry::to_json`].
    pub fn from_json(json: &Json) -> Result<MetricsRegistry, JsonError> {
        let bad = |msg| JsonError { at: 0, msg };
        let fields = json.as_obj().ok_or(bad("registry is not an object"))?;
        let mut reg = MetricsRegistry::new();
        for (key, value) in fields {
            let metric = match value {
                Json::Obj(_) => Metric::Histogram(LogHistogram::from_json(value)?),
                _ => Metric::Counter(
                    value
                        .as_u64()
                        .ok_or(bad("counter value is not an unsigned integer"))?,
                ),
            };
            reg.metrics.insert(key.clone(), metric);
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        reg.add("a", 1);
        reg.add("a", 2);
        assert_eq!(reg.counter("a"), 3);
        assert_eq!(reg.counter("missing"), 0);
        reg.set("a", 10);
        assert_eq!(reg.counter("a"), 10);
    }

    #[test]
    fn histograms_accumulate() {
        let mut reg = MetricsRegistry::new();
        reg.record("h", 4);
        reg.record_n("h", 9, 3);
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 31);
        assert!(reg.histogram("a").is_none());
    }

    #[test]
    #[should_panic(expected = "is a histogram")]
    fn counter_add_on_histogram_panics() {
        let mut reg = MetricsRegistry::new();
        reg.record("x", 1);
        reg.add("x", 1);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn record_on_counter_panics() {
        let mut reg = MetricsRegistry::new();
        reg.add("x", 1);
        reg.record("x", 1);
    }

    #[test]
    fn merge_sums_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("ops", 3);
        a.record("len", 17);
        let mut b = MetricsRegistry::new();
        b.add("ops", 4);
        b.add("only_b", 1);
        b.record("len", 2);
        a.merge(&b);
        assert_eq!(a.counter("ops"), 7);
        assert_eq!(a.counter("only_b"), 1);
        let h = a.histogram("len").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.max(), Some(17));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = MetricsRegistry::new();
        a.add("ops", 5);
        a.record("len", 9);
        let before = a.clone();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a, before);
        let mut e = MetricsRegistry::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut reg = MetricsRegistry::new();
        reg.add("scheme.epoch.retired", 1_000_000);
        reg.add("st.aborts.conflict", u64::MAX); // exact u64 fidelity
        reg.record("st.segment_length", 17);
        reg.record("st.segment_length", 0);
        reg.record("st.scan_depth", 4096);
        let text = reg.to_json().to_string();
        let back = MetricsRegistry::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn serialized_keys_are_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.add("zzz", 1);
        reg.add("aaa", 1);
        let text = reg.to_json().to_string();
        assert!(text.find("aaa").unwrap() < text.find("zzz").unwrap());
    }

    #[test]
    fn from_json_rejects_bad_shapes() {
        assert!(MetricsRegistry::from_json(&Json::Arr(vec![])).is_err());
        assert!(MetricsRegistry::from_json(&Json::parse("{\"k\": -1}").unwrap()).is_err());
        assert!(MetricsRegistry::from_json(&Json::parse("{\"k\": {}}").unwrap()).is_err());
    }
}
