//! Canonical names of the `audit.*` counters.
//!
//! The heap-ledger audit harness (`st-bench audit`, see `docs/AUDIT.md`)
//! writes one schema-v2 metrics snapshot per soak, with one run per
//! structure × scheme combination. These constants are the complete
//! `audit.*` vocabulary; `st-bench check-metrics` validates snapshots
//! against it, so additions here must be mirrored in `docs/METRICS.md`.

/// Soak episodes executed for this run's combination.
pub const EPISODES: &str = "audit.episodes";

/// Retire events the heap ledger observed across all episodes.
pub const RETIRES: &str = "audit.retires";

/// Free events the heap ledger observed across all episodes.
pub const FREES: &str = "audit.frees";

/// Total oracle findings (sum of the `audit.violations.*` counters).
pub const VIOLATIONS: &str = "audit.violations";

/// Double-retire findings (one block retired twice without a free).
pub const V_DOUBLE_RETIRE: &str = "audit.violations.double_retire";

/// Double-free findings (one block freed twice without a reallocation).
pub const V_DOUBLE_FREE: &str = "audit.violations.double_free";

/// Free-before-retire findings (a published block freed while live).
pub const V_FREE_BEFORE_RETIRE: &str = "audit.violations.free_before_retire";

/// Leak-at-teardown findings (retired, never freed, clean teardown).
pub const V_LEAK: &str = "audit.violations.leak";

/// Use-after-free findings from the heap's UAF oracle.
pub const V_UAF: &str = "audit.violations.uaf";

/// Differential findings: the recorded history has no linearization
/// against the structure's sequential specification.
pub const V_DIFFERENTIAL: &str = "audit.violations.differential";

/// Episodes that panicked (e.g. a poison dereference).
pub const V_PANIC: &str = "audit.violations.panic";

/// Every violation counter, in reporting order.
pub const VIOLATION_COUNTERS: [&str; 7] = [
    V_DOUBLE_RETIRE,
    V_DOUBLE_FREE,
    V_FREE_BEFORE_RETIRE,
    V_LEAK,
    V_UAF,
    V_DIFFERENTIAL,
    V_PANIC,
];
