//! `st-obs`: the unified observability layer of the StackTrack reproduction.
//!
//! The paper's evaluation lives or dies on explaining *why* segments abort
//! (Figure 3) and *where* reclamation time goes (the scan table). Counters
//! for those questions used to be scattered across `simhtm::stats`,
//! `stacktrack::stats`, and ad-hoc per-scheme fields; this crate gives them
//! one schema:
//!
//! - [`MetricsRegistry`] — an ordered, string-keyed map of typed metrics
//!   (monotonic counters and log-scale histograms) with element-wise
//!   [`MetricsRegistry::merge`] for per-thread → per-run aggregation.
//! - [`LogHistogram`] — power-of-two-bucket histograms for skewed
//!   distributions: segment lengths in basic blocks, scan depths in words,
//!   retire-to-free latency in virtual cycles.
//! - [`AbortCause`] — the canonical abort taxonomy every layer reports
//!   against (conflict, capacity, explicit poison, spurious, scheduler
//!   preemption), with [`CauseCounts`] as the fixed-size counter block.
//! - [`Json`] — a dependency-free JSON value with writer and parser, so
//!   snapshots round-trip without `serde` (the build must work offline).
//!
//! Every metrics snapshot is versioned with [`SCHEMA_VERSION`]; the schema
//! itself is documented in `docs/METRICS.md` at the workspace root.
//!
//! # Example
//!
//! ```
//! use st_obs::{Json, MetricsRegistry};
//!
//! let mut a = MetricsRegistry::new();
//! a.add("st.ops", 3);
//! a.record("st.segment_length", 17);
//!
//! let mut b = MetricsRegistry::new();
//! b.add("st.ops", 4);
//! b.record("st.segment_length", 2);
//! a.merge(&b);
//!
//! assert_eq!(a.counter("st.ops"), 7);
//! let json = a.to_json().to_string();
//! let back = MetricsRegistry::from_json(&Json::parse(&json).unwrap()).unwrap();
//! assert_eq!(back.counter("st.ops"), 7);
//! assert_eq!(back.histogram("st.segment_length").unwrap().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod audit;
pub mod cause;
pub mod hist;
pub mod intern;
pub mod json;
pub mod registry;

pub use cause::{AbortCause, CauseCounts};
pub use hist::LogHistogram;
pub use intern::{MetricId, MetricSchema, ScratchRegistry};
pub use json::{Json, JsonError};
pub use registry::{Metric, MetricsRegistry};

/// Version stamped into every serialized metrics snapshot.
///
/// Bump when a key is renamed, a unit changes, or the snapshot envelope
/// gains/loses required fields; consumers (`tools/update_experiments.py`,
/// external dashboards) key their parsing off this number. History:
/// v1 — initial envelope; v2 — runs carry a required `per_thread` array
/// (thread, ops, busy_cycles, garbage per simulated thread).
pub const SCHEMA_VERSION: u64 = 2;
