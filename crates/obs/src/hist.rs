//! Log-scale histograms for skewed simulator distributions.
//!
//! Segment lengths, scan depths, and retire-to-free latencies all span
//! several orders of magnitude, so linear buckets are useless. A
//! [`LogHistogram`] keeps one bucket per power of two (65 buckets cover the
//! whole `u64` range), plus exact `count`/`sum`/`min`/`max` so means are not
//! distorted by bucketing. Merge is element-wise, making per-thread
//! histograms cheap to aggregate into a per-run view.

use crate::json::{Json, JsonError};

/// Number of buckets: one for zero plus one per power of two up to 2^63.
pub const BUCKETS: usize = 65;

/// A histogram with power-of-two buckets and exact summary statistics.
///
/// Bucket 0 holds the value `0`; bucket `k` (for `k >= 1`) holds values `v`
/// with `2^(k-1) <= v < 2^k`, i.e. `k = 64 - v.leading_zeros()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// An approximate quantile (`q` in `[0, 1]`), or `None` if empty.
    ///
    /// Returns the *upper bound* of the bucket containing the `q`-th sample
    /// (clamped to the observed `max`), which over-reports by at most 2x —
    /// fine for the tail summaries in EXPERIMENTS.md.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Adds every sample of `other` into `self` (element-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Serializes to the snapshot schema (see `docs/METRICS.md`).
    ///
    /// Buckets are written sparsely as `[index, count]` pairs so that empty
    /// histograms stay small.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("count", self.count);
        obj.set("sum", self.sum);
        match (self.min(), self.max()) {
            (Some(min), Some(max)) => {
                obj.set("min", min);
                obj.set("max", max);
            }
            _ => {
                obj.set("min", Json::Null);
                obj.set("max", Json::Null);
            }
        }
        let mut sparse = Vec::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                sparse.push(Json::Arr(vec![Json::U64(i as u64), Json::U64(n)]));
            }
        }
        obj.set("buckets", Json::Arr(sparse));
        obj
    }

    /// Deserializes a histogram written by [`LogHistogram::to_json`].
    pub fn from_json(json: &Json) -> Result<LogHistogram, JsonError> {
        let bad = |msg| JsonError { at: 0, msg };
        let mut h = LogHistogram::new();
        h.count = json
            .get("count")
            .and_then(Json::as_u64)
            .ok_or(bad("histogram missing 'count'"))?;
        h.sum = json
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or(bad("histogram missing 'sum'"))?;
        if h.count > 0 {
            h.min = json
                .get("min")
                .and_then(Json::as_u64)
                .ok_or(bad("histogram missing 'min'"))?;
            h.max = json
                .get("max")
                .and_then(Json::as_u64)
                .ok_or(bad("histogram missing 'max'"))?;
        }
        let sparse = json
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or(bad("histogram missing 'buckets'"))?;
        for pair in sparse {
            let pair = pair.as_arr().ok_or(bad("bucket entry is not a pair"))?;
            let (Some(i), Some(n)) = (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) else {
                return Err(bad("bucket entry is not [index, count]"));
            };
            let i = usize::try_from(i).ok().filter(|&i| i < BUCKETS);
            let i = i.ok_or(bad("bucket index out of range"))?;
            h.buckets[i] = n;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn summary_statistics_are_exact() {
        let mut h = LogHistogram::new();
        for v in [5, 0, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.mean(), Some(28.0));
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_is_element_wise() {
        let mut a = LogHistogram::new();
        a.record(3);
        a.record(300);
        let mut b = LogHistogram::new();
        b.record(1);
        b.record_n(3, 2);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 310);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(300));
        assert_eq!(a.buckets()[2], 3); // the three 3s
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LogHistogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
        let mut e = LogHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 15
        }
        h.record(1000); // bucket 10, upper bound 1023, clamped to max
        assert_eq!(h.quantile(0.5), Some(15));
        assert_eq!(h.quantile(1.0), Some(1000));
        // q=0 lands in the first occupied bucket; its upper bound is 15.
        assert_eq!(h.quantile(0.0), Some(15));
    }

    #[test]
    fn json_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 17, 17, 9000, u64::MAX] {
            h.record(v);
        }
        let json = h.to_json();
        let back = LogHistogram::from_json(&json).unwrap();
        assert_eq!(back, h);
        // And through text.
        let text = json.to_string();
        let back2 = LogHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back2, h);
    }

    #[test]
    fn empty_json_round_trip() {
        let h = LogHistogram::new();
        let back = LogHistogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(LogHistogram::from_json(&Json::obj()).is_err());
        let mut bad = LogHistogram::new().to_json();
        bad.set("buckets", Json::Arr(vec![Json::U64(3)]));
        assert!(LogHistogram::from_json(&bad).is_err());
    }
}
