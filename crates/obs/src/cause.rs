//! The canonical abort-cause taxonomy.
//!
//! Every layer that can kill a transactional segment reports through this
//! enum so the bench harness can answer the paper's central question — *why*
//! do segments abort — uniformly across schemes:
//!
//! - `simhtm::engine` maps its `AbortCode` onto [`AbortCause`] when a
//!   hardware-level abort fires (read/write conflict, capacity overflow,
//!   spurious abort).
//! - `stacktrack::thread` adds the software-level causes: explicit poison
//!   (a scanner invalidated the split counter) and scheduler preemption
//!   (the OS descheduled the thread mid-segment, which on real HTM always
//!   aborts the transaction).
//!
//! [`CauseCounts`] is the fixed-size counter block used by per-thread stats;
//! it merges element-wise and reports into a [`MetricsRegistry`]
//! (`crate::MetricsRegistry`) under `<prefix>.aborts.<cause>` keys.

use crate::intern::{MetricId, MetricSchema, ScratchRegistry};
use crate::registry::MetricsRegistry;

/// Why a transactional segment (or HTM transaction) aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Read/write or write/write conflict with a concurrent transaction.
    Conflict,
    /// The read or write set overflowed the simulated HTM capacity.
    Capacity,
    /// Explicitly poisoned: a scanner bumped the split counter (StackTrack's
    /// consistency protocol) or user code called `tx_abort`.
    Explicit,
    /// Spurious abort injected by the simulator (models cache-line evictions
    /// and other unexplained HTM failures on real hardware).
    Spurious,
    /// The scheduler preempted the thread while a segment was live; real
    /// HTM aborts on any context switch.
    Preempted,
}

impl AbortCause {
    /// All causes, in serialization order.
    pub const ALL: [AbortCause; 5] = [
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::Explicit,
        AbortCause::Spurious,
        AbortCause::Preempted,
    ];

    /// The stable snake_case key used in metric names and JSON snapshots.
    pub fn key(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Explicit => "explicit",
            AbortCause::Spurious => "spurious",
            AbortCause::Preempted => "preempted",
        }
    }

    fn index(self) -> usize {
        match self {
            AbortCause::Conflict => 0,
            AbortCause::Capacity => 1,
            AbortCause::Explicit => 2,
            AbortCause::Spurious => 3,
            AbortCause::Preempted => 4,
        }
    }
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// A fixed-size block of per-cause abort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts([u64; 5]);

impl CauseCounts {
    /// All-zero counters.
    pub const fn new() -> CauseCounts {
        CauseCounts([0; 5])
    }

    /// Increments the counter for `cause`.
    pub fn add(&mut self, cause: AbortCause) {
        self.0[cause.index()] += 1;
    }

    /// Adds `n` to the counter for `cause`.
    pub fn add_n(&mut self, cause: AbortCause, n: u64) {
        self.0[cause.index()] += n;
    }

    /// The count for one cause.
    pub fn get(&self, cause: AbortCause) -> u64 {
        self.0[cause.index()]
    }

    /// Total aborts across all causes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Element-wise sum of two counter blocks.
    pub fn merged(&self, other: &CauseCounts) -> CauseCounts {
        let mut out = *self;
        for (a, b) in out.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
        out
    }

    /// Interns the full `<prefix>.aborts.<cause>` key set, in serialization
    /// order. This is the only place these keys are ever formatted; do it
    /// once at registration and report through
    /// [`CauseCounts::report_interned`].
    pub fn intern_keys(schema: &mut MetricSchema, prefix: &str) -> [MetricId; 5] {
        AbortCause::ALL.map(|cause| schema.intern(&format!("{prefix}.aborts.{cause}")))
    }

    /// Reports each cause through pre-interned ids (no key formatting on
    /// the report path). `ids` must come from [`CauseCounts::intern_keys`].
    ///
    /// Zero counters are reported too, so every snapshot carries the full
    /// taxonomy and downstream tables never have missing columns.
    pub fn report_interned(&self, scratch: &mut ScratchRegistry, ids: &[MetricId; 5]) {
        for (id, cause) in ids.iter().zip(AbortCause::ALL) {
            scratch.add(*id, self.get(cause));
        }
    }

    /// Reports each cause as `<prefix>.aborts.<cause>` into `reg` — the
    /// string-keyed convenience form of [`CauseCounts::report_interned`]
    /// (same keys, same values; the equivalence is unit-tested).
    pub fn report(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let mut schema = MetricSchema::new();
        let ids = CauseCounts::intern_keys(&mut schema, prefix);
        let mut scratch = ScratchRegistry::for_schema(&schema);
        self.report_interned(&mut scratch, &ids);
        scratch.merge_into(&schema, reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let keys: Vec<_> = AbortCause::ALL.iter().map(|c| c.key()).collect();
        assert_eq!(
            keys,
            ["conflict", "capacity", "explicit", "spurious", "preempted"]
        );
    }

    #[test]
    fn add_get_total() {
        let mut c = CauseCounts::new();
        c.add(AbortCause::Conflict);
        c.add(AbortCause::Conflict);
        c.add_n(AbortCause::Preempted, 5);
        assert_eq!(c.get(AbortCause::Conflict), 2);
        assert_eq!(c.get(AbortCause::Preempted), 5);
        assert_eq!(c.get(AbortCause::Capacity), 0);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn merged_is_element_wise() {
        let mut a = CauseCounts::new();
        a.add(AbortCause::Capacity);
        let mut b = CauseCounts::new();
        b.add(AbortCause::Capacity);
        b.add(AbortCause::Explicit);
        let m = a.merged(&b);
        assert_eq!(m.get(AbortCause::Capacity), 2);
        assert_eq!(m.get(AbortCause::Explicit), 1);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn interned_report_matches_string_report() {
        let mut c = CauseCounts::new();
        c.add_n(AbortCause::Conflict, 3);
        c.add(AbortCause::Preempted);

        let mut via_strings = MetricsRegistry::new();
        c.report(&mut via_strings, "htm");

        let mut schema = MetricSchema::new();
        let ids = CauseCounts::intern_keys(&mut schema, "htm");
        let mut scratch = ScratchRegistry::for_schema(&schema);
        c.report_interned(&mut scratch, &ids);
        let mut via_ids = MetricsRegistry::new();
        scratch.merge_into(&schema, &mut via_ids);

        assert_eq!(
            via_ids.to_json().to_string(),
            via_strings.to_json().to_string()
        );
    }

    #[test]
    fn report_emits_full_taxonomy() {
        let mut c = CauseCounts::new();
        c.add(AbortCause::Spurious);
        let mut reg = MetricsRegistry::new();
        c.report(&mut reg, "st");
        assert_eq!(reg.counter("st.aborts.spurious"), 1);
        // Zero causes are present, not absent.
        assert_eq!(reg.counter("st.aborts.conflict"), 0);
        assert!(reg.to_json().to_string().contains("st.aborts.preempted"));
    }
}
