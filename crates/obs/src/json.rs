//! A dependency-free JSON value: writer and recursive-descent parser.
//!
//! The workspace must build with no network access, so `serde` is not an
//! option; this module is the small subset the metrics pipeline needs.
//! Unsigned integers round-trip exactly (they are kept as `u64`, not
//! squeezed through `f64`), object key order is preserved, and floats are
//! written with Rust's shortest round-trip representation.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (exact; counters live here).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number (written via `{:?}`, shortest round trip).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write and parse.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object (build it up with [`Json::set`]).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts or replaces `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => fields.push((key.to_string(), value.into())),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer (accepts exact `I64`/`F64` too).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, in insertion order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let mut buf = itoa_buffer();
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the same bits; `{}` would drop the ".0".
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with two-space indentation (human-facing snapshot files).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Serializes to a pretty string with a trailing newline (file bodies).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing characters after value",
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// 20 digits fit any u64.
fn itoa_buffer() -> [u8; 20] {
    [0; 20]
}

fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parser.
// ----------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, msg: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, msg })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError {
            at: *pos,
            msg: "unexpected end of input",
        });
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_keyword(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(JsonError {
            at: *pos,
            msg: "unexpected character",
        }),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            msg: "invalid keyword",
        })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    let start = *pos;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError {
                at: *pos,
                msg: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError {
                        at: *pos,
                        msg: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            msg: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *pos,
                            msg: "non-ASCII \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for metric names;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos - 1,
                            msg: "invalid escape",
                        })
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so this slice
                // boundary is always valid at a char boundary).
                let s = &bytes[*pos..];
                let text = std::str::from_utf8(s).map_err(|_| JsonError {
                    at: start,
                    msg: "invalid UTF-8",
                })?;
                let c = text.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(v) = stripped.parse::<u64>() {
                if v == 0 {
                    return Ok(Json::U64(0));
                }
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
        at: start,
        msg: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::U64(u64::MAX), "18446744073709551615"),
            (Json::I64(-7), "-7"),
            (Json::Str("a\"b\\c\nd".into()), "\"a\\\"b\\\\c\\nd\""),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_their_marker() {
        let v = Json::F64(1.0);
        assert_eq!(v.to_string(), "1.0");
        assert_eq!(Json::parse("1.0").unwrap(), v);
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::F64(2500.0));
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn u64_precision_is_exact() {
        // 2^53 + 1 is not representable in f64; the parser must keep it.
        let v = (1u64 << 53) + 1;
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(v));
    }

    #[test]
    fn objects_preserve_order_and_round_trip() {
        let mut obj = Json::obj();
        obj.set("z", 1u64).set("a", 2u64).set("m", "hi");
        let s = obj.to_string();
        assert_eq!(s, "{\"z\":1,\"a\":2,\"m\":\"hi\"}");
        assert_eq!(Json::parse(&s).unwrap(), obj);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Json::obj();
        obj.set("k", 1u64);
        obj.set("k", 2u64);
        assert_eq!(obj.get("k").and_then(Json::as_u64), Some(2));
        assert_eq!(obj.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn arrays_and_nesting() {
        let text = r#" { "runs": [ {"n": 1}, {"n": 2} ], "ok": true } "#;
        let v = Json::parse(text).unwrap();
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("n").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut obj = Json::obj();
        obj.set("a", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        obj.set("b", Json::obj().set("c", 3u64).clone());
        let pretty = obj.to_pretty_string();
        assert!(pretty.contains("\n  "));
        assert_eq!(Json::parse(&pretty).unwrap(), obj);
    }

    #[test]
    fn errors_carry_positions() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.at, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }
}
