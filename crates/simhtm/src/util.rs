//! Small open-addressed hash containers for the transaction hot path.
//!
//! A transaction performs a set-insert per read and a map-probe per access;
//! with tens of millions of simulated accesses per benchmark run, the
//! standard library's SipHash containers dominate the profile. These
//! containers use Fibonacci hashing, linear probing, power-of-two capacity,
//! support only the operations transactions need (insert / get / clear),
//! and reuse their storage across segments.

/// A set of `u64` keys (any value, including 0).
///
/// Occupancy lives in a separate bitmap (`live`), not in the slot values:
/// `clear` only wipes the bitmap — one word per 64 slots — so segment reset
/// stays cheap even after a large transaction has grown the table (capacity
/// never shrinks, and with sentinel-in-slot encoding one big scan segment
/// would tax every later reset with a full-capacity memset).
#[derive(Debug)]
pub struct U64Set {
    /// Stored as `key + 1` (keys are word indices or line numbers, far
    /// below `u64::MAX`); meaningful only where the live bit is set, stale
    /// values from previous generations are never read.
    slots: Vec<u64>,
    /// One occupancy bit per slot.
    live: Vec<u64>,
    mask: usize,
    len: usize,
}

#[inline]
fn fib_hash(key: u64) -> u64 {
    key.wrapping_mul(0x9e3779b97f4a7c15)
}

impl U64Set {
    /// Creates a set with capacity for about `cap` keys.
    pub fn with_capacity(cap: usize) -> Self {
        let size = (cap * 2).next_power_of_two().max(16);
        Self {
            slots: vec![0; size],
            live: vec![0; size.div_ceil(64)],
            mask: size - 1,
            len: 0,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all keys, keeping capacity.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.live.fill(0);
            self.len = 0;
        }
    }

    /// Inserts `key`; returns `true` if it was new.
    pub fn insert(&mut self, key: u64) -> bool {
        debug_assert!(key < u64::MAX, "key too large for sentinel encoding");
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let stored = key + 1;
        let mut i = (fib_hash(key) >> 32) as usize & self.mask;
        loop {
            let (w, b) = (i >> 6, 1u64 << (i & 63));
            if self.live[w] & b == 0 {
                self.slots[i] = stored;
                self.live[w] |= b;
                self.len += 1;
                return true;
            }
            if self.slots[i] == stored {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        let stored = key + 1;
        let mut i = (fib_hash(key) >> 32) as usize & self.mask;
        loop {
            if self.live[i >> 6] & (1u64 << (i & 63)) == 0 {
                return false;
            }
            if self.slots[i] == stored {
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Iterates over the keys (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.live[i >> 6] & (1u64 << (i & 63)) != 0)
            .map(|(_, &s)| s - 1)
    }

    fn grow(&mut self) {
        let new_size = self.slots.len() * 2;
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_size]);
        let old_live = std::mem::replace(&mut self.live, vec![0; new_size.div_ceil(64)]);
        self.mask = new_size - 1;
        self.len = 0;
        for (i, s) in old_slots.into_iter().enumerate() {
            if old_live[i >> 6] & (1u64 << (i & 63)) != 0 {
                self.insert(s - 1);
            }
        }
    }
}

/// A map from `u64` keys (any value) to `u32` values.
///
/// Same live-bitmap occupancy scheme as [`U64Set`]: `clear` wipes one word
/// per 64 slots instead of the whole key array.
#[derive(Debug)]
pub struct U64Map {
    keys: Vec<u64>,
    values: Vec<u32>,
    /// One occupancy bit per slot.
    live: Vec<u64>,
    mask: usize,
    len: usize,
}

impl U64Map {
    /// Creates a map with capacity for about `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let size = (cap * 2).next_power_of_two().max(16);
        Self {
            keys: vec![0; size],
            values: vec![0; size],
            live: vec![0; size.div_ceil(64)],
            mask: size - 1,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries, keeping capacity.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.live.fill(0);
            self.len = 0;
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u32> {
        let stored = key + 1;
        let mut i = (fib_hash(key) >> 32) as usize & self.mask;
        loop {
            if self.live[i >> 6] & (1u64 << (i & 63)) == 0 {
                return None;
            }
            if self.keys[i] == stored {
                return Some(self.values[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or overwrites `key -> value`.
    pub fn insert(&mut self, key: u64, value: u32) {
        debug_assert!(key < u64::MAX, "key too large for sentinel encoding");
        if (self.len + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let stored = key + 1;
        let mut i = (fib_hash(key) >> 32) as usize & self.mask;
        loop {
            let (w, b) = (i >> 6, 1u64 << (i & 63));
            if self.live[w] & b == 0 {
                self.keys[i] = stored;
                self.values[i] = value;
                self.live[w] |= b;
                self.len += 1;
                return;
            }
            if self.keys[i] == stored {
                self.values[i] = value;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_size = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_size]);
        let old_values = std::mem::replace(&mut self.values, vec![0; new_size]);
        let old_live = std::mem::replace(&mut self.live, vec![0; new_size.div_ceil(64)]);
        self.mask = new_size - 1;
        self.len = 0;
        for (i, (s, v)) in old_keys.into_iter().zip(old_values).enumerate() {
            if old_live[i >> 6] & (1u64 << (i & 63)) != 0 {
                self.insert(s - 1, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_contains() {
        let mut s = U64Set::with_capacity(4);
        assert!(s.insert(0));
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(0));
        assert!(s.contains(7));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_grows_past_capacity() {
        let mut s = U64Set::with_capacity(2);
        for i in 0..1000u64 {
            assert!(s.insert(i * 3));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u64 {
            assert!(s.contains(i * 3));
            assert!(!s.contains(i * 3 + 1));
        }
    }

    #[test]
    fn set_clear_resets() {
        let mut s = U64Set::with_capacity(8);
        s.insert(5);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5));
        assert!(s.insert(5));
    }

    #[test]
    fn set_iter_yields_all() {
        let mut s = U64Set::with_capacity(8);
        for k in [0u64, 9, 100] {
            s.insert(k);
        }
        let mut got: Vec<u64> = s.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 9, 100]);
    }

    #[test]
    fn map_insert_get_overwrite() {
        let mut m = U64Map::with_capacity(4);
        m.insert(0, 10);
        m.insert(42, 11);
        assert_eq!(m.get(0), Some(10));
        assert_eq!(m.get(42), Some(11));
        assert_eq!(m.get(1), None);
        m.insert(42, 12);
        assert_eq!(m.get(42), Some(12));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn map_grows() {
        let mut m = U64Map::with_capacity(2);
        for i in 0..500u64 {
            m.insert(i, i as u32 + 1);
        }
        for i in 0..500u64 {
            assert_eq!(m.get(i), Some(i as u32 + 1));
        }
    }

    #[test]
    fn map_clear() {
        let mut m = U64Map::with_capacity(4);
        m.insert(3, 9);
        m.clear();
        assert_eq!(m.get(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn set_clear_does_not_resurrect_stale_slots() {
        // Clear only wipes the live bitmap; the slot array keeps stale key
        // bytes. None of them may be visible afterwards, insertion must
        // overwrite them, and repeated fill/clear cycles must stay exact.
        let mut s = U64Set::with_capacity(4);
        for round in 0..3u64 {
            for i in 0..100 {
                assert!(s.insert(round * 1000 + i), "round {round} key {i}");
            }
            for i in 0..100 {
                assert!(s.contains(round * 1000 + i));
            }
            s.clear();
            assert!(s.is_empty());
            for i in 0..100 {
                assert!(!s.contains(round * 1000 + i), "stale key resurfaced");
            }
        }
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn map_clear_does_not_resurrect_stale_entries() {
        let mut m = U64Map::with_capacity(4);
        for round in 0..3u64 {
            for i in 0..100 {
                m.insert(round * 1000 + i, i as u32);
            }
            m.clear();
            assert!(m.is_empty());
            for i in 0..100 {
                assert_eq!(m.get(round * 1000 + i), None, "stale entry resurfaced");
            }
        }
        m.insert(5, 77);
        assert_eq!(m.get(5), Some(77));
    }
}
