//! Transaction descriptor: read set, write buffer, footprint.

use crate::util::{U64Map, U64Set};
use st_simheap::{Addr, Word};

/// An in-flight hardware transaction.
///
/// Created by [`crate::HtmEngine::begin`] (or recycled with
/// [`crate::HtmEngine::begin_reuse`], which keeps the internal buffers) and
/// driven through the engine's `tx_*` methods. After an abort the
/// descriptor is dead until reset; the engine enforces this.
#[derive(Debug)]
pub struct Tx {
    /// Read version: global clock at begin.
    pub(crate) rv: u64,
    /// Distinct stripes read (validated at commit).
    pub(crate) read_stripes: Vec<u32>,
    pub(crate) read_seen: U64Set,
    /// Buffered writes in program order; `write_map` indexes them by word.
    pub(crate) write_map: U64Map,
    pub(crate) writes: Vec<(Addr, u64, Word)>,
    /// Distinct cache lines touched (capacity footprint).
    pub(crate) lines: U64Set,
    /// Memo of the most recently admitted cache line (`u64::MAX` = none):
    /// consecutive same-line accesses skip the `lines` probe entirely.
    pub(crate) last_line: u64,
    /// Commit-time scratch: the distinct write stripes, sorted. Rebuilt by
    /// every writing commit but the backing allocation is recycled across
    /// `reset`, like the other descriptor buffers.
    pub(crate) write_stripes: Vec<u32>,
    /// Set after an abort; the descriptor can no longer be used.
    pub(crate) dead: bool,
}

impl Tx {
    pub(crate) fn new(rv: u64) -> Self {
        Self {
            rv,
            read_stripes: Vec::with_capacity(64),
            read_seen: U64Set::with_capacity(64),
            write_map: U64Map::with_capacity(16),
            writes: Vec::with_capacity(16),
            lines: U64Set::with_capacity(64),
            last_line: u64::MAX,
            write_stripes: Vec::with_capacity(16),
            dead: false,
        }
    }

    /// Resets the descriptor for a fresh transaction, keeping buffers.
    pub(crate) fn reset(&mut self, rv: u64) {
        self.rv = rv;
        self.read_stripes.clear();
        self.read_seen.clear();
        self.write_map.clear();
        self.writes.clear();
        self.lines.clear();
        self.last_line = u64::MAX;
        self.write_stripes.clear();
        self.dead = false;
    }

    /// Number of distinct cache lines in the data set.
    pub fn footprint_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Number of buffered writes.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Number of distinct stripes in the read set.
    pub fn read_set_len(&self) -> usize {
        self.read_stripes.len()
    }

    /// Whether the transaction has performed no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Whether the transaction has aborted and awaits a reset.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub(crate) fn record_read_stripe(&mut self, stripe: u32) {
        if self.read_seen.insert(u64::from(stripe)) {
            self.read_stripes.push(stripe);
        }
    }

    pub(crate) fn buffered(&self, word_idx: u64) -> Option<Word> {
        self.write_map
            .get(word_idx)
            .map(|i| self.writes[i as usize].2)
    }

    pub(crate) fn buffer_write(&mut self, addr: Addr, off: u64, value: Word) {
        let word_idx = addr.index() + off;
        match self.write_map.get(word_idx) {
            Some(i) => self.writes[i as usize].2 = value,
            None => {
                self.write_map.insert(word_idx, self.writes.len() as u32);
                self.writes.push((addr, off, value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_stripes_dedup() {
        let mut tx = Tx::new(0);
        tx.record_read_stripe(4);
        tx.record_read_stripe(4);
        tx.record_read_stripe(9);
        assert_eq!(tx.read_set_len(), 2);
    }

    #[test]
    fn write_buffer_last_write_wins() {
        let mut tx = Tx::new(0);
        let a = Addr::from_index(10);
        tx.buffer_write(a, 1, 5);
        tx.buffer_write(a, 1, 7);
        assert_eq!(tx.buffered(11), Some(7));
        assert_eq!(tx.pending_writes(), 1);
        assert_eq!(tx.buffered(10), None);
    }

    #[test]
    fn read_only_detection() {
        let mut tx = Tx::new(0);
        assert!(tx.is_read_only());
        tx.buffer_write(Addr::from_index(2), 0, 1);
        assert!(!tx.is_read_only());
    }

    #[test]
    fn reset_keeps_buffer_capacity() {
        let mut tx = Tx::new(0);
        // Outgrow every initial capacity so the next reservation is a real
        // reallocation, then check a reset recycles it instead of freeing.
        for i in 0..256u64 {
            tx.record_read_stripe(i as u32);
            tx.buffer_write(Addr::from_index(i * 8), 0, i);
            tx.write_stripes.push(i as u32);
        }
        let writes_cap = tx.writes.capacity();
        let stripes_cap = tx.read_stripes.capacity();
        let commit_cap = tx.write_stripes.capacity();
        assert!(writes_cap >= 256 && stripes_cap >= 256 && commit_cap >= 256);
        tx.reset(1);
        assert_eq!(tx.pending_writes(), 0);
        assert_eq!(tx.read_set_len(), 0);
        assert!(tx.write_stripes.is_empty());
        assert_eq!(tx.writes.capacity(), writes_cap);
        assert_eq!(tx.read_stripes.capacity(), stripes_cap);
        assert_eq!(tx.write_stripes.capacity(), commit_cap);
    }

    #[test]
    fn reset_clears_state() {
        let mut tx = Tx::new(0);
        tx.record_read_stripe(1);
        tx.buffer_write(Addr::from_index(3), 0, 9);
        tx.lines.insert(1);
        tx.dead = true;
        tx.reset(5);
        assert_eq!(tx.rv, 5);
        assert_eq!(tx.read_set_len(), 0);
        assert_eq!(tx.pending_writes(), 0);
        assert_eq!(tx.footprint_lines(), 0);
        assert!(!tx.is_dead());
        assert_eq!(tx.buffered(3), None);
    }
}
