//! The TL2-style best-effort transaction engine.

use crate::abort::{Abort, AbortCode};
use crate::capacity::CapacityModel;
use crate::stats::{HtmStats, HtmThreadStats};
use crate::stripes::StripeTable;
use crate::tx::Tx;
use st_machine::Cpu;
use st_simheap::{Addr, Heap, Word};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct HtmConfig {
    /// Stripes in the version-lock table.
    pub stripes: usize,
    /// Capacity model.
    pub capacity: CapacityModel,
    /// Probability that any single transactional access aborts spuriously
    /// (`AbortCode::Other`) — interrupts, unsupported instructions. The
    /// paper treats these as rare; default 0 keeps unit tests exact.
    pub spurious_abort_per_access: f64,
}

impl Default for HtmConfig {
    fn default() -> Self {
        Self {
            stripes: 1 << 16,
            capacity: CapacityModel::default(),
            spurious_abort_per_access: 0.0,
        }
    }
}

/// The best-effort HTM engine.
///
/// One engine guards one [`Heap`]. Transactions ([`Tx`]) are driven through
/// the `tx_*` methods; non-transactional code interacts with transactional
/// state through [`HtmEngine::nontx_write`] / [`HtmEngine::free_object`],
/// which advance stripe versions and thereby doom every in-flight
/// transaction that read those lines — the property StackTrack's safety
/// argument rests on.
#[derive(Debug)]
pub struct HtmEngine {
    heap: Arc<Heap>,
    stripes: StripeTable,
    clock: AtomicU64,
    config: HtmConfig,
    stats: Vec<HtmThreadStats>,
}

impl HtmEngine {
    /// Creates an engine over `heap` supporting up to `max_threads`
    /// simulated threads.
    pub fn new(heap: Arc<Heap>, config: HtmConfig, max_threads: usize) -> Self {
        Self {
            heap,
            stripes: StripeTable::new(config.stripes),
            clock: AtomicU64::new(0),
            stats: (0..max_threads)
                .map(|_| HtmThreadStats::default())
                .collect(),
            config,
        }
    }

    /// The heap this engine guards.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Snapshot of one thread's transaction statistics.
    pub fn thread_stats(&self, thread_id: usize) -> HtmStats {
        self.stats[thread_id].snapshot()
    }

    /// Clears all per-thread statistics (benchmark warm-up support).
    pub fn reset_stats(&self) {
        for s in &self.stats {
            s.reset();
        }
    }

    /// Sum of all threads' transaction statistics.
    pub fn total_stats(&self) -> HtmStats {
        self.stats
            .iter()
            .map(HtmThreadStats::snapshot)
            .fold(HtmStats::default(), HtmStats::merged)
    }

    // ------------------------------------------------------------------
    // Transactional interface.
    // ------------------------------------------------------------------

    /// Starts a transaction (XBEGIN).
    pub fn begin(&self, cpu: &mut Cpu) -> Tx {
        cpu.charge(cpu.costs.htm_begin);
        cpu.counters.tx_begun += 1;
        self.stats[cpu.thread_id].on_begin();
        Tx::new(self.clock.load(Ordering::Relaxed))
    }

    /// Starts a transaction, recycling a previous descriptor's buffers
    /// (the common path for split segments, which begin thousands of
    /// transactions per operation).
    pub fn begin_reuse(&self, cpu: &mut Cpu, tx: &mut Tx) {
        cpu.charge(cpu.costs.htm_begin);
        cpu.counters.tx_begun += 1;
        self.stats[cpu.thread_id].on_begin();
        tx.reset(self.clock.load(Ordering::Relaxed));
    }

    fn fail(&self, cpu: &mut Cpu, tx: &mut Tx, code: AbortCode) -> Abort {
        debug_assert!(!tx.dead, "aborting a dead transaction");
        tx.dead = true;
        cpu.charge(cpu.costs.htm_abort);
        cpu.counters.tx_aborted += 1;
        cpu.publish_footprint(0);
        self.stats[cpu.thread_id].on_abort(code);
        Abort(code)
    }

    /// Explicitly aborts the transaction (XABORT).
    pub fn tx_abort(&self, cpu: &mut Cpu, tx: &mut Tx) -> Abort {
        self.fail(cpu, tx, AbortCode::Explicit)
    }

    /// Aborts the transaction because the scheduler preempted its thread
    /// mid-flight. Real HTM cannot survive a context switch (the register
    /// checkpoint and speculative cache state are lost); the split engine
    /// calls this when it observes a context switch during a live segment,
    /// so preemption is attributed separately from data conflicts.
    pub fn tx_abort_preempted(&self, cpu: &mut Cpu, tx: &mut Tx) -> Abort {
        self.fail(cpu, tx, AbortCode::Preempted)
    }

    fn admit_line(&self, cpu: &mut Cpu, tx: &mut Tx, line: u64) -> Result<(), Abort> {
        // Consecutive accesses overwhelmingly land on the line just
        // admitted (fields of one node); the memo skips the set probe for
        // those. A memo hit implies the line is already in `lines`, so the
        // capacity check (and its RNG draw) was already skipped before.
        if line == tx.last_line {
            return Ok(());
        }
        if tx.lines.insert(line) {
            let lines = tx.footprint_lines();
            if !self.config.capacity.admits(cpu, lines) {
                return Err(self.fail(cpu, tx, AbortCode::Capacity));
            }
            cpu.publish_footprint(lines);
        }
        tx.last_line = line;
        Ok(())
    }

    fn maybe_spurious(&self, cpu: &mut Cpu, tx: &mut Tx) -> Result<(), Abort> {
        let p = self.config.spurious_abort_per_access;
        if p > 0.0 && cpu.rng.chance(p) {
            return Err(self.fail(cpu, tx, AbortCode::Other));
        }
        Ok(())
    }

    /// Transactional load of `addr + off`.
    ///
    /// Validated eagerly (TL2): the stripe must be unlocked and no newer
    /// than the transaction's read version, and must not change across the
    /// data read — so a transaction never observes an inconsistent snapshot
    /// (opacity), just like cache-coherence-based HTM.
    pub fn tx_read(&self, cpu: &mut Cpu, tx: &mut Tx, addr: Addr, off: u64) -> Result<Word, Abort> {
        debug_assert!(!tx.dead, "read on dead transaction");
        let line = addr.offset(off).line();
        cpu.charge_mem(line);
        cpu.charge(cpu.costs.tx_load);
        cpu.counters.tx_loads += 1;
        self.maybe_spurious(cpu, tx)?;

        let word_idx = addr.index() + off;
        if let Some(v) = tx.buffered(word_idx) {
            return Ok(v);
        }

        let stripe = self.stripes.index_of_line(line);
        let s1 = self.stripes.read(stripe);
        if s1.locked() || s1.version() > tx.rv {
            return Err(self.fail(cpu, tx, AbortCode::Conflict));
        }
        let value = self.heap.peek(addr, off);
        let s2 = self.stripes.read(stripe);
        if s2 != s1 {
            return Err(self.fail(cpu, tx, AbortCode::Conflict));
        }
        // Validated read of a freed block: the transaction began after the
        // free (doomed readers abort above), so this is a real
        // use-after-free when the heap's oracle is armed.
        self.heap.note_speculative_read(cpu.thread_id, addr, off);
        tx.record_read_stripe(stripe);
        self.admit_line(cpu, tx, line)?;
        Ok(value)
    }

    /// Transactional store to `addr + off` (buffered until commit).
    pub fn tx_write(
        &self,
        cpu: &mut Cpu,
        tx: &mut Tx,
        addr: Addr,
        off: u64,
        value: Word,
    ) -> Result<(), Abort> {
        debug_assert!(!tx.dead, "write on dead transaction");
        let line = addr.offset(off).line();
        cpu.charge_mem(line);
        cpu.charge(cpu.costs.tx_store);
        cpu.counters.tx_stores += 1;
        self.maybe_spurious(cpu, tx)?;
        tx.buffer_write(addr, off, value);
        self.admit_line(cpu, tx, line)
    }

    /// Transactional compare-and-swap: reads `addr + off` and, if it equals
    /// `expected`, buffers `new`. Returns `Ok(previous)` on success,
    /// `Err(actual)` on mismatch (outer `Err` is an abort).
    ///
    /// Inside a transaction a CAS needs no hardware atomicity of its own —
    /// the transaction provides it.
    pub fn tx_cas(
        &self,
        cpu: &mut Cpu,
        tx: &mut Tx,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Result<Word, Word>, Abort> {
        let current = self.tx_read(cpu, tx, addr, off)?;
        if current != expected {
            return Ok(Err(current));
        }
        self.tx_write(cpu, tx, addr, off, new)?;
        Ok(Ok(current))
    }

    /// Commits the transaction (XEND).
    ///
    /// On success the descriptor is left dead (reset it with
    /// [`HtmEngine::begin_reuse`] to start the next segment); on failure it
    /// is dead too, with the abort accounted.
    pub fn commit(&self, cpu: &mut Cpu, tx: &mut Tx) -> Result<(), Abort> {
        debug_assert!(!tx.dead, "commit on dead transaction");
        cpu.charge(cpu.costs.htm_commit);

        if tx.is_read_only() {
            // Eagerly validated reads serialize the transaction at its read
            // version; nothing to publish.
            self.finish_commit(cpu, tx);
            return Ok(());
        }

        // Lock the write stripes in sorted order (livelock-free for the
        // real-thread stress tests; in the discrete-event simulator a
        // commit is atomic and these locks are never observed). The stripe
        // scratch lives in the descriptor, so a recycled `Tx` commits
        // without touching the allocator; because locking walks the sorted
        // slice front-to-back, "what we hold" is always a prefix and a
        // separate `locked` list is unnecessary.
        tx.write_stripes.clear();
        let stripes = &self.stripes;
        tx.write_stripes.extend(
            tx.writes
                .iter()
                .map(|&(addr, off, _)| stripes.index_of(addr, off)),
        );
        tx.write_stripes.sort_unstable();
        tx.write_stripes.dedup();

        let mut locked = 0;
        while locked < tx.write_stripes.len() {
            // A blind write to a stripe whose version advanced is still
            // serializable; only a *locked* stripe is a conflict. Writes to
            // lines the transaction also read are covered by read-set
            // validation below.
            let s = tx.write_stripes[locked];
            let seen = self.stripes.read(s);
            if seen.locked() || !self.stripes.try_lock(s, seen) {
                for &l in &tx.write_stripes[..locked] {
                    let v = self.stripes.read(l).version();
                    self.stripes.release(l, v);
                }
                return Err(self.fail(cpu, tx, AbortCode::Conflict));
            }
            locked += 1;
        }

        let wv = self.clock.fetch_add(1, Ordering::Relaxed) + 1;

        // Validate the read set unless nobody committed since we began.
        // Every write stripe is locked at this point, so ownership is a
        // binary search of the full sorted slice.
        if wv != tx.rv + 1 {
            for &s in &tx.read_stripes {
                let v = self.stripes.read(s);
                let own = tx.write_stripes.binary_search(&s).is_ok();
                if (v.locked() && !own) || v.version() > tx.rv {
                    for &l in &tx.write_stripes {
                        let ver = self.stripes.read(l).version();
                        self.stripes.release(l, ver);
                    }
                    return Err(self.fail(cpu, tx, AbortCode::Conflict));
                }
            }
        }

        // Publish the write buffer; these are real stores with real
        // coherence traffic.
        for &(addr, off, value) in &tx.writes {
            self.heap.store(cpu, addr, off, value);
        }
        tx.writes.clear();
        for &s in &tx.write_stripes {
            self.stripes.release(s, wv);
        }
        self.finish_commit(cpu, tx);
        Ok(())
    }

    fn finish_commit(&self, cpu: &mut Cpu, tx: &mut Tx) {
        tx.dead = true;
        cpu.counters.tx_committed += 1;
        cpu.publish_footprint(0);
        self.stats[cpu.thread_id]
            .on_commit(tx.read_stripes.len() as u64, tx.write_map.len() as u64);
    }

    // ------------------------------------------------------------------
    // Non-transactional interface.
    // ------------------------------------------------------------------

    /// Plain load; never conflicts (reads committed state).
    pub fn nontx_read(&self, cpu: &mut Cpu, addr: Addr, off: u64) -> Word {
        self.heap.load(cpu, addr, off)
    }

    /// Non-transactional store that **dooms** every in-flight transaction
    /// holding the line in its read set (advances the stripe version).
    pub fn nontx_write(&self, cpu: &mut Cpu, addr: Addr, off: u64, value: Word) {
        let stripe = self.stripes.index_of(addr, off);
        loop {
            let seen = self.stripes.read(stripe);
            if !seen.locked() && self.stripes.try_lock(stripe, seen) {
                break;
            }
            std::hint::spin_loop();
        }
        self.heap.store(cpu, addr, off, value);
        let wv = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.stripes.release(stripe, wv);
    }

    /// Non-transactional compare-and-swap that dooms transactional readers
    /// of the line on success (the slow path's CAS; see `SLOW_WRITE` in the
    /// paper's Algorithm 5, which funnels writes through the reference-set
    /// protocol and still conflicts with speculative readers).
    pub fn nontx_cas(
        &self,
        cpu: &mut Cpu,
        addr: Addr,
        off: u64,
        expected: Word,
        new: Word,
    ) -> Result<Word, Word> {
        let stripe = self.stripes.index_of(addr, off);
        loop {
            let seen = self.stripes.read(stripe);
            if !seen.locked() && self.stripes.try_lock(stripe, seen) {
                break;
            }
            std::hint::spin_loop();
        }
        let result = self.heap.cas(cpu, addr, off, expected, new);
        if result.is_ok() {
            let wv = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            self.stripes.release(stripe, wv);
        } else {
            let v = self.stripes.read(stripe).version();
            self.stripes.release(stripe, v);
        }
        result
    }

    /// Frees the object based at `addr`: advances the versions of all its
    /// stripes (dooming transactional readers), then poisons and returns
    /// the block to the allocator.
    ///
    /// This is the reclaimer-side primitive behind StackTrack's `FREE`; the
    /// paper's safety argument ("if the node is still accessed inside an
    /// uncommitted transaction, a data conflict will force that transaction
    /// to abort") is exactly this version bump.
    pub fn free_object(&self, cpu: &mut Cpu, addr: Addr) {
        let block = self
            .heap
            .block_len(addr)
            .unwrap_or_else(|| panic!("free_object of unknown address {addr:?}"));
        // One stripe per *line*, not per word: consecutive words share a
        // line, so walking line numbers does 1/8th the hashing. Objects are
        // at most a few lines, so a stack buffer covers every real free;
        // the heap spill only triggers for pathological block sizes. The
        // engine is `&self` across OS threads, so the scratch cannot live
        // in the engine itself.
        let first = addr.line();
        let last = addr.offset(block.saturating_sub(1)).line();
        let n_lines = (last - first + 1) as usize;
        let mut buf = [0u32; 64];
        let mut spill: Vec<u32>;
        let slots: &mut [u32] = if n_lines <= buf.len() {
            &mut buf[..n_lines]
        } else {
            spill = vec![0; n_lines];
            &mut spill
        };
        for (slot, line) in slots.iter_mut().zip(first..=last) {
            *slot = self.stripes.index_of_line(line);
        }
        slots.sort_unstable();
        // Manual dedup-in-place (slices have no `dedup`).
        let mut n = 0;
        for i in 0..slots.len() {
            if n == 0 || slots[i] != slots[n - 1] {
                slots[n] = slots[i];
                n += 1;
            }
        }
        let stripes = &slots[..n];
        for &s in stripes {
            loop {
                let seen = self.stripes.read(s);
                if !seen.locked() && self.stripes.try_lock(s, seen) {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        self.heap.free(cpu, addr);
        let wv = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        for &s in stripes {
            self.stripes.release(s, wv);
        }
    }

    /// Issues a full fence (cost only; ordering is virtual).
    pub fn fence(&self, cpu: &mut Cpu) {
        self.heap.fence(cpu);
    }

    /// Current global version clock (diagnostics).
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_machine::{cpu::ActivityBoard, CostModel, HwContext, Topology};
    use st_simheap::HeapConfig;

    fn setup() -> (Arc<HtmEngine>, Vec<Cpu>) {
        let heap = Arc::new(Heap::new(HeapConfig::small()));
        let engine = Arc::new(HtmEngine::new(heap, HtmConfig::default(), 4));
        let topo = Topology::haswell();
        let board = Arc::new(ActivityBoard::new(topo.hw_contexts()));
        let costs = Arc::new(CostModel::default());
        let cpus = (0..4)
            .map(|i| {
                Cpu::new(
                    i,
                    HwContext::new(&topo, topo.place(i)),
                    costs.clone(),
                    board.clone(),
                    99,
                )
            })
            .collect();
        (engine, cpus)
    }

    #[test]
    fn committed_writes_become_visible() {
        let (e, mut cpus) = setup();
        let c = &mut cpus[0];
        let a = e.heap().alloc(c, 2).unwrap();
        let mut tx = e.begin(c);
        e.tx_write(c, &mut tx, a, 0, 7).unwrap();
        e.tx_write(c, &mut tx, a, 1, 8).unwrap();
        assert_eq!(e.heap().peek(a, 0), 0, "buffered until commit");
        e.commit(c, &mut tx).unwrap();
        assert_eq!(e.heap().peek(a, 0), 7);
        assert_eq!(e.heap().peek(a, 1), 8);
    }

    #[test]
    fn reads_see_own_writes() {
        let (e, mut cpus) = setup();
        let c = &mut cpus[0];
        let a = e.heap().alloc(c, 1).unwrap();
        let mut tx = e.begin(c);
        e.tx_write(c, &mut tx, a, 0, 41).unwrap();
        assert_eq!(e.tx_read(c, &mut tx, a, 0).unwrap(), 41);
        e.commit(c, &mut tx).unwrap();
    }

    #[test]
    fn conflicting_commit_dooms_reader() {
        let (e, mut cpus) = setup();
        let a = {
            let c = &mut cpus[0];
            let a = e.heap().alloc(c, 1).unwrap();
            e.heap().poke(a, 0, 1);
            a
        };
        // Reader starts and reads.
        let mut rtx = {
            let c = &mut cpus[0];
            let mut tx = e.begin(c);
            assert_eq!(e.tx_read(c, &mut tx, a, 0).unwrap(), 1);
            tx
        };
        // Writer commits an update to the same line.
        {
            let c = &mut cpus[1];
            let mut tx = e.begin(c);
            e.tx_write(c, &mut tx, a, 0, 2).unwrap();
            e.commit(c, &mut tx).unwrap();
        }
        // Reader writes something (becomes a write tx) and must fail
        // commit-time validation.
        let c = &mut cpus[0];
        let b = e.heap().alloc(c, 1).unwrap();
        e.tx_write(c, &mut rtx, b, 0, 9).unwrap();
        let err = e.commit(c, &mut rtx).unwrap_err();
        assert_eq!(err.code(), AbortCode::Conflict);
        assert_eq!(e.heap().peek(b, 0), 0, "aborted writes must not leak");
    }

    #[test]
    fn eager_validation_gives_opacity() {
        let (e, mut cpus) = setup();
        let a = {
            let c = &mut cpus[0];
            let a = e.heap().alloc(c, 8).unwrap();
            a
        };
        let mut rtx = {
            let c = &mut cpus[0];
            let mut tx = e.begin(c);
            let _ = e.tx_read(c, &mut tx, a, 0).unwrap();
            tx
        };
        {
            let c = &mut cpus[1];
            e.nontx_write(c, a, 7, 5);
        }
        // Reading any word whose stripe advanced past rv aborts immediately,
        // before the stale mix is observable.
        let c = &mut cpus[0];
        let err = e.tx_read(c, &mut rtx, a, 7).unwrap_err();
        assert_eq!(err.code(), AbortCode::Conflict);
    }

    #[test]
    fn free_object_dooms_transactional_reader() {
        let (e, mut cpus) = setup();
        let a = {
            let c = &mut cpus[0];
            e.heap().alloc(c, 4).unwrap()
        };
        let mut rtx = {
            let c = &mut cpus[1];
            let mut tx = e.begin(c);
            let _ = e.tx_read(c, &mut tx, a, 0).unwrap();
            tx
        };
        {
            let c = &mut cpus[0];
            e.free_object(c, a);
        }
        let c = &mut cpus[1];
        // Writing elsewhere then committing must fail read validation.
        let b = e.heap().alloc(c, 1).unwrap();
        e.tx_write(c, &mut rtx, b, 0, 1).unwrap();
        assert_eq!(
            e.commit(c, &mut rtx).unwrap_err().code(),
            AbortCode::Conflict
        );
        assert!(!e.heap().is_live(a));
    }

    #[test]
    fn capacity_abort_on_budget_overflow() {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::small()
        }));
        let mut config = HtmConfig::default();
        config.capacity.l1_lines = 8;
        config.capacity.evict_at_full = 0.0;
        let e = HtmEngine::new(heap, config, 1);
        let topo = Topology::haswell();
        let mut c = Cpu::new(
            0,
            HwContext::new(&topo, 0),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            5,
        );
        let a = e.heap().alloc(&mut c, 128).unwrap(); // 16 lines
        let mut tx = e.begin(&mut c);
        let mut failed = None;
        for off in (0..128).step_by(8) {
            if let Err(ab) = e.tx_read(&mut c, &mut tx, a, off) {
                failed = Some(ab);
                break;
            }
        }
        assert_eq!(failed.unwrap().code(), AbortCode::Capacity);
    }

    #[test]
    fn explicit_abort_counts() {
        let (e, mut cpus) = setup();
        let c = &mut cpus[0];
        let mut tx = e.begin(c);
        let ab = e.tx_abort(c, &mut tx);
        assert_eq!(ab.code(), AbortCode::Explicit);
        assert_eq!(e.thread_stats(0).aborts_explicit, 1);
    }

    #[test]
    fn cas_semantics_inside_tx() {
        let (e, mut cpus) = setup();
        let c = &mut cpus[0];
        let a = e.heap().alloc(c, 1).unwrap();
        e.heap().poke(a, 0, 10);
        let mut tx = e.begin(c);
        assert_eq!(e.tx_cas(c, &mut tx, a, 0, 10, 11).unwrap(), Ok(10));
        assert_eq!(e.tx_cas(c, &mut tx, a, 0, 10, 12).unwrap(), Err(11));
        e.commit(c, &mut tx).unwrap();
        assert_eq!(e.heap().peek(a, 0), 11);
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let (e, mut cpus) = setup();
        let c = &mut cpus[0];
        let a = e.heap().alloc(c, 1).unwrap();
        for i in 0..3 {
            let mut tx = e.begin(c);
            e.tx_write(c, &mut tx, a, 0, i).unwrap();
            e.commit(c, &mut tx).unwrap();
        }
        let s = e.thread_stats(0);
        assert_eq!(s.begun, 3);
        assert_eq!(s.committed, 3);
        assert_eq!(s.committed_writes, 3);
        assert_eq!(s.total_aborts(), 0);
        assert_eq!(e.total_stats().committed, 3);
    }

    #[test]
    fn spurious_aborts_when_configured() {
        let heap = Arc::new(Heap::new(HeapConfig::small()));
        let e = HtmEngine::new(
            heap,
            HtmConfig {
                spurious_abort_per_access: 1.0,
                ..HtmConfig::default()
            },
            1,
        );
        let topo = Topology::haswell();
        let mut c = Cpu::new(
            0,
            HwContext::new(&topo, 0),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            5,
        );
        let a = e.heap().alloc(&mut c, 1).unwrap();
        let mut tx = e.begin(&mut c);
        assert_eq!(
            e.tx_read(&mut c, &mut tx, a, 0).unwrap_err().code(),
            AbortCode::Other
        );
    }

    #[test]
    fn nontx_write_is_immediately_visible() {
        let (e, mut cpus) = setup();
        let c = &mut cpus[0];
        let a = e.heap().alloc(c, 1).unwrap();
        e.nontx_write(c, a, 0, 123);
        assert_eq!(e.nontx_read(c, a, 0), 123);
    }

    #[test]
    fn read_only_tx_commits_despite_later_writes() {
        let (e, mut cpus) = setup();
        let a = {
            let c = &mut cpus[0];
            e.heap().alloc(c, 1).unwrap()
        };
        let mut rtx = {
            let c = &mut cpus[0];
            let mut tx = e.begin(c);
            let _ = e.tx_read(c, &mut tx, a, 0).unwrap();
            tx
        };
        {
            let c = &mut cpus[1];
            e.nontx_write(c, a, 0, 9);
        }
        // Read-only: serializes at its read version, still commits.
        let c = &mut cpus[0];
        e.commit(c, &mut rtx).unwrap();
    }
}
