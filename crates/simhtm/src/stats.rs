//! Per-thread HTM statistics (the raw material of Figures 3 and 4).
//!
//! [`HtmThreadStats`] is the atomic, always-on recording side; [`HtmStats`]
//! is the plain snapshot the bench harness aggregates and reports into a
//! [`MetricsRegistry`] via [`HtmStats::report`].

use crate::abort::AbortCode;
use st_obs::{AbortCause, CauseCounts, MetricId, MetricSchema, MetricsRegistry, ScratchRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Atomic per-thread transaction counters.
#[derive(Debug, Default)]
pub struct HtmThreadStats {
    begun: AtomicU64,
    committed: AtomicU64,
    aborts_conflict: AtomicU64,
    aborts_capacity: AtomicU64,
    aborts_explicit: AtomicU64,
    aborts_preempted: AtomicU64,
    aborts_other: AtomicU64,
    committed_reads: AtomicU64,
    committed_writes: AtomicU64,
}

impl HtmThreadStats {
    pub(crate) fn on_begin(&self) {
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_commit(&self, reads: u64, writes: u64) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.committed_reads.fetch_add(reads, Ordering::Relaxed);
        self.committed_writes.fetch_add(writes, Ordering::Relaxed);
    }

    pub(crate) fn on_abort(&self, code: AbortCode) {
        let ctr = match code {
            AbortCode::Conflict => &self.aborts_conflict,
            AbortCode::Capacity => &self.aborts_capacity,
            AbortCode::Explicit => &self.aborts_explicit,
            AbortCode::Preempted => &self.aborts_preempted,
            AbortCode::Other => &self.aborts_other,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes the counters (benchmark warm-up support).
    pub fn reset(&self) {
        self.begun.store(0, Ordering::Relaxed);
        self.committed.store(0, Ordering::Relaxed);
        self.aborts_conflict.store(0, Ordering::Relaxed);
        self.aborts_capacity.store(0, Ordering::Relaxed);
        self.aborts_explicit.store(0, Ordering::Relaxed);
        self.aborts_preempted.store(0, Ordering::Relaxed);
        self.aborts_other.store(0, Ordering::Relaxed);
        self.committed_reads.store(0, Ordering::Relaxed);
        self.committed_writes.store(0, Ordering::Relaxed);
    }

    /// Snapshots the counters.
    pub fn snapshot(&self) -> HtmStats {
        HtmStats {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
            aborts_preempted: self.aborts_preempted.load(Ordering::Relaxed),
            aborts_other: self.aborts_other.load(Ordering::Relaxed),
            committed_reads: self.committed_reads.load(Ordering::Relaxed),
            committed_writes: self.committed_writes.load(Ordering::Relaxed),
        }
    }
}

/// A plain snapshot of transaction counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HtmStats {
    /// Transactions started.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Aborts due to data conflicts.
    pub aborts_conflict: u64,
    /// Aborts due to the capacity model.
    pub aborts_capacity: u64,
    /// Explicitly requested aborts.
    pub aborts_explicit: u64,
    /// Aborts caused by scheduler preemption mid-transaction.
    pub aborts_preempted: u64,
    /// Spurious aborts.
    pub aborts_other: u64,
    /// Transactional reads in committed transactions.
    pub committed_reads: u64,
    /// Transactional writes in committed transactions.
    pub committed_writes: u64,
}

impl HtmStats {
    /// Total aborts of all kinds.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_conflict
            + self.aborts_capacity
            + self.aborts_explicit
            + self.aborts_preempted
            + self.aborts_other
    }

    /// The abort counters as a [`CauseCounts`] block (canonical taxonomy).
    pub fn cause_counts(&self) -> CauseCounts {
        let mut c = CauseCounts::new();
        c.add_n(AbortCause::Conflict, self.aborts_conflict);
        c.add_n(AbortCause::Capacity, self.aborts_capacity);
        c.add_n(AbortCause::Explicit, self.aborts_explicit);
        c.add_n(AbortCause::Preempted, self.aborts_preempted);
        c.add_n(AbortCause::Spurious, self.aborts_other);
        c
    }

    /// Reports every counter into `reg` under the `htm.` namespace. Keys
    /// are interned once per process; the report path fills a flat scratch
    /// and merges it in (same key set and JSON as string-keyed recording).
    pub fn report(&self, reg: &mut MetricsRegistry) {
        struct HtmSchemaIds {
            schema: MetricSchema,
            tx_begun: MetricId,
            tx_committed: MetricId,
            committed_reads: MetricId,
            committed_writes: MetricId,
            aborts: [MetricId; 5],
        }
        static SCHEMA: OnceLock<HtmSchemaIds> = OnceLock::new();
        let ids = SCHEMA.get_or_init(|| {
            let mut s = MetricSchema::new();
            HtmSchemaIds {
                tx_begun: s.intern("htm.tx_begun"),
                tx_committed: s.intern("htm.tx_committed"),
                committed_reads: s.intern("htm.committed_reads"),
                committed_writes: s.intern("htm.committed_writes"),
                aborts: CauseCounts::intern_keys(&mut s, "htm"),
                schema: s,
            }
        });
        let mut scratch = ScratchRegistry::for_schema(&ids.schema);
        scratch.add(ids.tx_begun, self.begun);
        scratch.add(ids.tx_committed, self.committed);
        scratch.add(ids.committed_reads, self.committed_reads);
        scratch.add(ids.committed_writes, self.committed_writes);
        self.cause_counts()
            .report_interned(&mut scratch, &ids.aborts);
        scratch.merge_into(&ids.schema, reg);
    }

    /// Element-wise sum (for whole-run aggregation).
    pub fn merged(self, other: HtmStats) -> HtmStats {
        HtmStats {
            begun: self.begun + other.begun,
            committed: self.committed + other.committed,
            aborts_conflict: self.aborts_conflict + other.aborts_conflict,
            aborts_capacity: self.aborts_capacity + other.aborts_capacity,
            aborts_explicit: self.aborts_explicit + other.aborts_explicit,
            aborts_preempted: self.aborts_preempted + other.aborts_preempted,
            aborts_other: self.aborts_other + other.aborts_other,
            committed_reads: self.committed_reads + other.committed_reads,
            committed_writes: self.committed_writes + other.committed_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_events() {
        let s = HtmThreadStats::default();
        s.on_begin();
        s.on_begin();
        s.on_commit(10, 3);
        s.on_abort(AbortCode::Capacity);
        let snap = s.snapshot();
        assert_eq!(snap.begun, 2);
        assert_eq!(snap.committed, 1);
        assert_eq!(snap.aborts_capacity, 1);
        assert_eq!(snap.committed_reads, 10);
        assert_eq!(snap.committed_writes, 3);
        assert_eq!(snap.total_aborts(), 1);
    }

    #[test]
    fn merged_adds_fields() {
        let a = HtmStats {
            begun: 1,
            committed: 1,
            aborts_conflict: 2,
            ..Default::default()
        };
        let b = HtmStats {
            begun: 3,
            aborts_conflict: 1,
            aborts_other: 5,
            ..Default::default()
        };
        let m = a.merged(b);
        assert_eq!(m.begun, 4);
        assert_eq!(m.aborts_conflict, 3);
        assert_eq!(m.total_aborts(), 8);
    }

    #[test]
    fn preempted_aborts_are_counted_and_reported() {
        let s = HtmThreadStats::default();
        s.on_begin();
        s.on_abort(AbortCode::Preempted);
        let snap = s.snapshot();
        assert_eq!(snap.aborts_preempted, 1);
        assert_eq!(snap.total_aborts(), 1);
        assert_eq!(snap.cause_counts().get(AbortCause::Preempted), 1);
        let mut reg = MetricsRegistry::new();
        snap.report(&mut reg);
        assert_eq!(reg.counter("htm.aborts.preempted"), 1);
        assert_eq!(reg.counter("htm.tx_begun"), 1);
    }
}
