//! Per-thread HTM statistics (the raw material of Figures 3 and 4).

use crate::abort::AbortCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic per-thread transaction counters.
#[derive(Debug, Default)]
pub struct HtmThreadStats {
    begun: AtomicU64,
    committed: AtomicU64,
    aborts_conflict: AtomicU64,
    aborts_capacity: AtomicU64,
    aborts_explicit: AtomicU64,
    aborts_other: AtomicU64,
    committed_reads: AtomicU64,
    committed_writes: AtomicU64,
}

impl HtmThreadStats {
    pub(crate) fn on_begin(&self) {
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_commit(&self, reads: u64, writes: u64) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.committed_reads.fetch_add(reads, Ordering::Relaxed);
        self.committed_writes.fetch_add(writes, Ordering::Relaxed);
    }

    pub(crate) fn on_abort(&self, code: AbortCode) {
        let ctr = match code {
            AbortCode::Conflict => &self.aborts_conflict,
            AbortCode::Capacity => &self.aborts_capacity,
            AbortCode::Explicit => &self.aborts_explicit,
            AbortCode::Other => &self.aborts_other,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes the counters (benchmark warm-up support).
    pub fn reset(&self) {
        self.begun.store(0, Ordering::Relaxed);
        self.committed.store(0, Ordering::Relaxed);
        self.aborts_conflict.store(0, Ordering::Relaxed);
        self.aborts_capacity.store(0, Ordering::Relaxed);
        self.aborts_explicit.store(0, Ordering::Relaxed);
        self.aborts_other.store(0, Ordering::Relaxed);
        self.committed_reads.store(0, Ordering::Relaxed);
        self.committed_writes.store(0, Ordering::Relaxed);
    }

    /// Snapshots the counters.
    pub fn snapshot(&self) -> HtmStats {
        HtmStats {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
            aborts_other: self.aborts_other.load(Ordering::Relaxed),
            committed_reads: self.committed_reads.load(Ordering::Relaxed),
            committed_writes: self.committed_writes.load(Ordering::Relaxed),
        }
    }
}

/// A plain snapshot of transaction counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HtmStats {
    /// Transactions started.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Aborts due to data conflicts.
    pub aborts_conflict: u64,
    /// Aborts due to the capacity model.
    pub aborts_capacity: u64,
    /// Explicitly requested aborts.
    pub aborts_explicit: u64,
    /// Spurious aborts.
    pub aborts_other: u64,
    /// Transactional reads in committed transactions.
    pub committed_reads: u64,
    /// Transactional writes in committed transactions.
    pub committed_writes: u64,
}

impl HtmStats {
    /// Total aborts of all kinds.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_capacity + self.aborts_explicit + self.aborts_other
    }

    /// Element-wise sum (for whole-run aggregation).
    pub fn merged(self, other: HtmStats) -> HtmStats {
        HtmStats {
            begun: self.begun + other.begun,
            committed: self.committed + other.committed,
            aborts_conflict: self.aborts_conflict + other.aborts_conflict,
            aborts_capacity: self.aborts_capacity + other.aborts_capacity,
            aborts_explicit: self.aborts_explicit + other.aborts_explicit,
            aborts_other: self.aborts_other + other.aborts_other,
            committed_reads: self.committed_reads + other.committed_reads,
            committed_writes: self.committed_writes + other.committed_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_events() {
        let s = HtmThreadStats::default();
        s.on_begin();
        s.on_begin();
        s.on_commit(10, 3);
        s.on_abort(AbortCode::Capacity);
        let snap = s.snapshot();
        assert_eq!(snap.begun, 2);
        assert_eq!(snap.committed, 1);
        assert_eq!(snap.aborts_capacity, 1);
        assert_eq!(snap.committed_reads, 10);
        assert_eq!(snap.committed_writes, 3);
        assert_eq!(snap.total_aborts(), 1);
    }

    #[test]
    fn merged_adds_fields() {
        let a = HtmStats {
            begun: 1,
            committed: 1,
            aborts_conflict: 2,
            ..Default::default()
        };
        let b = HtmStats {
            begun: 3,
            aborts_conflict: 1,
            aborts_other: 5,
            ..Default::default()
        };
        let m = a.merged(b);
        assert_eq!(m.begun, 4);
        assert_eq!(m.aborts_conflict, 3);
        assert_eq!(m.total_aborts(), 8);
    }
}
