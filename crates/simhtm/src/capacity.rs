//! L1 capacity model for best-effort transactions.
//!
//! TSX tracks a transaction's data set in the L1 cache; overflowing it (or
//! losing a tracked line to eviction) raises a *capacity abort*. Two facts
//! from the paper's section 6 drive this model:
//!
//! - Transactions abort well before the nominal 32 KiB / 64 B = 512-line
//!   budget, because the L1 is 8-way set-associative and co-resident data
//!   evicts tracked lines probabilistically.
//! - Once HyperThreading kicks in (threads > cores), the sibling context
//!   shares the same L1 and "the number of capacity aborts increases by
//!   orders of magnitude" (Figure 3).
//!
//! The model therefore combines a hard budget (halved under SMT) with a
//! per-new-line eviction probability that grows quadratically with
//! occupancy and linearly with the sibling's transactional footprint.

use st_machine::Cpu;

/// Capacity-model parameters.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    /// Nominal private L1 budget, in cache lines.
    pub l1_lines: u64,
    /// Budget divisor while the SMT sibling is active.
    pub smt_divisor: u64,
    /// Scale of the occupancy-driven eviction probability (at 100 %
    /// occupancy of the effective budget, each new line faces this chance).
    pub evict_at_full: f64,
    /// Extra eviction probability per new line, scaled by the sibling's
    /// footprint fraction of the L1.
    pub smt_evict_scale: f64,
}

impl Default for CapacityModel {
    fn default() -> Self {
        Self {
            l1_lines: 448,
            smt_divisor: 2,
            evict_at_full: 0.5,
            smt_evict_scale: 0.8,
        }
    }
}

impl CapacityModel {
    /// Effective line budget for `cpu` right now.
    pub fn budget(&self, cpu: &Cpu) -> u64 {
        if cpu.smt_pressure() > 0.0 {
            (self.l1_lines / self.smt_divisor).max(1)
        } else {
            self.l1_lines
        }
    }

    /// Decides whether admitting one more distinct line (bringing the
    /// footprint to `lines`) overflows or suffers an eviction.
    ///
    /// Deterministic given the thread's PRNG stream.
    pub fn admits(&self, cpu: &mut Cpu, lines: u64) -> bool {
        let budget = self.budget(cpu);
        if lines > budget {
            return false;
        }
        let occupancy = lines as f64 / budget as f64;
        let mut p = self.evict_at_full * occupancy * occupancy * occupancy;
        let sibling = cpu.sibling_footprint() as f64 / self.l1_lines as f64;
        p += self.smt_evict_scale * sibling * cpu.smt_pressure() * occupancy;
        !cpu.rng.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_machine::{cpu::ActivityBoard, CostModel, HwContext, Topology};
    use std::sync::Arc;

    fn cpu_with_board() -> (Cpu, Arc<ActivityBoard>) {
        let topo = Topology::haswell();
        let board = Arc::new(ActivityBoard::new(topo.hw_contexts()));
        let cpu = Cpu::new(
            0,
            HwContext::new(&topo, 0),
            Arc::new(CostModel::default()),
            board.clone(),
            11,
        );
        (cpu, board)
    }

    #[test]
    fn hard_budget_enforced() {
        let (mut cpu, _) = cpu_with_board();
        let m = CapacityModel::default();
        assert!(!m.admits(&mut cpu, m.l1_lines + 1));
    }

    #[test]
    fn tiny_footprints_always_admitted() {
        let (mut cpu, _) = cpu_with_board();
        let m = CapacityModel::default();
        for _ in 0..1000 {
            assert!(m.admits(&mut cpu, 4));
        }
    }

    #[test]
    fn smt_halves_the_budget() {
        let (cpu, board) = cpu_with_board();
        let m = CapacityModel::default();
        assert_eq!(m.budget(&cpu), m.l1_lines);
        board.set_running(cpu.hw.sibling.unwrap(), true);
        assert_eq!(m.budget(&cpu), m.l1_lines / 2);
    }

    #[test]
    fn smt_pressure_raises_eviction_rate() {
        let m = CapacityModel::default();
        let lines = 100;

        let (mut solo, _) = cpu_with_board();
        let solo_evictions = (0..20_000).filter(|_| !m.admits(&mut solo, lines)).count();

        let (mut shared, board) = cpu_with_board();
        let sib = shared.hw.sibling.unwrap();
        board.set_running(sib, true);
        board.set_footprint(sib, 200);
        let shared_evictions = (0..20_000)
            .filter(|_| !m.admits(&mut shared, lines))
            .count();

        assert!(
            shared_evictions > solo_evictions * 5,
            "SMT must multiply capacity aborts (solo {solo_evictions}, shared {shared_evictions})"
        );
    }

    #[test]
    fn occupancy_raises_eviction_rate() {
        let m = CapacityModel::default();
        let (mut cpu, _) = cpu_with_board();
        let low = (0..20_000).filter(|_| !m.admits(&mut cpu, 50)).count();
        let high = (0..20_000).filter(|_| !m.admits(&mut cpu, 400)).count();
        assert!(
            high > low,
            "fuller transactions must abort more (low {low}, high {high})"
        );
    }
}
