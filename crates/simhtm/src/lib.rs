//! Best-effort hardware transactional memory, simulated.
//!
//! StackTrack's correctness and performance both rest on Intel TSX-style
//! best-effort HTM, which is unavailable here (the `xbegin` intrinsics exist
//! in `core::arch`, but TSX hardware does not). This crate substitutes a
//! **TL2-style software transactional engine** over the simulated heap that
//! preserves the two HTM properties the paper's argument uses:
//!
//! 1. **Atomic, opaque segments.** A transaction's writes (including the
//!    thread's shadow-stack/register exposure) become visible all at once at
//!    commit; reads are validated eagerly against per-cache-line stripe
//!    versions, so a transaction never observes an inconsistent snapshot.
//! 2. **Non-speculative writes doom conflicting transactions.** The
//!    reclaimer's poison ([`HtmEngine::free_object`]) and the slow path's
//!    stores ([`HtmEngine::nontx_write`]) bump stripe versions, so any
//!    in-flight transaction that read those lines aborts before committing —
//!    the paper's "HTM aborts immediately on conflict with non-speculative
//!    code".
//!
//! On top of that sits an **abort taxonomy** matching TSX ([`AbortCode`]:
//! conflict, capacity, explicit, other) and an **L1 capacity model** that
//! shrinks the line budget and adds probabilistic evictions when the SMT
//! sibling context is active — the mechanism behind the paper's
//! capacity-abort explosion once threads outnumber cores (Figure 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abort;
pub mod capacity;
pub mod engine;
pub mod stats;
pub mod stripes;
pub mod tx;
pub mod util;

pub use abort::{Abort, AbortCode};
pub use capacity::CapacityModel;
pub use engine::{HtmConfig, HtmEngine};
pub use stats::HtmStats;
pub use tx::Tx;
