//! Versioned stripe locks (TL2's per-location metadata).
//!
//! Each 64-byte cache line of the simulated heap hashes to one *stripe*: an
//! `AtomicU64` whose low bit is a write lock and whose upper 63 bits are a
//! version stamp. Transactions validate reads against stripe versions;
//! commits and non-transactional "doomed writes" advance them.

use st_simheap::Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stripe value: `version << 1 | locked`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeValue(pub u64);

impl StripeValue {
    /// Whether the stripe is write-locked.
    pub fn locked(self) -> bool {
        self.0 & 1 != 0
    }

    /// The version stamp.
    pub fn version(self) -> u64 {
        self.0 >> 1
    }

    /// An unlocked value with the given version.
    pub fn unlocked(version: u64) -> Self {
        StripeValue(version << 1)
    }

    /// The locked form of this value.
    pub fn as_locked(self) -> Self {
        StripeValue(self.0 | 1)
    }
}

/// The global stripe table.
#[derive(Debug)]
pub struct StripeTable {
    stripes: Vec<AtomicU64>,
    mask: u64,
}

/// The smallest table `StripeTable::new` will build. Requesting fewer
/// stripes (including `size = 0`) silently gets this floor: the index math
/// needs a non-empty power-of-two table, and anything smaller than a
/// cache-line's worth of locks would alias every address onto a handful of
/// stripes and turn the simulator into a single global lock.
pub const MIN_STRIPES: usize = 64;

impl StripeTable {
    /// Creates a table with `size` stripes, rounded up to a power of two
    /// and floored at [`MIN_STRIPES`]. `size = 0` is therefore accepted and
    /// yields the minimum table, never an empty one.
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(MIN_STRIPES);
        Self {
            stripes: (0..size).map(|_| AtomicU64::new(0)).collect(),
            mask: size as u64 - 1,
        }
    }

    /// Number of stripes (always a power of two, at least [`MIN_STRIPES`]).
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether the table is empty. Never true: `new` floors the size at
    /// [`MIN_STRIPES`]. Kept for the `len`/`is_empty` container convention.
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// The stripe index covering `addr + off`.
    pub fn index_of(&self, addr: Addr, off: u64) -> u32 {
        self.index_of_line(addr.offset(off).line())
    }

    /// The stripe index covering cache line `line` (the hot-path form:
    /// callers that already walk whole lines skip the per-word address
    /// arithmetic).
    pub fn index_of_line(&self, line: u64) -> u32 {
        let h = line.wrapping_mul(0x9e3779b97f4a7c15);
        ((h >> 32) & self.mask) as u32
    }

    /// Reads a stripe.
    pub fn read(&self, idx: u32) -> StripeValue {
        StripeValue(self.stripes[idx as usize].load(Ordering::Relaxed))
    }

    /// Attempts to lock a stripe whose current value is `seen`.
    pub fn try_lock(&self, idx: u32, seen: StripeValue) -> bool {
        !seen.locked()
            && self.stripes[idx as usize]
                .compare_exchange(
                    seen.0,
                    seen.as_locked().0,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
    }

    /// Releases a locked stripe, setting its version to `version`.
    ///
    /// # Panics
    ///
    /// Debug-asserts the stripe was locked.
    pub fn release(&self, idx: u32, version: u64) {
        debug_assert!(self.read(idx).locked(), "releasing an unlocked stripe");
        self.stripes[idx as usize].store(StripeValue::unlocked(version).0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_packing() {
        let v = StripeValue::unlocked(42);
        assert!(!v.locked());
        assert_eq!(v.version(), 42);
        let l = v.as_locked();
        assert!(l.locked());
        assert_eq!(l.version(), 42);
    }

    #[test]
    fn same_line_same_stripe() {
        let t = StripeTable::new(1024);
        // Cover a full line including both boundary words: words 0..8 are
        // line 0, words 8..16 are line 1.
        let a = Addr::from_index(0);
        let line0 = t.index_of(a, 0);
        for off in 0..8 {
            assert_eq!(t.index_of(a, off), line0, "word {off} left line 0");
        }
        let line1 = t.index_of(a, 8);
        for off in 8..16 {
            assert_eq!(t.index_of(a, off), line1, "word {off} left line 1");
        }
        assert_ne!(line0, line1, "adjacent lines must hash independently");
        assert_eq!(t.index_of_line(0), line0);
        assert_eq!(t.index_of_line(1), line1);
    }

    #[test]
    fn size_floor_and_rounding() {
        // `size = 0` is accepted and floored, never an empty table.
        let zero = StripeTable::new(0);
        assert_eq!(zero.len(), MIN_STRIPES);
        assert!(!zero.is_empty());
        // Sub-floor requests get the same floor; larger ones round up to
        // the next power of two.
        assert_eq!(StripeTable::new(1).len(), MIN_STRIPES);
        assert_eq!(StripeTable::new(MIN_STRIPES).len(), MIN_STRIPES);
        assert_eq!(StripeTable::new(65).len(), 128);
        assert_eq!(StripeTable::new(1000).len(), 1024);
        // The floored table still indexes in range.
        let idx = zero.index_of(Addr::from_index(12345), 0);
        assert!((idx as usize) < zero.len());
    }

    #[test]
    fn lock_release_cycle() {
        let t = StripeTable::new(64);
        let idx = 3;
        let seen = t.read(idx);
        assert!(t.try_lock(idx, seen));
        // Locked stripes refuse second lockers.
        assert!(!t.try_lock(idx, t.read(idx)));
        t.release(idx, 7);
        let after = t.read(idx);
        assert!(!after.locked());
        assert_eq!(after.version(), 7);
    }

    #[test]
    fn stale_witness_fails_to_lock() {
        let t = StripeTable::new(64);
        let idx = 5;
        let stale = t.read(idx);
        let fresh = t.read(idx);
        assert!(t.try_lock(idx, fresh));
        t.release(idx, 9);
        assert!(!t.try_lock(idx, stale), "CAS must reject a stale witness");
    }
}
