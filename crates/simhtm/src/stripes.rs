//! Versioned stripe locks (TL2's per-location metadata).
//!
//! Each 64-byte cache line of the simulated heap hashes to one *stripe*: an
//! `AtomicU64` whose low bit is a write lock and whose upper 63 bits are a
//! version stamp. Transactions validate reads against stripe versions;
//! commits and non-transactional "doomed writes" advance them.

use st_simheap::Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stripe value: `version << 1 | locked`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeValue(pub u64);

impl StripeValue {
    /// Whether the stripe is write-locked.
    pub fn locked(self) -> bool {
        self.0 & 1 != 0
    }

    /// The version stamp.
    pub fn version(self) -> u64 {
        self.0 >> 1
    }

    /// An unlocked value with the given version.
    pub fn unlocked(version: u64) -> Self {
        StripeValue(version << 1)
    }

    /// The locked form of this value.
    pub fn as_locked(self) -> Self {
        StripeValue(self.0 | 1)
    }
}

/// The global stripe table.
#[derive(Debug)]
pub struct StripeTable {
    stripes: Vec<AtomicU64>,
    mask: u64,
}

impl StripeTable {
    /// Creates a table with `size` stripes (rounded up to a power of two).
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(64);
        Self {
            stripes: (0..size).map(|_| AtomicU64::new(0)).collect(),
            mask: size as u64 - 1,
        }
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether the table is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// The stripe index covering `addr + off`.
    pub fn index_of(&self, addr: Addr, off: u64) -> u32 {
        let line = addr.offset(off).line();
        let h = line.wrapping_mul(0x9e3779b97f4a7c15);
        ((h >> 32) & self.mask) as u32
    }

    /// Reads a stripe.
    pub fn read(&self, idx: u32) -> StripeValue {
        StripeValue(self.stripes[idx as usize].load(Ordering::Relaxed))
    }

    /// Attempts to lock a stripe whose current value is `seen`.
    pub fn try_lock(&self, idx: u32, seen: StripeValue) -> bool {
        !seen.locked()
            && self.stripes[idx as usize]
                .compare_exchange(
                    seen.0,
                    seen.as_locked().0,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
    }

    /// Releases a locked stripe, setting its version to `version`.
    ///
    /// # Panics
    ///
    /// Debug-asserts the stripe was locked.
    pub fn release(&self, idx: u32, version: u64) {
        debug_assert!(self.read(idx).locked(), "releasing an unlocked stripe");
        self.stripes[idx as usize].store(StripeValue::unlocked(version).0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_packing() {
        let v = StripeValue::unlocked(42);
        assert!(!v.locked());
        assert_eq!(v.version(), 42);
        let l = v.as_locked();
        assert!(l.locked());
        assert_eq!(l.version(), 42);
    }

    #[test]
    fn same_line_same_stripe() {
        let t = StripeTable::new(1024);
        let a = Addr::from_index(0 + 1);
        // Words 1..8 share line 0.
        for off in 0..6 {
            assert_eq!(t.index_of(a, 0), t.index_of(a, off));
        }
    }

    #[test]
    fn lock_release_cycle() {
        let t = StripeTable::new(64);
        let idx = 3;
        let seen = t.read(idx);
        assert!(t.try_lock(idx, seen));
        // Locked stripes refuse second lockers.
        assert!(!t.try_lock(idx, t.read(idx)));
        t.release(idx, 7);
        let after = t.read(idx);
        assert!(!after.locked());
        assert_eq!(after.version(), 7);
    }

    #[test]
    fn stale_witness_fails_to_lock() {
        let t = StripeTable::new(64);
        let idx = 5;
        let stale = t.read(idx);
        let fresh = t.read(idx);
        assert!(t.try_lock(idx, fresh));
        t.release(idx, 9);
        assert!(!t.try_lock(idx, stale), "CAS must reject a stale witness");
    }
}
