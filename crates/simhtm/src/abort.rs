//! Abort taxonomy, mirroring Intel TSX abort status.

/// Why a hardware transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// Data conflict with another thread (transactional or not).
    Conflict,
    /// The data set outgrew the (simulated) L1 budget.
    Capacity,
    /// The program requested the abort (XABORT).
    Explicit,
    /// Spurious hardware abort (interrupts, unsupported instructions, ...).
    Other,
}

/// An aborted transaction, propagated as an error.
///
/// In C, an HTM abort longjmps back to the `XBEGIN` fallback; the idiomatic
/// Rust rendering is an error that unwinds the segment body via `?`, after
/// which the split engine restarts the segment from its last committed
/// state — the same control flow the hardware provides by restoring the
/// register checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort(pub AbortCode);

impl Abort {
    /// The abort reason.
    pub fn code(self) -> AbortCode {
        self.0
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted: {:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_code() {
        assert!(Abort(AbortCode::Capacity).to_string().contains("Capacity"));
    }

    #[test]
    fn code_roundtrip() {
        for code in [
            AbortCode::Conflict,
            AbortCode::Capacity,
            AbortCode::Explicit,
            AbortCode::Other,
        ] {
            assert_eq!(Abort(code).code(), code);
        }
    }
}
