//! Abort taxonomy, mirroring Intel TSX abort status.
//!
//! Each [`AbortCode`] maps onto the workspace-wide
//! [`AbortCause`] taxonomy via [`AbortCode::cause`], so
//! every layer above the engine attributes aborts through one schema.

use st_obs::AbortCause;

/// Why a hardware transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// Data conflict with another thread (transactional or not).
    Conflict,
    /// The data set outgrew the (simulated) L1 budget.
    Capacity,
    /// The program requested the abort (XABORT).
    Explicit,
    /// The scheduler preempted the thread mid-transaction; real HTM aborts
    /// on any context switch, and the simulator models the same.
    Preempted,
    /// Spurious hardware abort (interrupts, unsupported instructions, ...).
    Other,
}

impl AbortCode {
    /// Maps the hardware-level code onto the canonical abort-cause taxonomy.
    pub fn cause(self) -> AbortCause {
        match self {
            AbortCode::Conflict => AbortCause::Conflict,
            AbortCode::Capacity => AbortCause::Capacity,
            AbortCode::Explicit => AbortCause::Explicit,
            AbortCode::Preempted => AbortCause::Preempted,
            AbortCode::Other => AbortCause::Spurious,
        }
    }
}

/// An aborted transaction, propagated as an error.
///
/// In C, an HTM abort longjmps back to the `XBEGIN` fallback; the idiomatic
/// Rust rendering is an error that unwinds the segment body via `?`, after
/// which the split engine restarts the segment from its last committed
/// state — the same control flow the hardware provides by restoring the
/// register checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort(pub AbortCode);

impl Abort {
    /// The abort reason.
    pub fn code(self) -> AbortCode {
        self.0
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted: {:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_code() {
        assert!(Abort(AbortCode::Capacity).to_string().contains("Capacity"));
    }

    #[test]
    fn code_roundtrip() {
        for code in [
            AbortCode::Conflict,
            AbortCode::Capacity,
            AbortCode::Explicit,
            AbortCode::Preempted,
            AbortCode::Other,
        ] {
            assert_eq!(Abort(code).code(), code);
        }
    }

    #[test]
    fn every_code_maps_to_a_cause() {
        assert_eq!(AbortCode::Conflict.cause(), AbortCause::Conflict);
        assert_eq!(AbortCode::Capacity.cause(), AbortCause::Capacity);
        assert_eq!(AbortCode::Explicit.cause(), AbortCause::Explicit);
        assert_eq!(AbortCode::Preempted.cause(), AbortCause::Preempted);
        assert_eq!(AbortCode::Other.cause(), AbortCause::Spurious);
    }
}
