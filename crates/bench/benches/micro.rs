//! Micro-benchmarks of the substrate hot paths and StackTrack primitives,
//! including the Ablation 1 comparison (linear vs hashed SCAN_AND_FREE)
//! from DESIGN.md.
//!
//! These measure *host* nanoseconds of the simulator itself (how fast the
//! reproduction runs), complementing the virtual-cycle results in
//! `st-bench` (what the simulated machine measures).
//!
//! Plain `harness = false` timing loop (no external benchmark crate — the
//! build must work offline): each benchmark is warmed up, then timed over
//! enough iterations to smooth scheduler noise. `--test` (what
//! `cargo bench -- --test` passes, and what CI runs) does one iteration per
//! benchmark as a smoke test.

use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_reclaim::mem::{Mem, NodeType};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{util::U64Set, HtmConfig, HtmEngine};
use st_structures::list::{self, ListShape};
use stacktrack::{predictor::SplitPredictor, ScanMode, StConfig, StRuntime, Step};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// How many timed iterations each benchmark runs (after an untimed warmup
/// of a tenth as many). Smoke mode (`--test`) runs exactly one.
const ITERS: u64 = 100_000;

struct Harness {
    smoke: bool,
    filter: Option<String>,
}

impl Harness {
    fn from_args() -> Harness {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Harness { smoke, filter }
    }

    /// Times `f` and prints `name: <ns>/iter`, honoring filter/smoke mode.
    fn bench(&self, name: &str, mut f: impl FnMut()) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = if self.smoke { 1 } else { ITERS };
        for _ in 0..iters / 10 {
            f();
        }
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:<40} {ns:>12.1} ns/iter");
    }

    /// Like [`Harness::bench`] but rebuilds fresh state for every
    /// iteration via `setup` (setup time is excluded from the average by
    /// timing only the `run` closure). Uses 1/100 the iterations since
    /// setup dominates wall-clock.
    fn bench_with_setup<S>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = if self.smoke { 1 } else { ITERS / 100 };
        let mut total_ns = 0u128;
        for _ in 0..iters {
            let state = setup();
            let start = Instant::now();
            run(state);
            total_ns += start.elapsed().as_nanos();
        }
        let ns = total_ns as f64 / iters as f64;
        println!("{name:<40} {ns:>12.1} ns/iter");
    }
}

fn make_cpu(thread: usize) -> Cpu {
    let topo = Topology::haswell();
    Cpu::new(
        thread,
        HwContext::new(&topo, topo.place(thread)),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        42,
    )
}

fn bench_heap_ops(h: &Harness) {
    let heap = Heap::new(HeapConfig::default());
    let mut cpu = make_cpu(0);
    let addr = heap.alloc_untimed(8).unwrap();

    h.bench("heap/load", || {
        black_box(heap.load(&mut cpu, addr, 0));
    });
    let mut v = 0u64;
    h.bench("heap/store", || {
        v = v.wrapping_add(1);
        heap.store(&mut cpu, addr, 1, v);
    });
    h.bench("heap/alloc_free", || {
        let a = heap.alloc(&mut cpu, 2).unwrap();
        heap.free(&mut cpu, a);
    });
}

fn bench_htm_segment(h: &Harness) {
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let engine = HtmEngine::new(heap.clone(), HtmConfig::default(), 1);
    let mut cpu = make_cpu(0);
    let arr = heap.alloc_untimed(1024).unwrap();

    for reads in [4u64, 16, 64] {
        h.bench(&format!("htm/segment/{reads}"), || {
            // Best-effort HTM: retry on (probabilistic capacity) aborts,
            // exactly as client code must.
            'attempt: loop {
                let mut tx = engine.begin(&mut cpu);
                for i in 0..reads {
                    if engine.tx_read(&mut cpu, &mut tx, arr, i * 8).is_err() {
                        continue 'attempt;
                    }
                }
                if engine.tx_write(&mut cpu, &mut tx, arr, 0, reads).is_err() {
                    continue 'attempt;
                }
                if engine.commit(&mut cpu, &mut tx).is_ok() {
                    break;
                }
            }
        });
    }
}

fn bench_u64set(h: &Harness) {
    let mut set = U64Set::with_capacity(64);
    h.bench("util/u64set_insert_64", || {
        set.clear();
        for i in 0..64u64 {
            set.insert(black_box(i * 64));
        }
    });
}

fn bench_predictor(h: &Harness) {
    let mut p = SplitPredictor::new(50, 1, 200, 5, 5);
    h.bench("predictor/commit_abort_cycle", || {
        for split in 0..8usize {
            p.on_abort(0, split);
            p.on_commit(0, split);
            black_box(p.limit(0, split));
        }
    });
}

fn bench_list_op(h: &Harness) {
    // One full StackTrack-protected list operation (search of a 1K list).
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 20,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
    let rt = StRuntime::new(engine, StConfig::default(), 1);
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let shape = ListShape::new_untimed(&heap);
    for k in 1..=1000u64 {
        shape.insert_untimed(&heap, k * 2);
    }

    let mut key = 1u64;
    h.bench("stacktrack/list_contains_1k", || {
        key = key % 2000 + 1;
        let mut body = list::contains_body(shape, key);
        use st_reclaim::SchemeThread;
        black_box(SchemeThread::run_op(
            &mut th,
            &mut cpu,
            0,
            list::LIST_SLOTS,
            &mut body,
        ));
    });
}

/// The two-word throwaway node the scan benchmark retires.
#[derive(Debug, Clone, Copy)]
struct ScanNode;

impl NodeType for ScanNode {
    const WORDS: usize = 2;
}

fn bench_scan_modes(h: &Harness) {
    // Ablation 1: linear (Algorithm 1 as printed) vs hashed scan, with 8
    // registered threads to inspect and a batch of 16 candidates.
    for (name, mode) in [("linear", ScanMode::Linear), ("hashed", ScanMode::Hashed)] {
        h.bench_with_setup(
            &format!("stacktrack/scan/{name}"),
            || {
                let heap = Arc::new(Heap::new(HeapConfig {
                    capacity_words: 1 << 20,
                    ..HeapConfig::default()
                }));
                let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 8));
                let rt = StRuntime::new(
                    engine,
                    StConfig {
                        scan_mode: mode,
                        max_free: 64, // collect, then force one scan
                        ..StConfig::default()
                    },
                    8,
                );
                let mut threads: Vec<_> = (0..8).map(|t| rt.register_thread(t)).collect();
                let mut cpu = rt.test_cpu(0);
                // 16 retired nodes in thread 0's free set (a dispose of a
                // never-published node routes through the same retire
                // pipeline).
                for _ in 0..16 {
                    threads[0].run_op(&mut cpu, 0, 1, &mut |m, cpu| {
                        let mut mem = Mem::new(m, cpu);
                        let n = mem.alloc::<ScanNode>();
                        n.dispose(&mut mem)?;
                        Ok(Step::Done(0))
                    });
                }
                (threads, cpu)
            },
            |(mut threads, mut cpu)| {
                threads[0].force_full_scan(&mut cpu);
                black_box(threads[0].stats().scans);
            },
        );
    }
}

fn main() {
    let h = Harness::from_args();
    bench_heap_ops(&h);
    bench_htm_segment(&h);
    bench_u64set(&h);
    bench_predictor(&h);
    bench_list_op(&h);
    bench_scan_modes(&h);
}
