//! Criterion micro-benchmarks of the substrate hot paths and StackTrack
//! primitives, including the Ablation 1 comparison (linear vs hashed
//! SCAN_AND_FREE) from DESIGN.md.
//!
//! These measure *host* nanoseconds of the simulator itself (how fast the
//! reproduction runs), complementing the virtual-cycle results in
//! `st-bench` (what the simulated machine measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{util::U64Set, HtmConfig, HtmEngine};
use st_structures::list::{self, ListShape};
use stacktrack::{predictor::SplitPredictor, ScanMode, StConfig, StRuntime, Step};
use std::hint::black_box;
use std::sync::Arc;

fn make_cpu(thread: usize) -> Cpu {
    let topo = Topology::haswell();
    Cpu::new(
        thread,
        HwContext::new(&topo, topo.place(thread)),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        42,
    )
}

fn bench_heap_ops(c: &mut Criterion) {
    let heap = Heap::new(HeapConfig::default());
    let mut cpu = make_cpu(0);
    let addr = heap.alloc_untimed(8).unwrap();

    c.bench_function("heap/load", |b| {
        b.iter(|| black_box(heap.load(&mut cpu, addr, 0)))
    });
    c.bench_function("heap/store", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            heap.store(&mut cpu, addr, 1, v);
        })
    });
    c.bench_function("heap/alloc_free", |b| {
        b.iter(|| {
            let a = heap.alloc(&mut cpu, 2).unwrap();
            heap.free(&mut cpu, a);
        })
    });
}

fn bench_htm_segment(c: &mut Criterion) {
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let engine = HtmEngine::new(heap.clone(), HtmConfig::default(), 1);
    let mut cpu = make_cpu(0);
    let arr = heap.alloc_untimed(1024).unwrap();

    let mut group = c.benchmark_group("htm/segment");
    for reads in [4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(reads), &reads, |b, &reads| {
            b.iter(|| {
                // Best-effort HTM: retry on (probabilistic capacity) aborts,
                // exactly as client code must.
                'attempt: loop {
                    let mut tx = engine.begin(&mut cpu);
                    for i in 0..reads {
                        if engine.tx_read(&mut cpu, &mut tx, arr, i * 8).is_err() {
                            continue 'attempt;
                        }
                    }
                    if engine.tx_write(&mut cpu, &mut tx, arr, 0, reads).is_err() {
                        continue 'attempt;
                    }
                    if engine.commit(&mut cpu, &mut tx).is_ok() {
                        break;
                    }
                }
            })
        });
    }
    group.finish();
}

fn bench_u64set(c: &mut Criterion) {
    c.bench_function("util/u64set_insert_64", |b| {
        let mut set = U64Set::with_capacity(64);
        b.iter(|| {
            set.clear();
            for i in 0..64u64 {
                set.insert(black_box(i * 64));
            }
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("predictor/commit_abort_cycle", |b| {
        let mut p = SplitPredictor::new(50, 1, 200, 5, 5);
        b.iter(|| {
            for split in 0..8usize {
                p.on_abort(0, split);
                p.on_commit(0, split);
                black_box(p.limit(0, split));
            }
        })
    });
}

fn bench_list_op(c: &mut Criterion) {
    // One full StackTrack-protected list operation (search of a 1K list).
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 20,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 1));
    let rt = StRuntime::new(engine, StConfig::default(), 1);
    let mut th = rt.register_thread(0);
    let mut cpu = rt.test_cpu(0);
    let shape = ListShape::new_untimed(&heap);
    for k in 1..=1000u64 {
        shape.insert_untimed(&heap, k * 2);
    }

    c.bench_function("stacktrack/list_contains_1k", |b| {
        let mut key = 1u64;
        b.iter(|| {
            key = key % 2000 + 1;
            let mut body = list::contains_body(shape, key);
            use st_reclaim::SchemeThread;
            black_box(SchemeThread::run_op(
                &mut th,
                &mut cpu,
                0,
                list::LIST_SLOTS,
                &mut body,
            ))
        })
    });
}

fn bench_scan_modes(c: &mut Criterion) {
    // Ablation 1: linear (Algorithm 1 as printed) vs hashed scan, with 8
    // registered threads to inspect and a batch of 16 candidates.
    let mut group = c.benchmark_group("stacktrack/scan");
    for (name, mode) in [("linear", ScanMode::Linear), ("hashed", ScanMode::Hashed)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let heap = Arc::new(Heap::new(HeapConfig {
                        capacity_words: 1 << 20,
                        ..HeapConfig::default()
                    }));
                    let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), 8));
                    let rt = StRuntime::new(
                        engine,
                        StConfig {
                            scan_mode: mode,
                            max_free: 64, // collect, then force one scan
                            ..StConfig::default()
                        },
                        8,
                    );
                    let mut threads: Vec<_> = (0..8).map(|t| rt.register_thread(t)).collect();
                    let mut cpu = rt.test_cpu(0);
                    // 16 retired nodes in thread 0's free set.
                    for _ in 0..16 {
                        threads[0].run_op(&mut cpu, 0, 1, &mut |m, cpu| {
                            let n = m.alloc(cpu, 2);
                            m.retire(cpu, n)?;
                            Ok(Step::Done(0))
                        });
                    }
                    (threads, cpu)
                },
                |(mut threads, mut cpu)| {
                    threads[0].force_full_scan(&mut cpu);
                    black_box(threads[0].stats().scans)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heap_ops,
    bench_htm_segment,
    bench_u64set,
    bench_predictor,
    bench_list_op,
    bench_scan_modes
);
criterion_main!(benches);
