//! Parallel deterministic sweep scheduler.
//!
//! Every benchmark configuration is a fully self-contained simulation —
//! its own heap, HTM engine, scheme state, and seeded virtual machine —
//! so a figure's (structure, scheme, threads, workload) grid is
//! embarrassingly parallel. [`run_batch`] fans a config list across
//! `--jobs` OS threads through a shared work-queue cursor and collects
//! results **in config order**, so the persisted `results/*.json` and
//! `results/*.metrics.json` artifacts are byte-identical to a serial run:
//! per-config seeds are derived from the config alone, and output order
//! never depends on completion order. `--jobs 1` takes a plain serial
//! loop with no thread machinery at all.
//!
//! Host wall-clock per config is captured into a [`TimingSink`]
//! (`--timing-out`), the repo's perf trajectory record (see
//! `docs/PERF.md` and the committed `BENCH_sweep.json`).

use crate::experiment::{run, RunConfig, RunResult};
use st_obs::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Host wall-clock record of one configuration's simulation.
#[derive(Debug, Clone)]
pub struct ConfigTiming {
    /// Figure/table the config belongs to (e.g. `fig1_list`).
    pub figure: String,
    /// Scheme display name.
    pub scheme: String,
    /// Structure display name.
    pub structure: String,
    /// Simulated thread count.
    pub threads: usize,
    /// Host milliseconds the simulation took.
    pub host_ms: f64,
}

/// Accumulates [`ConfigTiming`] rows across a sweep, in config order.
///
/// Shared behind an `Arc` by every figure driver of one invocation; the
/// final report is assembled once by [`timing_report`].
#[derive(Debug, Default)]
pub struct TimingSink {
    entries: Mutex<Vec<ConfigTiming>>,
}

impl TimingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one batch of rows (already in config order).
    pub fn extend(&self, rows: Vec<ConfigTiming>) {
        self.entries.lock().expect("timing sink").extend(rows);
    }

    /// Snapshot of all rows recorded so far.
    pub fn rows(&self) -> Vec<ConfigTiming> {
        self.entries.lock().expect("timing sink").clone()
    }
}

/// Renders the `--timing-out` report document.
///
/// Shape: `{"command", "jobs", "host_cores", "total_host_ms",
/// "configs": [{figure, scheme, structure, threads, host_ms}, ...]}`.
/// `total_host_ms` is end-to-end wall clock (includes table rendering and
/// persistence, not just the summed simulations).
pub fn timing_report(
    command: &str,
    jobs: usize,
    total_host_ms: f64,
    rows: &[ConfigTiming],
) -> Json {
    let mut doc = Json::obj();
    doc.set("command", command);
    doc.set("jobs", jobs);
    doc.set("host_cores", host_cores());
    doc.set("total_host_ms", total_host_ms);
    let configs: Vec<Json> = rows
        .iter()
        .map(|t| {
            let mut o = Json::obj();
            o.set("figure", t.figure.as_str());
            o.set("scheme", t.scheme.as_str());
            o.set("structure", t.structure.as_str());
            o.set("threads", t.threads);
            o.set("host_ms", t.host_ms);
            o
        })
        .collect();
    doc.set("configs", Json::Arr(configs));
    doc
}

/// Validates a `--timing-out` report document against the schema
/// [`timing_report`] writes. Returns the number of config rows.
///
/// This is the `check-timing` CLI's core: CI regenerates a small figure
/// with `--timing-out` and runs this over the result, so schema drift in
/// the perf-trajectory record (`BENCH_sweep.json`, docs/PERF.md) fails the
/// build instead of silently breaking comparisons.
pub fn validate_timing_report(doc: &Json) -> Result<usize, String> {
    let require_u64 = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer \"{key}\""))
    };
    doc.get("command")
        .and_then(Json::as_str)
        .ok_or("missing or non-string \"command\"")?;
    let jobs = require_u64("jobs")?;
    if jobs == 0 {
        return Err("\"jobs\" must be at least 1".into());
    }
    if require_u64("host_cores")? == 0 {
        return Err("\"host_cores\" must be at least 1".into());
    }
    let total = doc
        .get("total_host_ms")
        .and_then(Json::as_f64)
        .ok_or("missing or non-numeric \"total_host_ms\"")?;
    if !total.is_finite() || total < 0.0 {
        return Err(format!(
            "\"total_host_ms\" must be finite and >= 0, got {total}"
        ));
    }
    let configs = doc
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array \"configs\"")?;
    if configs.is_empty() {
        return Err("\"configs\" must not be empty".into());
    }
    for (i, row) in configs.iter().enumerate() {
        for key in ["figure", "scheme", "structure"] {
            row.get(key)
                .and_then(Json::as_str)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("config {i}: missing or empty \"{key}\""))?;
        }
        if row.get("threads").and_then(Json::as_u64).is_none() {
            return Err(format!("config {i}: missing or non-integer \"threads\""));
        }
        let ms = row
            .get("host_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("config {i}: missing or non-numeric \"host_ms\""))?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("config {i}: \"host_ms\" must be finite and >= 0"));
        }
    }
    Ok(configs.len())
}

/// Logical CPUs visible to this process (1 if the query fails).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `configs` with up to `jobs` worker threads and returns results in
/// config order, plus per-config host timings (same order).
///
/// `jobs <= 1` runs the exact serial path: an in-order loop on the
/// calling thread. More jobs only change *when* each simulation executes,
/// never its seed or its position in the output — determinism of the
/// persisted artifacts is the scheduler's contract, asserted end-to-end
/// by the workspace determinism tests.
pub fn run_configs(configs: &[RunConfig], jobs: usize) -> (Vec<RunResult>, Vec<f64>) {
    let jobs = jobs.max(1).min(configs.len().max(1));
    if jobs <= 1 {
        let mut results = Vec::with_capacity(configs.len());
        let mut times = Vec::with_capacity(configs.len());
        for config in configs {
            let started = Instant::now();
            results.push(run(config));
            times.push(started.elapsed().as_secs_f64() * 1e3);
            eprint!(".");
        }
        return (results, times);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(RunResult, f64)>>> =
        configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(config) = configs.get(i) else {
                    break;
                };
                let started = Instant::now();
                let result = run(config);
                let host_ms = started.elapsed().as_secs_f64() * 1e3;
                *slots[i].lock().expect("result slot") = Some((result, host_ms));
                eprint!(".");
            });
        }
    });
    let mut results = Vec::with_capacity(configs.len());
    let mut times = Vec::with_capacity(configs.len());
    for slot in slots {
        let (result, host_ms) = slot
            .into_inner()
            .expect("result slot")
            .expect("every config ran");
        results.push(result);
        times.push(host_ms);
    }
    (results, times)
}

/// [`run_configs`] plus bookkeeping: records per-config timings into the
/// sink under `figure`, in config order.
pub fn run_batch(
    configs: &[RunConfig],
    jobs: usize,
    figure: &str,
    sink: Option<&TimingSink>,
) -> Vec<RunResult> {
    let (results, times) = run_configs(configs, jobs);
    if let Some(sink) = sink {
        let rows = results
            .iter()
            .zip(&times)
            .map(|(r, &host_ms)| ConfigTiming {
                figure: figure.to_string(),
                scheme: r.scheme.clone(),
                structure: r.structure.clone(),
                threads: r.threads,
                host_ms,
            })
            .collect();
        sink.extend(rows);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use st_reclaim::Scheme;

    fn tiny_configs(n: usize) -> Vec<RunConfig> {
        (1..=n)
            .map(|t| {
                RunConfig::new(
                    WorkloadSpec::paper_list().shrunk(100),
                    Scheme::StackTrack,
                    t,
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_serial_in_order() {
        let configs = tiny_configs(3);
        let (serial, _) = run_configs(&configs, 1);
        let (parallel, _) = run_configs(&configs, 3);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.threads, p.threads, "order preserved");
            assert_eq!(s.total_ops, p.total_ops, "identical simulation");
            assert_eq!(s.metrics, p.metrics, "identical metrics");
            assert_eq!(
                s.to_json().to_string(),
                p.to_json().to_string(),
                "identical flat row"
            );
        }
    }

    #[test]
    fn timing_sink_keeps_config_order() {
        let configs = tiny_configs(2);
        let sink = TimingSink::new();
        let results = run_batch(&configs, 2, "demo", Some(&sink));
        let rows = sink.rows();
        assert_eq!(rows.len(), results.len());
        for (row, result) in rows.iter().zip(&results) {
            assert_eq!(row.threads, result.threads);
            assert_eq!(row.figure, "demo");
            assert!(row.host_ms >= 0.0);
        }
    }

    #[test]
    fn timing_report_shape() {
        let rows = [ConfigTiming {
            figure: "fig1_list".into(),
            scheme: "stacktrack".into(),
            structure: "List".into(),
            threads: 4,
            host_ms: 12.5,
        }];
        let doc = timing_report("all", 2, 99.0, &rows);
        let text = doc.to_string();
        for key in [
            "command",
            "jobs",
            "host_cores",
            "total_host_ms",
            "configs",
            "host_ms",
        ] {
            assert!(text.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn generated_timing_report_validates() {
        let rows = [ConfigTiming {
            figure: "fig1_list".into(),
            scheme: "stacktrack".into(),
            structure: "List".into(),
            threads: 4,
            host_ms: 12.5,
        }];
        let doc = timing_report("all", 2, 99.0, &rows);
        // Round-trip through text, as check-timing does.
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(validate_timing_report(&parsed), Ok(1));
    }

    #[test]
    fn timing_validation_rejects_bad_shapes() {
        let reject = |text: &str, needle: &str| {
            let err = validate_timing_report(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "error {err:?} lacks {needle:?}");
        };
        reject("{}", "command");
        reject(r#"{"command":"all"}"#, "jobs");
        reject(
            r#"{"command":"all","jobs":0,"host_cores":1,"total_host_ms":1.0,"configs":[]}"#,
            "jobs",
        );
        reject(
            r#"{"command":"all","jobs":1,"host_cores":1,"total_host_ms":1.0,"configs":[]}"#,
            "empty",
        );
        reject(
            r#"{"command":"all","jobs":1,"host_cores":1,"total_host_ms":1.0,
                "configs":[{"figure":"f","scheme":"s","structure":"x","threads":1}]}"#,
            "host_ms",
        );
        reject(
            r#"{"command":"all","jobs":1,"host_cores":1,"total_host_ms":1.0,
                "configs":[{"figure":"f","scheme":"s","threads":1,"host_ms":0.5}]}"#,
            "structure",
        );
    }
}
