//! One benchmark run: build the machine, populate the structure, simulate,
//! and collect every statistic the figures need — both the flat scalar
//! summary ([`RunResult`]) and the full [`MetricsRegistry`] snapshot that
//! `results/*.metrics.json` serializes (schema in `docs/METRICS.md`).

use crate::workload::{BenchWorker, StructureInstance, WorkloadSpec};
use st_machine::{FaultPlan, SimConfig, Simulator, CYCLES_PER_SECOND};
use st_obs::{Json, MetricsRegistry};
use st_reclaim::{ReclaimConfig, Scheme, SchemeFactory};
use st_simheap::{Heap, HeapConfig};
use st_simhtm::{HtmConfig, HtmEngine, HtmStats};
use stacktrack::{StConfig, StThreadStats};
use std::sync::Arc;

/// Everything one run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The workload.
    pub spec: WorkloadSpec,
    /// The reclamation scheme.
    pub scheme: Scheme,
    /// Software threads.
    pub threads: usize,
    /// Virtual run length, in milliseconds.
    pub duration_ms: u64,
    /// Unmeasured warm-up before the run, in milliseconds (lets the split
    /// predictor converge, as the paper's 10-second runs implicitly do).
    pub warmup_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// StackTrack tuning (ignored by other schemes).
    pub st_config: StConfig,
    /// Baseline-scheme tuning.
    pub reclaim_config: ReclaimConfig,
    /// Fault schedule applied to the measured run (never to warm-up).
    pub faults: FaultPlan,
    /// Number of evenly spaced `outstanding_garbage` samples to take over
    /// the run (`0` = no time-series).
    pub garbage_samples: usize,
}

impl RunConfig {
    /// A run with default tuning.
    ///
    /// # Panics
    ///
    /// Panics if `spec` violates the [`WorkloadSpec`] builder invariants
    /// (only possible by mutating a built spec's public fields).
    pub fn new(spec: WorkloadSpec, scheme: Scheme, threads: usize, duration_ms: u64) -> Self {
        spec.validate().expect("invalid workload spec");
        let reclaim_config = ReclaimConfig::default();
        Self {
            spec,
            scheme,
            threads,
            duration_ms,
            warmup_ms: 0,
            seed: 0x57ac_c001,
            st_config: StConfig::default(),
            reclaim_config,
            faults: FaultPlan::default(),
            garbage_samples: 0,
        }
    }
}

/// Per-thread breakdown of one run (the `per_thread` envelope of the
/// schema-v2 metrics snapshot, see `docs/METRICS.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerThread {
    /// Simulated thread id (`0..threads`).
    pub thread: usize,
    /// Operations this thread completed.
    pub ops: u64,
    /// Virtual cycles this thread was busy (its final clock).
    pub busy_cycles: u64,
    /// Retired-but-unfreed nodes this thread held at the deadline.
    pub garbage: u64,
}

impl PerThread {
    /// One row of the snapshot's `per_thread` array.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("thread", self.thread);
        o.set("ops", self.ops);
        o.set("busy_cycles", self.busy_cycles);
        o.set("garbage", self.garbage);
        o
    }
}

/// Results of one run (serialized by the report generator).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme display name.
    pub scheme: String,
    /// Structure display name.
    pub structure: String,
    /// Software threads.
    pub threads: usize,
    /// Virtual run length (ms).
    pub duration_ms: u64,
    /// Operations completed.
    pub total_ops: u64,
    /// Operations per virtual second.
    pub ops_per_sec: f64,
    /// Transactions begun / committed.
    pub tx_begun: u64,
    /// Committed transactions.
    pub tx_committed: u64,
    /// Conflict aborts.
    pub aborts_conflict: u64,
    /// Capacity aborts.
    pub aborts_capacity: u64,
    /// Explicit (poison/XABORT) aborts.
    pub aborts_explicit: u64,
    /// Scheduler-preemption aborts.
    pub aborts_preempted: u64,
    /// Spurious aborts.
    pub aborts_other: u64,
    /// Memory fences issued.
    pub fences: u64,
    /// Plain loads issued.
    pub loads: u64,
    /// Plain stores issued.
    pub stores: u64,
    /// Transactional loads issued.
    pub tx_loads: u64,
    /// Transactional stores issued.
    pub tx_stores: u64,
    /// Atomic RMW operations issued.
    pub cas_ops: u64,
    /// Context switches suffered.
    pub context_switches: u64,
    /// Average committed segments per operation (StackTrack).
    pub avg_splits_per_op: f64,
    /// Average committed segment length in checkpoints (StackTrack).
    pub avg_split_length: f64,
    /// Operations that used the slow path (StackTrack).
    pub slow_ops: u64,
    /// `SCAN_AND_FREE` invocations (StackTrack).
    pub scans: u64,
    /// Words inspected per scan, on average (StackTrack).
    pub avg_scan_depth: f64,
    /// Inspection restarts from the consistency protocol (StackTrack).
    pub scan_retries: u64,
    /// Share of busy cycles spent scanning, in percent (StackTrack).
    pub scan_penalty_pct: f64,
    /// Retired-but-unfreed nodes at the deadline (before teardown).
    pub garbage: u64,
    /// Live heap words at the end (leak visibility).
    pub live_words: u64,
    /// Per-thread breakdown (ops, busy cycles, deadline garbage), one row
    /// per simulated thread in id order.
    pub per_thread: Vec<PerThread>,
    /// The full metrics snapshot (abort causes, histograms, per-scheme
    /// counters) aggregated over all workers.
    pub metrics: MetricsRegistry,
}

impl RunResult {
    /// The flat scalar summary as one JSON object (one line of the
    /// `results/<name>.json` JSON-lines file; `metrics` is excluded — it
    /// goes to `results/<name>.metrics.json`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("scheme", self.scheme.as_str());
        o.set("structure", self.structure.as_str());
        o.set("threads", self.threads);
        o.set("duration_ms", self.duration_ms);
        o.set("total_ops", self.total_ops);
        o.set("ops_per_sec", self.ops_per_sec);
        o.set("tx_begun", self.tx_begun);
        o.set("tx_committed", self.tx_committed);
        o.set("aborts_conflict", self.aborts_conflict);
        o.set("aborts_capacity", self.aborts_capacity);
        o.set("aborts_explicit", self.aborts_explicit);
        o.set("aborts_preempted", self.aborts_preempted);
        o.set("aborts_other", self.aborts_other);
        o.set("fences", self.fences);
        o.set("loads", self.loads);
        o.set("stores", self.stores);
        o.set("tx_loads", self.tx_loads);
        o.set("tx_stores", self.tx_stores);
        o.set("cas_ops", self.cas_ops);
        o.set("context_switches", self.context_switches);
        o.set("avg_splits_per_op", self.avg_splits_per_op);
        o.set("avg_split_length", self.avg_split_length);
        o.set("slow_ops", self.slow_ops);
        o.set("scans", self.scans);
        o.set("avg_scan_depth", self.avg_scan_depth);
        o.set("scan_retries", self.scan_retries);
        o.set("scan_penalty_pct", self.scan_penalty_pct);
        o.set("garbage", self.garbage);
        o.set("live_words", self.live_words);
        o
    }
}

/// Executes one run.
pub fn run(config: &RunConfig) -> RunResult {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: config.spec.heap_words(config.duration_ms),
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(
        heap.clone(),
        HtmConfig::default(),
        config.threads,
    ));
    let factory = SchemeFactory::builder(config.scheme)
        .engine(engine.clone())
        .max_threads(config.threads)
        .reclaim_config(config.reclaim_config.clone())
        .st_config(config.st_config.clone())
        // Guard slots derived from the structures' declared requirements
        // (the matrix maximum, so layout is identical for every row).
        .guard_requirement(st_structures::max_guard_requirement())
        .build();
    let instance = Arc::new(StructureInstance::build(&config.spec, &heap, config.seed));

    let workers: Vec<BenchWorker> = (0..config.threads)
        .map(|t| BenchWorker::new(factory.thread(t), config.spec.clone(), instance.clone()))
        .collect();

    let mut workers = if config.warmup_ms > 0 {
        let warm = Simulator::new(SimConfig::haswell_ms(config.warmup_ms, config.seed));
        let (_, mut workers) = warm.run(workers);
        engine.reset_stats();
        for w in &mut workers {
            w.reset_stats();
        }
        workers
    } else {
        workers
    };
    // Teardown (and garbage sampling, if requested) cover only the
    // measured run — a warm-up deadline must never drain deferred frees.
    let duration_cycles = ms_to_cycles(config.duration_ms);
    let sample_points: Vec<u64> = (1..=config.garbage_samples as u64)
        .map(|k| k * duration_cycles / config.garbage_samples.max(1) as u64)
        .collect();
    for w in &mut workers {
        w.arm_teardown();
        if !sample_points.is_empty() {
            w.sample_garbage_at(sample_points.clone());
        }
    }
    let sim = Simulator::new(
        SimConfig::haswell_ms(config.duration_ms, config.seed.wrapping_add(1))
            .with_faults(config.faults.clone()),
    );
    let (report, workers) = sim.run(workers);

    // Aggregate scheme statistics — once through the unified registry
    // (every scheme reports through SchemeThread::report_metrics) and once
    // into the legacy flat summary.
    let mut metrics = MetricsRegistry::new();
    let mut st_total = StThreadStats::default();
    let mut garbage = 0;
    for w in &workers {
        w.executor().report_metrics(&mut metrics);
        if let Some(s) = w.executor().st_stats() {
            st_total = st_total.merged(&s);
        }
        garbage += w.garbage_at_deadline();
    }
    // `report_metrics` ran after teardown drained the limbo lists; restore
    // the documented "at the deadline" semantics of the gauge.
    metrics.set("reclaim.outstanding_garbage", garbage);
    for k in 0..sample_points.len() {
        let total: u64 = workers
            .iter()
            .map(|w| w.garbage_samples().get(k).copied().unwrap_or(0))
            .sum();
        metrics.set(&format!("reclaim.garbage_ts.{:02}", k + 1), total);
    }
    if !config.faults.is_empty() {
        metrics.add("fault.stalls", report.faults.stalls);
        metrics.add("fault.stall_cycles", report.faults.stall_cycles);
        metrics.add("fault.kills", report.faults.kills);
        metrics.add("fault.storm_switches", report.faults.storm_switches);
    }
    let htm: HtmStats = engine.total_stats();
    htm.report(&mut metrics);
    metrics.add("run.total_ops", report.total_ops());
    metrics.add("machine.fences", report.sum_counter(|c| c.fences));
    metrics.add("machine.loads", report.sum_counter(|c| c.loads));
    metrics.add("machine.stores", report.sum_counter(|c| c.stores));
    metrics.add("machine.cas_ops", report.sum_counter(|c| c.cas_ops));
    metrics.add(
        "machine.context_switches",
        report.sum_counter(|c| c.context_switches),
    );
    metrics.set("heap.live_words", heap.stats().alloc.live_words);
    let per_thread: Vec<PerThread> = report
        .threads
        .iter()
        .zip(&workers)
        .enumerate()
        .map(|(thread, (t, w))| PerThread {
            thread,
            ops: t.ops,
            busy_cycles: t.final_time,
            garbage: w.garbage_at_deadline(),
        })
        .collect();
    let busy_cycles: u64 = report.threads.iter().map(|t| t.final_time).sum();
    let scan_penalty_pct = if busy_cycles > 0 {
        100.0 * st_total.scan_cycles as f64 / busy_cycles as f64
    } else {
        0.0
    };

    RunResult {
        scheme: config.scheme.name().to_string(),
        structure: config.spec.structure.name().to_string(),
        threads: config.threads,
        duration_ms: config.duration_ms,
        total_ops: report.total_ops(),
        ops_per_sec: report.ops_per_second(),
        tx_begun: htm.begun,
        tx_committed: htm.committed,
        aborts_conflict: htm.aborts_conflict,
        aborts_capacity: htm.aborts_capacity,
        aborts_explicit: htm.aborts_explicit,
        aborts_preempted: htm.aborts_preempted,
        aborts_other: htm.aborts_other,
        fences: report.sum_counter(|c| c.fences),
        loads: report.sum_counter(|c| c.loads),
        stores: report.sum_counter(|c| c.stores),
        tx_loads: report.sum_counter(|c| c.tx_loads),
        tx_stores: report.sum_counter(|c| c.tx_stores),
        cas_ops: report.sum_counter(|c| c.cas_ops),
        context_switches: report.sum_counter(|c| c.context_switches),
        avg_splits_per_op: st_total.avg_splits_per_op(),
        avg_split_length: st_total.avg_segment_length(),
        slow_ops: st_total.slow_ops,
        scans: st_total.scans,
        avg_scan_depth: st_total.avg_scan_depth(),
        scan_retries: st_total.scan_retries,
        scan_penalty_pct,
        garbage,
        live_words: heap.stats().alloc.live_words,
        per_thread,
        metrics,
    }
}

/// Virtual milliseconds to cycles (used by tests and the micro benches).
pub fn ms_to_cycles(ms: u64) -> u64 {
    ms * (CYCLES_PER_SECOND / 1000)
}
