//! `st-bench check`: the bounded schedule explorer (st-check) from the
//! command line.
//!
//! ```text
//! st-bench check [--structures a,b] [--schemes A,B] [--mode dfs|random]
//!                [--depth N] [--preemptions N] [--percent N] [--schedules N]
//!                [--threads N] [--ops N] [--keys N] [--seed N]
//!                [--mutate none|splits|hazard|skipfree|dretire|nbrskip|hyadrop]
//!                [--replay TOKEN]
//! ```
//!
//! With `--replay`, runs exactly one schedule from a token printed by an
//! earlier failing exploration and reports what the oracles saw. Without
//! it, explores every requested structure × scheme pair and exits
//! non-zero if any schedule violates an oracle.

use st_check::{
    check, replay, CheckConfig, ExploreConfig, ExploreMode, Mutation, ReplayToken, Structure,
};
use st_obs::MetricsRegistry;
use st_reclaim::Scheme;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: st-bench check [--structures list,hash,queue,skiplist,rbtree] \
         [--schemes StackTrack,Epoch] [--mode dfs|random] [--depth N] \
         [--preemptions N] [--percent N] [--schedules N] [--threads N] \
         [--ops N] [--keys N] [--seed N] \
         [--mutate none|splits|hazard|skipfree|dretire|nbrskip|hyadrop] \
         [--replay TOKEN]"
    );
    ExitCode::from(2)
}

struct CheckOpts {
    structures: Vec<Structure>,
    schemes: Vec<Scheme>,
    dfs: bool,
    depth: u64,
    preemptions: usize,
    percent: u32,
    schedules: u64,
    threads: usize,
    ops: usize,
    keys: u64,
    seed: u64,
    mutation: Mutation,
    replay_token: Option<String>,
}

impl Default for CheckOpts {
    fn default() -> Self {
        let base = CheckConfig::default();
        CheckOpts {
            structures: Structure::all().to_vec(),
            schemes: vec![Scheme::StackTrack, Scheme::Epoch],
            dfs: true,
            depth: 12,
            preemptions: 2,
            percent: 25,
            schedules: 300,
            threads: base.threads,
            ops: base.ops_per_thread,
            keys: base.key_range,
            seed: base.seed,
            mutation: Mutation::None,
            replay_token: None,
        }
    }
}

/// Entry point for `st-bench check`.
pub fn run(args: &[String]) -> ExitCode {
    let mut opts = CheckOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let int = |what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("{what} takes an integer, got {value:?}"))
        };
        let result: Result<(), String> = match flag {
            "--structures" => value
                .split(',')
                .map(|s| s.trim().parse())
                .collect::<Result<Vec<Structure>, _>>()
                .map(|v| opts.structures = v),
            "--schemes" => value
                .split(',')
                .map(|s| s.trim().parse())
                .collect::<Result<Vec<Scheme>, _>>()
                .map(|v| opts.schemes = v),
            "--mode" => match value.as_str() {
                "dfs" => {
                    opts.dfs = true;
                    Ok(())
                }
                "random" => {
                    opts.dfs = false;
                    Ok(())
                }
                other => Err(format!("--mode takes dfs or random, got {other:?}")),
            },
            "--depth" => int(flag).map(|v| opts.depth = v),
            "--preemptions" => int(flag).map(|v| opts.preemptions = v as usize),
            "--percent" => int(flag).map(|v| opts.percent = v as u32),
            "--schedules" => int(flag).map(|v| opts.schedules = v),
            "--threads" => int(flag).map(|v| opts.threads = v as usize),
            "--ops" => int(flag).map(|v| opts.ops = v as usize),
            "--keys" => int(flag).map(|v| opts.keys = v),
            "--seed" => int(flag).map(|v| opts.seed = v),
            "--mutate" => value.parse().map(|m| opts.mutation = m),
            "--replay" => {
                opts.replay_token = Some(value.clone());
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = result {
            eprintln!("{e}");
            return usage();
        }
        i += 2;
    }

    if let Some(token) = opts.replay_token {
        return run_replay(&token);
    }
    explore(&opts)
}

fn run_replay(token: &str) -> ExitCode {
    let token: ReplayToken = match token.parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bad replay token: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = replay(&token);
    println!(
        "replay {token}: {} decisions, {} scans ({} consistency restarts)",
        outcome.decisions, outcome.scans, outcome.scan_retries
    );
    if outcome.violations.is_empty() {
        println!("replay: no violations");
        ExitCode::SUCCESS
    } else {
        for v in &outcome.violations {
            println!("violation: {v}");
        }
        ExitCode::FAILURE
    }
}

fn explore(opts: &CheckOpts) -> ExitCode {
    let explore = ExploreConfig {
        mode: if opts.dfs {
            ExploreMode::Dfs {
                depth: opts.depth,
                preemption_bound: opts.preemptions,
            }
        } else {
            ExploreMode::Random {
                percent: opts.percent,
            }
        },
        max_schedules: opts.schedules,
    };
    let mut metrics = MetricsRegistry::new();
    let mut failed = false;
    for &structure in &opts.structures {
        for &scheme in &opts.schemes {
            let config = CheckConfig {
                structure,
                scheme,
                threads: opts.threads,
                ops_per_thread: opts.ops,
                key_range: opts.keys,
                seed: opts.seed,
                mutation: opts.mutation,
                ..CheckConfig::default()
            };
            let report = check(&config, &explore);
            metrics.add("check.schedules", report.schedules_run);
            metrics.add("check.decisions", report.total_decisions);
            match &report.failure {
                None => {
                    println!(
                        "check {structure}/{scheme}: {} schedules, {} decisions: pass",
                        report.schedules_run, report.total_decisions
                    );
                }
                Some(f) => {
                    failed = true;
                    metrics.add("check.failures", 1);
                    println!(
                        "check {structure}/{scheme}: FAILED after {} schedules \
                         ({} deviations before shrinking)",
                        report.schedules_run, f.original_deviations
                    );
                    for v in &f.violations {
                        println!("  violation: {v}");
                    }
                    println!("  replay with: st-bench check --replay {}", f.token);
                }
            }
        }
    }
    println!(
        "check: {} schedules / {} decisions explored, {} failing config(s)",
        metrics.counter("check.schedules"),
        metrics.counter("check.decisions"),
        metrics.counter("check.failures"),
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
