//! Benchmark workloads: the paper's four data-structure configurations,
//! driven as discrete-event-simulator workers.

use st_machine::{Cpu, StepOutcome, Worker};
use st_reclaim::SchemeThread;
use st_simheap::Heap;
use st_structures::{hash, list, queue, rbtree, skiplist};
use stacktrack::OpBody;
use std::sync::Arc;

/// Which structure a workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// Harris list, 5 K keys (Figure 1a).
    List,
    /// Fraser-Harris skip list, 100 K keys (Figure 1b).
    SkipList,
    /// Michael-Scott queue (Figure 2a).
    Queue,
    /// Hash table, 10 K keys (Figure 2b).
    Hash,
    /// Red-black tree (the paper's Algorithm 3 example; extra workload).
    RbTree,
}

impl StructureKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::List => "List",
            StructureKind::SkipList => "SkipList",
            StructureKind::Queue => "Queue",
            StructureKind::Hash => "Hash",
            StructureKind::RbTree => "RbTree",
        }
    }
}

/// A workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Structure under test.
    pub structure: StructureKind,
    /// Initial number of elements.
    pub initial_size: u64,
    /// Keys drawn uniformly from `1..=key_range`.
    pub key_range: u64,
    /// Percentage of operations that mutate (split evenly between insert
    /// and delete, or enqueue and dequeue).
    pub mutation_pct: u32,
    /// Hash-table bucket count (ignored elsewhere).
    pub buckets: usize,
}

impl WorkloadSpec {
    /// The paper's list configuration: 5 K nodes, 20 % mutations.
    pub fn paper_list() -> Self {
        Self {
            structure: StructureKind::List,
            initial_size: 5_000,
            key_range: 10_000,
            mutation_pct: 20,
            buckets: 1,
        }
    }

    /// The paper's skip-list configuration: 100 K nodes, 20 % mutations.
    pub fn paper_skiplist() -> Self {
        Self {
            structure: StructureKind::SkipList,
            initial_size: 100_000,
            key_range: 200_000,
            mutation_pct: 20,
            buckets: 1,
        }
    }

    /// The paper's queue configuration: 20 % mutations.
    pub fn paper_queue() -> Self {
        Self {
            structure: StructureKind::Queue,
            initial_size: 256,
            key_range: 1 << 32,
            mutation_pct: 20,
            buckets: 1,
        }
    }

    /// Extra workload: red-black tree, 10 K keys, 10 % mutations
    /// (read-dominated, as tree indexes usually are).
    pub fn extra_rbtree() -> Self {
        Self {
            structure: StructureKind::RbTree,
            initial_size: 10_000,
            key_range: 20_000,
            mutation_pct: 10,
            buckets: 1,
        }
    }

    /// The paper's hash configuration: 10 K nodes, 20 % mutations.
    pub fn paper_hash() -> Self {
        Self {
            structure: StructureKind::Hash,
            initial_size: 10_000,
            key_range: 20_000,
            mutation_pct: 20,
            buckets: 4_096,
        }
    }

    /// A scaled-down variant for fast test runs.
    pub fn shrunk(mut self, factor: u64) -> Self {
        self.initial_size = (self.initial_size / factor).max(8);
        self.key_range = (self.key_range / factor).max(16);
        self
    }

    /// Words of simulated heap this workload needs, with garbage headroom.
    pub fn heap_words(&self, duration_ms: u64) -> u64 {
        let per_node = match self.structure {
            StructureKind::SkipList | StructureKind::RbTree => 8,
            _ => 4,
        };
        // Sets hold at most one node per key; the queue's population is
        // bounded by its churn, not the value range.
        let resident_nodes = match self.structure {
            StructureKind::Queue => self.initial_size + 1,
            _ => self.key_range,
        };
        let base = resident_nodes * per_node + self.buckets as u64 * 8;
        // Leak headroom for the NoReclaim baseline.
        let headroom = 4_000_000 * duration_ms.max(1) / 10;
        (base * 2 + headroom + (1 << 16)).next_power_of_two()
    }
}

/// The structure instance shared by all workers of one run.
pub enum StructureInstance {
    /// A Harris list.
    List(list::ListShape),
    /// A skip list.
    SkipList(skiplist::SkipShape),
    /// A queue.
    Queue(queue::QueueShape),
    /// A hash table.
    Hash(hash::HashShape),
    /// A red-black tree.
    RbTree(rbtree::RbShape),
}

impl StructureInstance {
    /// Builds and pre-populates the structure (untimed).
    pub fn build(spec: &WorkloadSpec, heap: &Arc<Heap>, seed: u64) -> Self {
        let mut rng = st_machine::Pcg32::new_stream(seed, 0x5742);
        match spec.structure {
            StructureKind::List => {
                let shape = list::ListShape::new_untimed(heap);
                let mut inserted = 0;
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    if shape.insert_untimed(heap, key) {
                        inserted += 1;
                    }
                }
                StructureInstance::List(shape)
            }
            StructureKind::SkipList => {
                let shape = skiplist::SkipShape::new_untimed(heap);
                let mut inserted = 0;
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    if shape.insert_untimed(heap, key, &mut rng) {
                        inserted += 1;
                    }
                }
                StructureInstance::SkipList(shape)
            }
            StructureKind::Queue => {
                let shape = queue::QueueShape::new_untimed(heap);
                for i in 0..spec.initial_size {
                    shape.enqueue_untimed(heap, i + 1);
                }
                StructureInstance::Queue(shape)
            }
            StructureKind::Hash => {
                let shape = hash::HashShape::new_untimed(heap, spec.buckets);
                let mut inserted = 0;
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    if shape.insert_untimed(heap, key) {
                        inserted += 1;
                    }
                }
                StructureInstance::Hash(shape)
            }
            StructureKind::RbTree => {
                // No untimed populate for the tree (balance bookkeeping);
                // build it through a throwaway writer on a scratch cpu.
                let shape = rbtree::RbShape::new_untimed(heap);
                let mut inserted = 0;
                let mut cpu = scratch_cpu();
                let mut writer = scratch_writer(heap);
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    let mut body = rbtree::insert_body(shape, key);
                    if writer.run_op(&mut cpu, rbtree::OP_INSERT, rbtree::RB_SLOTS, &mut body) == 1
                    {
                        inserted += 1;
                    }
                }
                StructureInstance::RbTree(shape)
            }
        }
    }
}

/// A scratch CPU for untimed-ish setup work.
fn scratch_cpu() -> Cpu {
    use st_machine::{cpu::ActivityBoard, CostModel, HwContext, Topology};
    let topo = Topology::haswell();
    Cpu::new(
        0,
        HwContext::new(&topo, 0),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        0x5e7,
    )
}

/// A leak-free executor for setup mutations (population is untimed, so
/// the scheme does not matter; NoReclaim never frees, which is safe).
fn scratch_writer(heap: &Arc<Heap>) -> st_reclaim::none::NoReclaimThread {
    st_reclaim::none::NoReclaimThread::new(heap.clone())
}

/// One benchmark thread: picks operations per the spec and drives them
/// through its scheme executor, one basic block per simulator step.
pub struct BenchWorker {
    th: Box<dyn SchemeThread>,
    spec: WorkloadSpec,
    instance: Arc<StructureInstance>,
    current: Option<Box<OpBody<'static>>>,
    ops_done: u64,
}

impl BenchWorker {
    /// Creates a worker over a scheme executor and a shared structure.
    pub fn new(
        th: Box<dyn SchemeThread>,
        spec: WorkloadSpec,
        instance: Arc<StructureInstance>,
    ) -> Self {
        Self {
            th,
            spec,
            instance,
            current: None,
            ops_done: 0,
        }
    }

    /// The executor (for statistics extraction after the run).
    pub fn executor(&self) -> &dyn SchemeThread {
        self.th.as_ref()
    }

    /// Mutable executor access (teardown).
    #[allow(dead_code)]
    pub fn executor_mut(&mut self) -> &mut dyn SchemeThread {
        self.th.as_mut()
    }

    /// Operations completed by this worker.
    #[allow(dead_code)]
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Resets measurement statistics after a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.ops_done = 0;
        self.th.reset_stats();
    }

    fn pick_op(&self, cpu: &mut Cpu) -> (u32, usize, Box<OpBody<'static>>) {
        let roll = cpu.rng.below(100) as u32;
        let key = cpu.rng.below(self.spec.key_range) + 1;
        let mutate = roll < self.spec.mutation_pct;
        let second_half = roll % 2 == 1;
        match &*self.instance {
            StructureInstance::List(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        list::OP_CONTAINS,
                        list::LIST_SLOTS,
                        Box::new(list::contains_body(shape, key)),
                    )
                } else if second_half {
                    (
                        list::OP_INSERT,
                        list::LIST_SLOTS,
                        Box::new(list::insert_body(shape, key)),
                    )
                } else {
                    (
                        list::OP_DELETE,
                        list::LIST_SLOTS,
                        Box::new(list::delete_body(shape, key)),
                    )
                }
            }
            StructureInstance::SkipList(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        skiplist::OP_CONTAINS,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::contains_body(shape, key)),
                    )
                } else if second_half {
                    (
                        skiplist::OP_INSERT,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::insert_body(shape, key)),
                    )
                } else {
                    (
                        skiplist::OP_DELETE,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::delete_body(shape, key)),
                    )
                }
            }
            StructureInstance::Queue(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        queue::OP_PEEK,
                        queue::QUEUE_SLOTS,
                        Box::new(queue::peek_body(shape)),
                    )
                } else if second_half {
                    (
                        queue::OP_ENQUEUE,
                        queue::QUEUE_SLOTS,
                        Box::new(queue::enqueue_body(shape, key)),
                    )
                } else {
                    (
                        queue::OP_DEQUEUE,
                        queue::QUEUE_SLOTS,
                        Box::new(queue::dequeue_body(shape)),
                    )
                }
            }
            StructureInstance::Hash(shape) => {
                if !mutate {
                    (
                        list::OP_CONTAINS,
                        list::LIST_SLOTS,
                        Box::new(hash::contains_body(shape, key)),
                    )
                } else if second_half {
                    (
                        list::OP_INSERT,
                        list::LIST_SLOTS,
                        Box::new(hash::insert_body(shape, key)),
                    )
                } else {
                    (
                        list::OP_DELETE,
                        list::LIST_SLOTS,
                        Box::new(hash::delete_body(shape, key)),
                    )
                }
            }
            StructureInstance::RbTree(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        rbtree::OP_SEARCH,
                        rbtree::RB_SLOTS,
                        Box::new(rbtree::search_body(shape, key)),
                    )
                } else if second_half {
                    (
                        rbtree::OP_INSERT,
                        rbtree::RB_SLOTS,
                        Box::new(rbtree::insert_body(shape, key)),
                    )
                } else {
                    (
                        rbtree::OP_DELETE,
                        rbtree::RB_SLOTS,
                        Box::new(rbtree::delete_body(shape, key)),
                    )
                }
            }
        }
    }
}

impl Worker for BenchWorker {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        if self.th.idle_work_pending() {
            self.th.step_idle(cpu);
            return StepOutcome::Progress;
        }
        if self.current.is_none() {
            let (op_id, slots, body) = self.pick_op(cpu);
            self.th.begin_op(cpu, op_id, slots);
            self.current = Some(body);
            return StepOutcome::Progress;
        }
        let body = self.current.as_mut().expect("current body");
        match self.th.step_op(cpu, body.as_mut()) {
            Some(_) => {
                self.current = None;
                self.ops_done += 1;
                StepOutcome::OpDone
            }
            None => StepOutcome::Progress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_section_6() {
        let list = WorkloadSpec::paper_list();
        assert_eq!(list.initial_size, 5_000);
        assert_eq!(list.mutation_pct, 20);
        let sl = WorkloadSpec::paper_skiplist();
        assert_eq!(sl.initial_size, 100_000);
        let hash = WorkloadSpec::paper_hash();
        assert_eq!(hash.initial_size, 10_000);
        assert!(hash.buckets > 1);
    }

    #[test]
    fn heap_sizing_covers_the_population() {
        for spec in [
            WorkloadSpec::paper_list(),
            WorkloadSpec::paper_skiplist(),
            WorkloadSpec::paper_hash(),
            WorkloadSpec::paper_queue(),
            WorkloadSpec::extra_rbtree(),
        ] {
            let words = spec.heap_words(10);
            assert!(words.is_power_of_two());
            // Must at least hold the resident nodes twice over.
            let resident = match spec.structure {
                StructureKind::Queue => spec.initial_size,
                _ => spec.key_range,
            };
            assert!(words > resident * 2, "{:?} undersized", spec.structure);
            // And stay far below the address-space sanity bound.
            assert!(words < 1 << 28, "{:?} oversized", spec.structure);
        }
    }

    #[test]
    fn shrunk_keeps_proportions() {
        let s = WorkloadSpec::paper_skiplist().shrunk(10);
        assert_eq!(s.initial_size, 10_000);
        assert_eq!(s.key_range, 20_000);
        assert_eq!(s.mutation_pct, 20);
        // Never shrinks to zero.
        let tiny = WorkloadSpec::paper_list().shrunk(1_000_000);
        assert!(tiny.initial_size >= 8);
        assert!(tiny.key_range >= 16);
    }

    #[test]
    fn populated_instances_have_the_requested_size() {
        let spec = WorkloadSpec::paper_list().shrunk(100);
        let heap = Arc::new(Heap::new(st_simheap::HeapConfig {
            capacity_words: spec.heap_words(1),
            ..st_simheap::HeapConfig::default()
        }));
        match StructureInstance::build(&spec, &heap, 1) {
            StructureInstance::List(shape) => {
                assert_eq!(
                    shape.collect_keys_untimed(&heap).len() as u64,
                    spec.initial_size
                );
            }
            _ => unreachable!(),
        }
    }
}
