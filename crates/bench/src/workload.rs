//! Benchmark workloads: the paper's four data-structure configurations,
//! driven as discrete-event-simulator workers.

use st_machine::{Cpu, StepOutcome, Worker};
use st_reclaim::SchemeThread;
use st_simheap::Heap;
use st_structures::{hash, list, queue, rbtree, skiplist};
use stacktrack::OpBody;
use std::sync::Arc;

/// Which structure a workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// Harris list, 5 K keys (Figure 1a).
    List,
    /// Fraser-Harris skip list, 100 K keys (Figure 1b).
    SkipList,
    /// Michael-Scott queue (Figure 2a).
    Queue,
    /// Hash table, 10 K keys (Figure 2b).
    Hash,
    /// Red-black tree (the paper's Algorithm 3 example; extra workload).
    RbTree,
}

impl StructureKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::List => "List",
            StructureKind::SkipList => "SkipList",
            StructureKind::Queue => "Queue",
            StructureKind::Hash => "Hash",
            StructureKind::RbTree => "RbTree",
        }
    }
}

impl std::fmt::Display for StructureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StructureKind {
    type Err = String;

    /// Parses the display name, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "list" => Ok(StructureKind::List),
            "skiplist" => Ok(StructureKind::SkipList),
            "queue" => Ok(StructureKind::Queue),
            "hash" => Ok(StructureKind::Hash),
            "rbtree" => Ok(StructureKind::RbTree),
            _ => Err(format!(
                "unknown structure {s:?} (expected List, SkipList, Queue, Hash, or RbTree)"
            )),
        }
    }
}

/// A workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Structure under test.
    pub structure: StructureKind,
    /// Initial number of elements.
    pub initial_size: u64,
    /// Keys drawn uniformly from `1..=key_range`.
    pub key_range: u64,
    /// Percentage of operations that mutate (split evenly between insert
    /// and delete, or enqueue and dequeue).
    pub mutation_pct: u32,
    /// Hash-table bucket count (ignored elsewhere).
    pub buckets: usize,
}

/// Validating constructor for [`WorkloadSpec`].
///
/// Obtained from [`WorkloadSpec::builder`]; [`WorkloadSpecBuilder::build`]
/// rejects inconsistent configurations instead of letting them skew a
/// benchmark silently (e.g. a key range smaller than the initial
/// population can never finish populating).
#[derive(Debug, Clone)]
pub struct WorkloadSpecBuilder {
    structure: StructureKind,
    initial_size: u64,
    key_range: u64,
    mutation_pct: u32,
    buckets: Option<usize>,
}

impl WorkloadSpecBuilder {
    /// Initial number of elements (default 1024).
    pub fn initial_size(mut self, initial_size: u64) -> Self {
        self.initial_size = initial_size;
        self
    }

    /// Keys drawn uniformly from `1..=key_range` (default 2048).
    pub fn key_range(mut self, key_range: u64) -> Self {
        self.key_range = key_range;
        self
    }

    /// Percentage of mutating operations (default 20).
    pub fn mutation_pct(mut self, mutation_pct: u32) -> Self {
        self.mutation_pct = mutation_pct;
        self
    }

    /// Hash-table bucket count; only valid for [`StructureKind::Hash`].
    pub fn buckets(mut self, buckets: usize) -> Self {
        self.buckets = Some(buckets);
        self
    }

    /// Validates and constructs the spec.
    ///
    /// # Errors
    ///
    /// - `key_range < initial_size`: the population could never fit.
    /// - `mutation_pct > 100`: not a percentage.
    /// - `buckets` set on a non-hash structure, or zero/unset for a hash.
    pub fn build(self) -> Result<WorkloadSpec, String> {
        if self.key_range < self.initial_size {
            return Err(format!(
                "key_range ({}) must be >= initial_size ({})",
                self.key_range, self.initial_size
            ));
        }
        if self.mutation_pct > 100 {
            return Err(format!(
                "mutation_pct ({}) must be <= 100",
                self.mutation_pct
            ));
        }
        let buckets = match (self.structure, self.buckets) {
            (StructureKind::Hash, Some(0)) => {
                return Err("a hash table needs at least one bucket".into());
            }
            (StructureKind::Hash, Some(b)) => b,
            (StructureKind::Hash, None) => {
                return Err("StructureKind::Hash requires .buckets(n)".into());
            }
            (other, Some(_)) => {
                return Err(format!("buckets is only meaningful for Hash, not {other}"));
            }
            (_, None) => 1,
        };
        Ok(WorkloadSpec {
            structure: self.structure,
            initial_size: self.initial_size,
            key_range: self.key_range,
            mutation_pct: self.mutation_pct,
            buckets,
        })
    }
}

impl WorkloadSpec {
    /// Re-checks the builder invariants on an existing spec (the fields
    /// are public, so a spec can drift after construction).
    pub fn validate(&self) -> Result<(), String> {
        let mut b = Self::builder(self.structure)
            .initial_size(self.initial_size)
            .key_range(self.key_range)
            .mutation_pct(self.mutation_pct);
        if self.structure == StructureKind::Hash {
            b = b.buckets(self.buckets);
        }
        b.build().map(|_| ())
    }
}

impl WorkloadSpec {
    /// Starts building a spec for `structure`.
    pub fn builder(structure: StructureKind) -> WorkloadSpecBuilder {
        WorkloadSpecBuilder {
            structure,
            initial_size: 1024,
            key_range: 2048,
            mutation_pct: 20,
            buckets: None,
        }
    }

    /// The paper's list configuration: 5 K nodes, 20 % mutations.
    pub fn paper_list() -> Self {
        Self::builder(StructureKind::List)
            .initial_size(5_000)
            .key_range(10_000)
            .mutation_pct(20)
            .build()
            .expect("paper preset is valid")
    }

    /// The paper's skip-list configuration: 100 K nodes, 20 % mutations.
    pub fn paper_skiplist() -> Self {
        Self::builder(StructureKind::SkipList)
            .initial_size(100_000)
            .key_range(200_000)
            .mutation_pct(20)
            .build()
            .expect("paper preset is valid")
    }

    /// The paper's queue configuration: 20 % mutations.
    pub fn paper_queue() -> Self {
        Self::builder(StructureKind::Queue)
            .initial_size(256)
            .key_range(1 << 32)
            .mutation_pct(20)
            .build()
            .expect("paper preset is valid")
    }

    /// Extra workload: red-black tree, 10 K keys, 10 % mutations
    /// (read-dominated, as tree indexes usually are).
    pub fn extra_rbtree() -> Self {
        Self::builder(StructureKind::RbTree)
            .initial_size(10_000)
            .key_range(20_000)
            .mutation_pct(10)
            .build()
            .expect("paper preset is valid")
    }

    /// The paper's hash configuration: 10 K nodes, 20 % mutations.
    pub fn paper_hash() -> Self {
        Self::builder(StructureKind::Hash)
            .initial_size(10_000)
            .key_range(20_000)
            .mutation_pct(20)
            .buckets(4_096)
            .build()
            .expect("paper preset is valid")
    }

    /// A scaled-down variant for fast test runs.
    pub fn shrunk(mut self, factor: u64) -> Self {
        self.initial_size = (self.initial_size / factor).max(8);
        self.key_range = (self.key_range / factor).max(16);
        self
    }

    /// Words of simulated heap this workload needs, with garbage headroom.
    pub fn heap_words(&self, duration_ms: u64) -> u64 {
        let per_node = match self.structure {
            StructureKind::SkipList | StructureKind::RbTree => 8,
            _ => 4,
        };
        // Sets hold at most one node per key; the queue's population is
        // bounded by its churn, not the value range.
        let resident_nodes = match self.structure {
            StructureKind::Queue => self.initial_size + 1,
            _ => self.key_range,
        };
        let base = resident_nodes * per_node + self.buckets as u64 * 8;
        // Leak headroom for the NoReclaim baseline.
        let headroom = 4_000_000 * duration_ms.max(1) / 10;
        (base * 2 + headroom + (1 << 16)).next_power_of_two()
    }
}

/// The structure instance shared by all workers of one run.
pub enum StructureInstance {
    /// A Harris list.
    List(list::ListShape),
    /// A skip list.
    SkipList(skiplist::SkipShape),
    /// A queue.
    Queue(queue::QueueShape),
    /// A hash table.
    Hash(hash::HashShape),
    /// A red-black tree.
    RbTree(rbtree::RbShape),
}

impl StructureInstance {
    /// Builds and pre-populates the structure (untimed).
    pub fn build(spec: &WorkloadSpec, heap: &Arc<Heap>, seed: u64) -> Self {
        let mut rng = st_machine::Pcg32::new_stream(seed, 0x5742);
        match spec.structure {
            StructureKind::List => {
                let shape = list::ListShape::new_untimed(heap);
                let mut inserted = 0;
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    if shape.insert_untimed(heap, key) {
                        inserted += 1;
                    }
                }
                StructureInstance::List(shape)
            }
            StructureKind::SkipList => {
                let shape = skiplist::SkipShape::new_untimed(heap);
                let mut inserted = 0;
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    if shape.insert_untimed(heap, key, &mut rng) {
                        inserted += 1;
                    }
                }
                StructureInstance::SkipList(shape)
            }
            StructureKind::Queue => {
                let shape = queue::QueueShape::new_untimed(heap);
                for i in 0..spec.initial_size {
                    shape.enqueue_untimed(heap, i + 1);
                }
                StructureInstance::Queue(shape)
            }
            StructureKind::Hash => {
                let shape = hash::HashShape::new_untimed(heap, spec.buckets);
                let mut inserted = 0;
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    if shape.insert_untimed(heap, key) {
                        inserted += 1;
                    }
                }
                StructureInstance::Hash(shape)
            }
            StructureKind::RbTree => {
                // No untimed populate for the tree (balance bookkeeping);
                // build it through a throwaway writer on a scratch cpu.
                let shape = rbtree::RbShape::new_untimed(heap);
                let mut inserted = 0;
                let mut cpu = scratch_cpu();
                let mut writer = scratch_writer(heap);
                while inserted < spec.initial_size {
                    let key = rng.below(spec.key_range) + 1;
                    let mut body = rbtree::insert_body(shape, key);
                    if writer.run_op(&mut cpu, rbtree::OP_INSERT, rbtree::RB_SLOTS, &mut body) == 1
                    {
                        inserted += 1;
                    }
                }
                StructureInstance::RbTree(shape)
            }
        }
    }
}

/// A scratch CPU for untimed-ish setup work.
fn scratch_cpu() -> Cpu {
    use st_machine::{cpu::ActivityBoard, CostModel, HwContext, Topology};
    let topo = Topology::haswell();
    Cpu::new(
        0,
        HwContext::new(&topo, 0),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        0x5e7,
    )
}

/// A leak-free executor for setup mutations (population is untimed, so
/// the scheme does not matter; NoReclaim never frees, which is safe).
fn scratch_writer(heap: &Arc<Heap>) -> st_reclaim::none::NoReclaimThread {
    st_reclaim::none::NoReclaimThread::new(heap.clone())
}

/// One benchmark thread: picks operations per the spec and drives them
/// through its scheme executor, one basic block per simulator step.
pub struct BenchWorker {
    th: Box<dyn SchemeThread>,
    spec: WorkloadSpec,
    instance: Arc<StructureInstance>,
    current: Option<Box<OpBody<'static>>>,
    ops_done: u64,
    /// Virtual times at which to sample `outstanding_garbage` (sorted).
    sample_points: Vec<st_machine::Cycles>,
    /// Samples taken so far; backfilled with the final value at `finish`.
    garbage_samples: Vec<u64>,
    /// Outstanding garbage at the deadline, captured in `finish` *before*
    /// any teardown drains it.
    garbage_at_deadline: Option<u64>,
    /// Run the executor's teardown in `finish` (armed for the measured
    /// run only, never for warm-up).
    teardown_armed: bool,
}

impl BenchWorker {
    /// Creates a worker over a scheme executor and a shared structure.
    pub fn new(
        th: Box<dyn SchemeThread>,
        spec: WorkloadSpec,
        instance: Arc<StructureInstance>,
    ) -> Self {
        Self {
            th,
            spec,
            instance,
            current: None,
            ops_done: 0,
            sample_points: Vec::new(),
            garbage_samples: Vec::new(),
            garbage_at_deadline: None,
            teardown_armed: false,
        }
    }

    /// Requests an `outstanding_garbage` sample each time this worker's
    /// clock crosses one of `points` (must be sorted ascending). A worker
    /// frozen by a fault keeps its last value: `finish` backfills.
    pub fn sample_garbage_at(&mut self, points: Vec<st_machine::Cycles>) {
        self.sample_points = points;
        self.garbage_samples.clear();
    }

    /// Arms the end-of-run teardown (drains the scheme's deferred frees so
    /// free-latency histograms cover short runs). Armed after warm-up so a
    /// warm-up deadline never drains mid-experiment.
    pub fn arm_teardown(&mut self) {
        self.teardown_armed = true;
    }

    /// The garbage samples taken at the configured points (complete after
    /// `finish`).
    pub fn garbage_samples(&self) -> &[u64] {
        &self.garbage_samples
    }

    /// Outstanding garbage at the deadline, before teardown drained it.
    pub fn garbage_at_deadline(&self) -> u64 {
        self.garbage_at_deadline
            .unwrap_or_else(|| self.th.outstanding_garbage())
    }

    fn take_due_samples(&mut self, now: st_machine::Cycles) {
        while let Some(&at) = self.sample_points.get(self.garbage_samples.len()) {
            if now < at {
                break;
            }
            self.garbage_samples.push(self.th.outstanding_garbage());
        }
    }

    /// The executor (for statistics extraction after the run).
    pub fn executor(&self) -> &dyn SchemeThread {
        self.th.as_ref()
    }

    /// Mutable executor access (teardown).
    #[allow(dead_code)]
    pub fn executor_mut(&mut self) -> &mut dyn SchemeThread {
        self.th.as_mut()
    }

    /// Operations completed by this worker.
    #[allow(dead_code)]
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Resets measurement statistics after a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.ops_done = 0;
        self.garbage_samples.clear();
        self.garbage_at_deadline = None;
        self.th.reset_stats();
    }

    fn pick_op(&self, cpu: &mut Cpu) -> (u32, usize, Box<OpBody<'static>>) {
        let roll = cpu.rng.below(100) as u32;
        let key = cpu.rng.below(self.spec.key_range) + 1;
        let mutate = roll < self.spec.mutation_pct;
        let second_half = roll % 2 == 1;
        match &*self.instance {
            StructureInstance::List(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        list::OP_CONTAINS,
                        list::LIST_SLOTS,
                        Box::new(list::contains_body(shape, key)),
                    )
                } else if second_half {
                    (
                        list::OP_INSERT,
                        list::LIST_SLOTS,
                        Box::new(list::insert_body(shape, key)),
                    )
                } else {
                    (
                        list::OP_DELETE,
                        list::LIST_SLOTS,
                        Box::new(list::delete_body(shape, key)),
                    )
                }
            }
            StructureInstance::SkipList(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        skiplist::OP_CONTAINS,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::contains_body(shape, key)),
                    )
                } else if second_half {
                    (
                        skiplist::OP_INSERT,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::insert_body(shape, key)),
                    )
                } else {
                    (
                        skiplist::OP_DELETE,
                        skiplist::SKIP_SLOTS,
                        Box::new(skiplist::delete_body(shape, key)),
                    )
                }
            }
            StructureInstance::Queue(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        queue::OP_PEEK,
                        queue::QUEUE_SLOTS,
                        Box::new(queue::peek_body(shape)),
                    )
                } else if second_half {
                    (
                        queue::OP_ENQUEUE,
                        queue::QUEUE_SLOTS,
                        Box::new(queue::enqueue_body(shape, key)),
                    )
                } else {
                    (
                        queue::OP_DEQUEUE,
                        queue::QUEUE_SLOTS,
                        Box::new(queue::dequeue_body(shape)),
                    )
                }
            }
            StructureInstance::Hash(shape) => {
                if !mutate {
                    (
                        list::OP_CONTAINS,
                        list::LIST_SLOTS,
                        Box::new(hash::contains_body(shape, key)),
                    )
                } else if second_half {
                    (
                        list::OP_INSERT,
                        list::LIST_SLOTS,
                        Box::new(hash::insert_body(shape, key)),
                    )
                } else {
                    (
                        list::OP_DELETE,
                        list::LIST_SLOTS,
                        Box::new(hash::delete_body(shape, key)),
                    )
                }
            }
            StructureInstance::RbTree(shape) => {
                let shape = *shape;
                if !mutate {
                    (
                        rbtree::OP_SEARCH,
                        rbtree::RB_SLOTS,
                        Box::new(rbtree::search_body(shape, key)),
                    )
                } else if second_half {
                    (
                        rbtree::OP_INSERT,
                        rbtree::RB_SLOTS,
                        Box::new(rbtree::insert_body(shape, key)),
                    )
                } else {
                    (
                        rbtree::OP_DELETE,
                        rbtree::RB_SLOTS,
                        Box::new(rbtree::delete_body(shape, key)),
                    )
                }
            }
        }
    }
}

impl Worker for BenchWorker {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        self.take_due_samples(cpu.now());
        if self.th.idle_work_pending() {
            self.th.step_idle(cpu);
            return StepOutcome::Progress;
        }
        if self.current.is_none() {
            let (op_id, slots, body) = self.pick_op(cpu);
            self.th.begin_op(cpu, op_id, slots);
            self.current = Some(body);
            return StepOutcome::Progress;
        }
        let body = self.current.as_mut().expect("current body");
        match self.th.step_op(cpu, body.as_mut()) {
            Some(_) => {
                self.current = None;
                self.ops_done += 1;
                StepOutcome::OpDone
            }
            None => StepOutcome::Progress,
        }
    }

    fn finish(&mut self, cpu: &mut Cpu) {
        // A stalled worker reaches here with its clock frozen mid-run:
        // every remaining checkpoint sees the garbage it was holding.
        let frozen = self.th.outstanding_garbage();
        while self.garbage_samples.len() < self.sample_points.len() {
            self.garbage_samples.push(frozen);
        }
        self.garbage_at_deadline = Some(frozen);
        if self.teardown_armed {
            self.th.teardown(cpu);
        }
    }

    fn neutralize(&mut self, cpu: &mut Cpu) {
        self.th.neutralize(cpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_section_6() {
        let list = WorkloadSpec::paper_list();
        assert_eq!(list.initial_size, 5_000);
        assert_eq!(list.mutation_pct, 20);
        let sl = WorkloadSpec::paper_skiplist();
        assert_eq!(sl.initial_size, 100_000);
        let hash = WorkloadSpec::paper_hash();
        assert_eq!(hash.initial_size, 10_000);
        assert!(hash.buckets > 1);
    }

    #[test]
    fn heap_sizing_covers_the_population() {
        for spec in [
            WorkloadSpec::paper_list(),
            WorkloadSpec::paper_skiplist(),
            WorkloadSpec::paper_hash(),
            WorkloadSpec::paper_queue(),
            WorkloadSpec::extra_rbtree(),
        ] {
            let words = spec.heap_words(10);
            assert!(words.is_power_of_two());
            // Must at least hold the resident nodes twice over.
            let resident = match spec.structure {
                StructureKind::Queue => spec.initial_size,
                _ => spec.key_range,
            };
            assert!(words > resident * 2, "{:?} undersized", spec.structure);
            // And stay far below the address-space sanity bound.
            assert!(words < 1 << 28, "{:?} oversized", spec.structure);
        }
    }

    #[test]
    fn builder_rejects_inconsistent_specs() {
        assert!(WorkloadSpec::builder(StructureKind::List)
            .initial_size(100)
            .key_range(50)
            .build()
            .is_err());
        assert!(WorkloadSpec::builder(StructureKind::List)
            .mutation_pct(101)
            .build()
            .is_err());
        assert!(WorkloadSpec::builder(StructureKind::List)
            .buckets(4)
            .build()
            .is_err());
        assert!(WorkloadSpec::builder(StructureKind::Hash).build().is_err());
        assert!(WorkloadSpec::builder(StructureKind::Hash)
            .buckets(0)
            .build()
            .is_err());
        let hash = WorkloadSpec::builder(StructureKind::Hash)
            .buckets(64)
            .build()
            .unwrap();
        assert_eq!(hash.buckets, 64);
        let list = WorkloadSpec::builder(StructureKind::List).build().unwrap();
        assert_eq!(list.buckets, 1, "non-hash structures get a unit bucket");
    }

    #[test]
    fn structure_names_round_trip_through_fromstr() {
        for kind in [
            StructureKind::List,
            StructureKind::SkipList,
            StructureKind::Queue,
            StructureKind::Hash,
            StructureKind::RbTree,
        ] {
            assert_eq!(kind.name().parse::<StructureKind>(), Ok(kind));
            assert_eq!(
                kind.name().to_lowercase().parse::<StructureKind>(),
                Ok(kind)
            );
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("btree".parse::<StructureKind>().is_err());
    }

    #[test]
    fn shrunk_keeps_proportions() {
        let s = WorkloadSpec::paper_skiplist().shrunk(10);
        assert_eq!(s.initial_size, 10_000);
        assert_eq!(s.key_range, 20_000);
        assert_eq!(s.mutation_pct, 20);
        // Never shrinks to zero.
        let tiny = WorkloadSpec::paper_list().shrunk(1_000_000);
        assert!(tiny.initial_size >= 8);
        assert!(tiny.key_range >= 16);
    }

    #[test]
    fn populated_instances_have_the_requested_size() {
        let spec = WorkloadSpec::paper_list().shrunk(100);
        let heap = Arc::new(Heap::new(st_simheap::HeapConfig {
            capacity_words: spec.heap_words(1),
            ..st_simheap::HeapConfig::default()
        }));
        match StructureInstance::build(&spec, &heap, 1) {
            StructureInstance::List(shape) => {
                assert_eq!(
                    shape.collect_keys_untimed(&heap).len() as u64,
                    spec.initial_size
                );
            }
            _ => unreachable!(),
        }
    }
}
