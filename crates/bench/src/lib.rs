//! `st-bench` as a library: the experiment runner, figure drivers,
//! parallel sweep scheduler, and report/persistence layer behind the
//! `st-bench` binary.
//!
//! The binary (`src/main.rs`) is a thin argument parser over these
//! modules; the split exists so integration tests (notably the
//! serial-vs-parallel determinism test in the workspace `tests/`
//! directory) can drive whole figure sweeps in-process and byte-compare
//! the artifacts they persist.

#![warn(missing_docs)]

pub mod auditcmd;
pub mod checkcmd;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod sweep;
pub mod workload;
