//! `st-bench`: regenerates the StackTrack evaluation.
//!
//! ```text
//! st-bench <subcommand> [--ms N] [--warmup N] [--seed N] [--scale N] [--threads N] [--out DIR]
//!                       [--schemes A,B,...] [--jobs N] [--timing-out FILE]
//!
//! Subcommands:
//!   fig1-list fig1-skiplist fig2-queue fig2-hash
//!   fig3-aborts fig4-splits fig5-slowpath scan-overhead
//!   ablation-predictor ablation-regfile ablation-scanmode ablation-refcount
//!   extra-rbtree robustness all
//!   check-metrics FILE...
//!   check-timing FILE...
//!   check [--structures a,b] [--mode dfs|random] [--mutate M] [--replay TOKEN] ...
//!   audit [--structures a,b] [--schemes A,B] [--budget-ms N] [--faults on|off] ...
//! ```
//!
//! Every subcommand prints its table(s) and writes JSON + markdown under
//! `--out` (default `results/`), plus a versioned full-metrics snapshot
//! (`<name>.metrics.json`, schema in docs/METRICS.md). `check-metrics`
//! validates existing snapshot files against the current schema;
//! `check-timing` does the same for `--timing-out` reports.
//! `--jobs N` fans the sweep across N worker threads without changing any
//! artifact byte (docs/PERF.md); `--timing-out FILE` writes a host
//! wall-clock report per configuration. See EXPERIMENTS.md for the
//! mapping to the paper's figures.

use st_bench::figures::{self, BenchOpts};
use st_bench::{auditcmd, checkcmd, report, sweep};
use st_reclaim::Scheme;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: st-bench <fig1-list|fig1-skiplist|fig2-queue|fig2-hash|fig3-aborts|fig4-splits|\
         fig5-slowpath|scan-overhead|ablation-predictor|ablation-regfile|ablation-scanmode|\
         ablation-refcount|extra-rbtree|robustness|all|check|check-metrics|check-timing|audit> \
         [--ms N] [--seed N] \
         [--scale N] [--threads N] [--out DIR] [--schemes A,B,...] [--jobs N] \
         [--timing-out FILE] (see `check --help` style flags in docs/TESTING.md)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };

    if cmd == "check-metrics" {
        return check_metrics(&args[1..]);
    }
    if cmd == "check-timing" {
        return check_timing(&args[1..]);
    }
    if cmd == "check" {
        return checkcmd::run(&args[1..]);
    }
    if cmd == "audit" {
        return auditcmd::run(&args[1..]);
    }

    let mut opts = BenchOpts::default();
    let mut ms_set = false;
    let mut timing_out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        fn parse_int(flag: &str, value: &str) -> Result<u64, ExitCode> {
            value.parse().map_err(|_| {
                eprintln!("{flag} takes an integer, got {value:?}");
                usage()
            })
        }
        match flag {
            "--ms" => match parse_int(flag, value) {
                Ok(v) => {
                    opts.duration_ms = v;
                    ms_set = true;
                }
                Err(code) => return code,
            },
            "--seed" => match parse_int(flag, value) {
                Ok(v) => opts.seed = v,
                Err(code) => return code,
            },
            "--scale" => match parse_int(flag, value) {
                Ok(v) => opts.scale = v,
                Err(code) => return code,
            },
            "--threads" => match parse_int(flag, value) {
                Ok(v) => opts.max_threads = v as usize,
                Err(code) => return code,
            },
            "--warmup" => match parse_int(flag, value) {
                Ok(v) => opts.warmup_ms = v,
                Err(code) => return code,
            },
            "--jobs" => match parse_int(flag, value) {
                Ok(0) => {
                    eprintln!("--jobs must be at least 1");
                    return usage();
                }
                Ok(v) => opts.jobs = v as usize,
                Err(code) => return code,
            },
            "--out" => opts.out = PathBuf::from(value),
            "--timing-out" => timing_out = Some(PathBuf::from(value)),
            "--schemes" => {
                let parsed: Result<Vec<Scheme>, String> =
                    value.split(',').map(|s| s.trim().parse()).collect();
                match parsed {
                    Ok(v) => opts.schemes = Some(v),
                    Err(e) => {
                        eprintln!("{e}");
                        return usage();
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
        i += 2;
    }

    let sink = timing_out
        .as_ref()
        .map(|_| Arc::new(sweep::TimingSink::new()));
    opts.timing = sink.clone();
    let started = Instant::now();

    match cmd.as_str() {
        "fig1-list" => drop(figures::fig1_list(&opts)),
        "fig1-skiplist" => drop(figures::fig1_skiplist(&opts)),
        "fig2-queue" => drop(figures::fig2_queue(&opts)),
        "fig2-hash" => drop(figures::fig2_hash(&opts)),
        "fig3-aborts" | "fig4-splits" | "fig3-fig4" => drop(figures::fig3_fig4(&opts)),
        "fig5-slowpath" => drop(figures::fig5_slowpath(&opts)),
        "scan-overhead" => drop(figures::scan_overhead(&opts)),
        "ablation-predictor" => drop(figures::ablation_predictor(&opts)),
        "ablation-regfile" => drop(figures::ablation_regfile(&opts)),
        "ablation-scanmode" => drop(figures::ablation_scanmode(&opts)),
        "ablation-refcount" => drop(figures::ablation_refcount(&opts)),
        "ablation-dta-k" => drop(figures::ablation_dta_k(&opts)),
        "extra-rbtree" => drop(figures::extra_rbtree(&opts)),
        "robustness" => {
            // A stall is only visible against a run that dwarfs it; give
            // the fault experiment a longer default than the figures'.
            if !ms_set {
                opts.duration_ms = 250;
            }
            drop(figures::robustness(&opts));
        }
        "all" => figures::all(&opts),
        _ => return usage(),
    }

    if let (Some(path), Some(sink)) = (timing_out, sink) {
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        let doc = sweep::timing_report(&cmd, opts.jobs, total_ms, &sink.rows());
        if let Err(e) = std::fs::write(&path, format!("{}\n", doc.to_pretty_string())) {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "timing report: {} ({} configs, {:.0} ms total, {} jobs)",
            path.display(),
            sink.rows().len(),
            total_ms,
            opts.jobs
        );
    }
    ExitCode::SUCCESS
}

/// Validates `*.metrics.json` snapshot files against the current schema and
/// prints a one-line summary per run.
/// Validates `--timing-out` reports (the `BENCH_sweep.json` schema,
/// docs/PERF.md) so perf-trajectory records cannot silently drift.
fn check_timing(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: st-bench check-timing FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match st_obs::Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        match sweep::validate_timing_report(&doc) {
            Ok(n) => {
                let jobs = doc.get("jobs").and_then(st_obs::Json::as_u64).unwrap_or(0);
                let cores = doc
                    .get("host_cores")
                    .and_then(st_obs::Json::as_u64)
                    .unwrap_or(0);
                let total = doc
                    .get("total_host_ms")
                    .and_then(st_obs::Json::as_f64)
                    .unwrap_or(0.0);
                println!(
                    "{path}: {n} configs, jobs {jobs}, host_cores {cores}, \
                     total_host_ms {total:.1}"
                );
            }
            Err(e) => {
                eprintln!("{path}: invalid timing report: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn check_metrics(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: st-bench check-metrics FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match report::parse_metrics_snapshot(&text) {
            Ok(runs) => {
                for run in &runs {
                    println!(
                        "{path}: {}/{} x{}: {} metrics, {} aborts attributed, \
                         {} per-thread rows",
                        run.scheme,
                        run.structure,
                        run.threads,
                        run.metrics.len(),
                        st_obs::AbortCause::ALL
                            .iter()
                            .map(|c| run.metrics.counter(&format!("st.aborts.{c}")))
                            .sum::<u64>(),
                        run.per_thread.len(),
                    );
                }
                if let Err(e) = report::validate_per_thread(&runs) {
                    eprintln!("{path}: invalid per_thread envelope: {e}");
                    failed = true;
                }
                match report::validate_garbage_series(&runs) {
                    Ok(0) => {}
                    Ok(n) => println!("{path}: garbage_ts series consistent ({n} samples/run)"),
                    Err(e) => {
                        eprintln!("{path}: invalid garbage_ts series: {e}");
                        failed = true;
                    }
                }
                match report::validate_audit(&runs) {
                    Ok(0) => {}
                    Ok(n) => println!("{path}: audit section consistent ({n} runs)"),
                    Err(e) => {
                        eprintln!("{path}: invalid audit section: {e}");
                        failed = true;
                    }
                }
                match report::validate_scheme_counters(&runs) {
                    Ok(0) => {}
                    Ok(n) => println!("{path}: scheme counter families consistent ({n} runs)"),
                    Err(e) => {
                        eprintln!("{path}: invalid scheme counters: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: invalid snapshot: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
