//! Drivers that regenerate every figure and table of the paper's
//! evaluation (section 6), plus the ablations called out in DESIGN.md.
//!
//! Every driver has the same three-phase shape: build the full list of
//! [`RunConfig`]s in table order, hand the list to the parallel sweep
//! scheduler ([`crate::sweep::run_batch`]), then build tables from the
//! ordered results. Config construction is pure and results come back in
//! config order, so the persisted artifacts do not depend on `--jobs`
//! (see `docs/PERF.md` for the serial-equivalence guarantee).

use crate::experiment::{ms_to_cycles, RunConfig, RunResult};
use crate::report::{fmt_f, fmt_ops, persist, Table};
use crate::sweep::{self, TimingSink};
use crate::workload::WorkloadSpec;
use st_machine::FaultPlan;
use st_reclaim::Scheme;
use stacktrack::{ScanMode, StConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Shared driver options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Virtual run length per configuration, in milliseconds.
    pub duration_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// Workload shrink factor (1 = the paper's sizes).
    pub scale: u64,
    /// Output directory for JSON + markdown results.
    pub out: PathBuf,
    /// Largest thread count in sweeps.
    pub max_threads: usize,
    /// Unmeasured warm-up per configuration, in milliseconds.
    pub warmup_ms: u64,
    /// Scheme subset override (`None` = each driver's default set).
    pub schemes: Option<Vec<Scheme>>,
    /// Sweep worker threads (`1` = serial; results are identical either
    /// way — see `docs/PERF.md`).
    pub jobs: usize,
    /// Where per-config host timings go (`--timing-out`).
    pub timing: Option<Arc<TimingSink>>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            duration_ms: 2,
            seed: 0x57ac_c001,
            scale: 1,
            out: PathBuf::from("results"),
            max_threads: 16,
            warmup_ms: 0,
            schemes: None,
            jobs: sweep::host_cores(),
            timing: None,
        }
    }
}

impl BenchOpts {
    fn spec(&self, base: WorkloadSpec) -> WorkloadSpec {
        if self.scale > 1 {
            base.shrunk(self.scale)
        } else {
            base
        }
    }

    fn config(&self, spec: WorkloadSpec, scheme: Scheme, threads: usize) -> RunConfig {
        let mut c = RunConfig::new(spec, scheme, threads, self.duration_ms);
        c.seed = self.seed;
        c.warmup_ms = self.warmup_ms;
        c
    }

    fn sweep(&self) -> Vec<usize> {
        (1..=self.max_threads).collect()
    }

    /// Runs a figure's config list through the sweep scheduler.
    fn batch(&self, figure: &str, configs: &[RunConfig]) -> Vec<RunResult> {
        let results = sweep::run_batch(configs, self.jobs, figure, self.timing.as_deref());
        eprintln!();
        results
    }
}

/// A throughput-vs-threads sweep for a set of schemes (Figures 1 and 2).
fn throughput_figure(
    opts: &BenchOpts,
    name: &str,
    title: &str,
    spec: WorkloadSpec,
    schemes: &[Scheme],
) -> Vec<RunResult> {
    let threads_list = opts.sweep();
    let mut configs = Vec::new();
    for &threads in &threads_list {
        for &scheme in schemes {
            configs.push(opts.config(spec.clone(), scheme, threads));
        }
    }
    let results = opts.batch(name, &configs);

    let mut columns = vec!["threads".to_string()];
    columns.extend(schemes.iter().map(|s| s.name().to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &col_refs);
    let mut rows = results.chunks(schemes.len());
    for &threads in &threads_list {
        let group = rows.next().expect("one result group per thread count");
        let mut row = vec![threads.to_string()];
        row.extend(group.iter().map(|r| fmt_ops(r.ops_per_sec)));
        table.row(row);
    }
    table.print();
    persist(&opts.out, name, &results, &[table]);
    results
}

/// Figure 1a: list throughput (5 K nodes, 20 % mutations).
pub fn fig1_list(opts: &BenchOpts) -> Vec<RunResult> {
    throughput_figure(
        opts,
        "fig1_list",
        "Figure 1a — List: 5K nodes, 20% mutations (ops/s vs threads)",
        opts.spec(WorkloadSpec::paper_list()),
        &[
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Dta,
            Scheme::Nbr,
            Scheme::Hyaline,
        ],
    )
}

/// Figure 1b: skip-list throughput (100 K nodes, 20 % mutations).
pub fn fig1_skiplist(opts: &BenchOpts) -> Vec<RunResult> {
    throughput_figure(
        opts,
        "fig1_skiplist",
        "Figure 1b — SkipList: 100K nodes, 20% mutations (ops/s vs threads)",
        opts.spec(WorkloadSpec::paper_skiplist()),
        &[
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Nbr,
            Scheme::Hyaline,
        ],
    )
}

/// Figure 2a: queue throughput (20 % mutations).
pub fn fig2_queue(opts: &BenchOpts) -> Vec<RunResult> {
    throughput_figure(
        opts,
        "fig2_queue",
        "Figure 2a — Queue: 20% mutations (ops/s vs threads)",
        opts.spec(WorkloadSpec::paper_queue()),
        &[
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Nbr,
            Scheme::Hyaline,
        ],
    )
}

/// Figure 2b: hash-table throughput (10 K nodes, 20 % mutations).
pub fn fig2_hash(opts: &BenchOpts) -> Vec<RunResult> {
    throughput_figure(
        opts,
        "fig2_hash",
        "Figure 2b — Hash: 10K nodes, 20% mutations (ops/s vs threads)",
        opts.spec(WorkloadSpec::paper_hash()),
        &[
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Nbr,
            Scheme::Hyaline,
        ],
    )
}

/// Figures 3 and 4: StackTrack's HTM behaviour on the list — abort
/// taxonomy per segment, splits per operation, split lengths.
pub fn fig3_fig4(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_list());
    let threads_list = opts.sweep();
    let configs: Vec<RunConfig> = threads_list
        .iter()
        .map(|&threads| opts.config(spec.clone(), Scheme::StackTrack, threads))
        .collect();
    let results = opts.batch("fig3_fig4", &configs);

    let mut aborts = Table::new(
        "Figure 3 — List: HTM aborts (StackTrack)",
        &[
            "threads",
            "contention",
            "capacity",
            "contention/seg",
            "capacity/seg",
        ],
    );
    let mut splits = Table::new(
        "Figure 4 — List: splits per op and split lengths (StackTrack)",
        &["threads", "avg splits/op", "avg split length"],
    );
    for (&threads, r) in threads_list.iter().zip(&results) {
        let segs = r.tx_committed.max(1) as f64;
        aborts.row(vec![
            threads.to_string(),
            r.aborts_conflict.to_string(),
            r.aborts_capacity.to_string(),
            fmt_f(r.aborts_conflict as f64 / segs),
            fmt_f(r.aborts_capacity as f64 / segs),
        ]);
        splits.row(vec![
            threads.to_string(),
            fmt_f(r.avg_splits_per_op),
            fmt_f(r.avg_split_length),
        ]);
    }
    aborts.print();
    splits.print();
    persist(&opts.out, "fig3_fig4", &results, &[aborts, splits]);
    results
}

/// Figure 5: slow-path fallback cost on the skip list (0/10/50/100 %
/// forced slow-path operations, relative to 0 %).
pub fn fig5_slowpath(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_skiplist());
    let fractions = [0.0, 0.1, 0.5, 1.0];
    let threads_list: Vec<usize> = [1, 2, 3, 4, 6, 8, 10, 12, 14]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let mut configs = Vec::new();
    for &threads in &threads_list {
        for &frac in &fractions {
            let mut config = opts.config(spec.clone(), Scheme::StackTrack, threads);
            config.st_config = StConfig {
                forced_slow_prob: frac,
                ..StConfig::default()
            };
            configs.push(config);
        }
    }
    let results = opts.batch("fig5_slowpath", &configs);

    let mut table = Table::new(
        "Figure 5 — SkipList: forced slow-path fraction (relative throughput, Slow-0 = 100%)",
        &["threads", "Slow-0", "Slow-10", "Slow-50", "Slow-100"],
    );
    let mut groups = results.chunks(fractions.len());
    for &threads in &threads_list {
        let group = groups.next().expect("one group per thread count");
        let baseline = group[0].ops_per_sec.max(1.0);
        let mut row = vec![threads.to_string()];
        row.push("100.0%".to_string());
        for r in &group[1..] {
            row.push(format!("{:.1}%", 100.0 * r.ops_per_sec / baseline));
        }
        table.row(row);
    }
    table.print();
    persist(&opts.out, "fig5_slowpath", &results, &[table]);
    results
}

/// The section 6 "Scan behavior" table: scan frequency (every free vs
/// every 10 frees), inspected depth, retries, and scan penalty.
pub fn scan_overhead(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_skiplist());
    let threads_list = opts.sweep();
    let groups = [1usize, 10];

    let mut configs = Vec::new();
    for &max_free in &groups {
        for &threads in &threads_list {
            let mut config = opts.config(spec.clone(), Scheme::StackTrack, threads);
            config.st_config = StConfig {
                max_free: max_free - 1, // scan when free set exceeds this
                // One stack walk per scan batch (the paper's measured
                // amortization implies this shape; see section 5.2's
                // "free procedure optimization").
                scan_mode: ScanMode::Hashed,
                ..StConfig::default()
            };
            configs.push(config);
        }
    }
    let results = opts.batch("scan_overhead", &configs);

    let mut tables = Vec::new();
    let mut chunks = results.chunks(threads_list.len());
    for &max_free in &groups {
        let group = chunks.next().expect("one group per scan frequency");
        let mut table = Table::new(
            format!("Scan behaviour — SkipList, scan per {max_free} free call(s)"),
            &[
                "threads",
                "ops/s",
                "#scans",
                "avg depth (words)",
                "retries",
                "penalty %",
            ],
        );
        for (&threads, r) in threads_list.iter().zip(group) {
            table.row(vec![
                threads.to_string(),
                fmt_ops(r.ops_per_sec),
                r.scans.to_string(),
                fmt_f(r.avg_scan_depth),
                r.scan_retries.to_string(),
                fmt_f(r.scan_penalty_pct),
            ]);
        }
        tables.push(table);
    }
    for t in &tables {
        t.print();
    }
    persist(&opts.out, "scan_overhead", &results, &tables);
    results
}

/// Ablation 2 (DESIGN.md): adaptive split predictor vs fixed lengths.
pub fn ablation_predictor(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_list());
    let variants: [(&str, StConfig); 4] = [
        ("adaptive", StConfig::default()),
        ("fixed-1", fixed_split(1)),
        ("fixed-10", fixed_split(10)),
        ("fixed-50", fixed_split(50)),
    ];
    let threads_list: Vec<usize> = [1usize, 2, 4, 8, 12, 16]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let mut configs = Vec::new();
    for &threads in &threads_list {
        for (_, st) in &variants {
            let mut config = opts.config(spec.clone(), Scheme::StackTrack, threads);
            config.st_config = st.clone();
            configs.push(config);
        }
    }
    let results = opts.batch("ablation_predictor", &configs);

    let mut table = Table::new(
        "Ablation — split-length predictor (List, StackTrack, ops/s)",
        &["threads", "adaptive", "fixed-1", "fixed-10", "fixed-50"],
    );
    fill_grid(&mut table, &threads_list, variants.len(), &results);
    table.print();
    persist(&opts.out, "ablation_predictor", &results, &[table]);
    results
}

fn fixed_split(len: u32) -> StConfig {
    StConfig {
        initial_split_length: len,
        min_split_length: len.max(1),
        max_split_length: len.max(1),
        // Streaks never trip: limits stay fixed.
        abort_streak: u32::MAX,
        commit_streak: u32::MAX,
        ..StConfig::default()
    }
}

/// Appends one `threads | ops/s...` row per thread count, consuming
/// `results` in groups of `group` (the standard ablation grid shape).
fn fill_grid(table: &mut Table, threads_list: &[usize], group: usize, results: &[RunResult]) {
    let mut chunks = results.chunks(group);
    for &threads in threads_list {
        let group = chunks.next().expect("one result group per thread count");
        let mut row = vec![threads.to_string()];
        row.extend(group.iter().map(|r| fmt_ops(r.ops_per_sec)));
        table.row(row);
    }
}

/// Ablation 3 (DESIGN.md): register-file exposure on/off.
pub fn ablation_regfile(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_list());
    let threads_list: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let mut configs = Vec::new();
    for &threads in &threads_list {
        for expose in [true, false] {
            let mut config = opts.config(spec.clone(), Scheme::StackTrack, threads);
            config.st_config = StConfig {
                expose_registers: expose,
                ..StConfig::default()
            };
            configs.push(config);
        }
    }
    let results = opts.batch("ablation_regfile", &configs);

    let mut table = Table::new(
        "Ablation — register-file exposure (List, StackTrack, ops/s)",
        &["threads", "exposed", "suppressed"],
    );
    fill_grid(&mut table, &threads_list, 2, &results);
    table.print();
    persist(&opts.out, "ablation_regfile", &results, &[table]);
    results
}

/// Ablation 1 (DESIGN.md): linear vs hashed vs batched `SCAN_AND_FREE`.
pub fn ablation_scanmode(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_list());
    let modes = [ScanMode::Linear, ScanMode::Hashed, ScanMode::Batched];
    let threads_list: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let mut configs = Vec::new();
    for &threads in &threads_list {
        for &mode in &modes {
            let mut config = opts.config(spec.clone(), Scheme::StackTrack, threads);
            config.st_config = StConfig {
                scan_mode: mode,
                // Scan often so the strategies actually differ.
                max_free: 1,
                ..StConfig::default()
            };
            configs.push(config);
        }
    }
    let results = opts.batch("ablation_scanmode", &configs);

    let mut table = Table::new(
        "Ablation — scan strategy (List, StackTrack, ops/s)",
        &["threads", "linear", "hashed", "batched"],
    );
    fill_grid(&mut table, &threads_list, modes.len(), &results);
    table.print();
    persist(&opts.out, "ablation_scanmode", &results, &[table]);
    results
}

/// Extra comparator: reference counting vs hazard pointers (the paper's
/// "upper bound" claim).
pub fn ablation_refcount(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_list());
    let schemes = [Scheme::None, Scheme::Hazard, Scheme::RefCount];
    let threads_list: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let mut configs = Vec::new();
    for &threads in &threads_list {
        for &scheme in &schemes {
            configs.push(opts.config(spec.clone(), scheme, threads));
        }
    }
    let results = opts.batch("ablation_refcount", &configs);

    let mut table = Table::new(
        "Ablation — RefCount vs Hazards vs Original (List, ops/s)",
        &["threads", "Original", "Hazards", "RefCount"],
    );
    fill_grid(&mut table, &threads_list, schemes.len(), &results);
    table.print();
    persist(&opts.out, "ablation_refcount", &results, &[table]);
    results
}

/// Extra ablation: Drop-the-Anchor's anchor period `K` — the fence
/// amortization that makes DTA fast, against the reclamation lag (and
/// garbage) that longer windows cost.
pub fn ablation_dta_k(opts: &BenchOpts) -> Vec<RunResult> {
    let spec = opts.spec(WorkloadSpec::paper_list());
    let ks = [4u32, 10, 20, 50];
    let threads_list: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let mut configs = Vec::new();
    for &threads in &threads_list {
        for &k in &ks {
            let mut config = opts.config(spec.clone(), Scheme::Dta, threads);
            config.reclaim_config.dta_k = k;
            configs.push(config);
        }
    }
    let results = opts.batch("ablation_dta_k", &configs);

    let mut table = Table::new(
        "Ablation — DTA anchor period K (List, ops/s | garbage nodes)",
        &["threads", "K=4", "K=10", "K=20", "K=50"],
    );
    let mut chunks = results.chunks(ks.len());
    for &threads in &threads_list {
        let group = chunks.next().expect("one group per thread count");
        let mut row = vec![threads.to_string()];
        row.extend(
            group
                .iter()
                .map(|r| format!("{} | {}", fmt_ops(r.ops_per_sec), r.garbage)),
        );
        table.row(row);
    }
    table.print();
    persist(&opts.out, "ablation_dta_k", &results, &[table]);
    results
}

/// Robustness under faults: every scheme runs the list workload while one
/// worker stalls mid-run (at 30 % of the duration, for 40 % of it — 100 ms
/// under the subcommand's 250 ms default). The table is the
/// outstanding-garbage time-series: hazard pointers, DTA and StackTrack
/// must stay bounded while the stalled thread makes epoch-based
/// reclamation hoard (section 2's robustness argument).
pub fn robustness(opts: &BenchOpts) -> Vec<RunResult> {
    const SAMPLES: usize = 10;
    let spec = opts.spec(WorkloadSpec::paper_list());
    let threads = opts.max_threads.clamp(2, 4);
    let stalled = threads - 1;
    let duration = ms_to_cycles(opts.duration_ms);
    let stall_at = duration * 3 / 10;
    let stall_for = duration * 4 / 10;
    let schemes = opts
        .schemes
        .clone()
        .unwrap_or_else(|| Scheme::all().to_vec());

    let configs: Vec<RunConfig> = schemes
        .iter()
        .map(|&scheme| {
            let mut config = opts.config(spec.clone(), scheme, threads);
            config.faults = FaultPlan::default().stall(stalled, stall_at, stall_for);
            config.garbage_samples = SAMPLES;
            config
        })
        .collect();
    let results = opts.batch("robustness", &configs);

    let series: Vec<Vec<u64>> = results
        .iter()
        .map(|r| {
            (1..=SAMPLES)
                .map(|k| r.metrics.counter(&format!("reclaim.garbage_ts.{k:02}")))
                .collect()
        })
        .collect();

    let mut columns = vec!["t (ms)".to_string()];
    columns.extend(schemes.iter().map(|s| s.name().to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Robustness — List, {threads} threads: outstanding garbage while thread {stalled} \
             stalls {}–{} ms (run length {} ms)",
            fmt_f(opts.duration_ms as f64 * 0.3),
            fmt_f(opts.duration_ms as f64 * 0.7),
            opts.duration_ms
        ),
        &col_refs,
    );
    for k in 0..SAMPLES {
        let t_ms = opts.duration_ms as f64 * (k + 1) as f64 / SAMPLES as f64;
        let mut row = vec![fmt_f(t_ms)];
        row.extend(series.iter().map(|ts| ts[k].to_string()));
        table.row(row);
    }
    table.print();
    persist(&opts.out, "robustness", &results, &[table]);
    results
}

/// Extra workload beyond the paper's figures: the Algorithm 3 red-black
/// tree under a read-dominated mix.
pub fn extra_rbtree(opts: &BenchOpts) -> Vec<RunResult> {
    throughput_figure(
        opts,
        "extra_rbtree",
        "Extra — RbTree: 10K keys, 10% mutations (ops/s vs threads)",
        opts.spec(WorkloadSpec::extra_rbtree()),
        &[
            Scheme::None,
            Scheme::Hazard,
            Scheme::Epoch,
            Scheme::StackTrack,
            Scheme::Nbr,
            Scheme::Hyaline,
        ],
    )
}

/// Runs every figure and ablation.
pub fn all(opts: &BenchOpts) {
    eprintln!("fig1-list");
    fig1_list(opts);
    eprintln!("fig1-skiplist");
    fig1_skiplist(opts);
    eprintln!("fig2-queue");
    fig2_queue(opts);
    eprintln!("fig2-hash");
    fig2_hash(opts);
    eprintln!("fig3+fig4");
    fig3_fig4(opts);
    eprintln!("fig5-slowpath");
    fig5_slowpath(opts);
    eprintln!("scan-overhead");
    scan_overhead(opts);
    eprintln!("ablation-predictor");
    ablation_predictor(opts);
    eprintln!("ablation-regfile");
    ablation_regfile(opts);
    eprintln!("ablation-scanmode");
    ablation_scanmode(opts);
    eprintln!("ablation-refcount");
    ablation_refcount(opts);
    eprintln!("ablation-dta-k");
    ablation_dta_k(opts);
    eprintln!("extra-rbtree");
    extra_rbtree(opts);
    eprintln!("robustness");
    robustness(opts);
}
