//! Table rendering and result persistence.

use crate::experiment::RunResult;
use std::fs;
use std::path::Path;

/// A printable/markdown-able table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }

    /// Prints an aligned text table to stdout.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Renders the table as GitHub markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Formats a throughput in ops/s with engineering notation.
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a float with two decimals.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.2}")
}

/// Persists raw results as JSON lines under `out_dir/name.json` and the
/// rendered table as markdown under `out_dir/name.md`.
pub fn persist(out_dir: &Path, name: &str, results: &[RunResult], tables: &[Table]) {
    fs::create_dir_all(out_dir).expect("create results directory");
    let json: Vec<String> = results
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize result"))
        .collect();
    fs::write(out_dir.join(format!("{name}.json")), json.join("\n") + "\n")
        .expect("write results json");
    let md: String = tables.iter().map(Table::to_markdown).collect();
    fs::write(out_dir.join(format!("{name}.md")), md).expect("write results markdown");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn ops_formatting() {
        assert_eq!(fmt_ops(12.0), "12");
        assert_eq!(fmt_ops(1_500.0), "1.5K");
        assert_eq!(fmt_ops(2_300_000.0), "2.30M");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
