//! Table rendering and result persistence.
//!
//! Every figure driver persists two JSON artifacts per run set: a flat
//! JSON-lines summary (`<name>.json`, one object per run — the format
//! `tools/update_experiments.py` consumes) and a versioned full snapshot
//! (`<name>.metrics.json`) carrying the complete [`MetricsRegistry`] of each
//! run, schema documented in `docs/METRICS.md`.

use crate::experiment::{PerThread, RunResult};
use st_obs::{Json, MetricsRegistry, SCHEMA_VERSION};
use std::fs;
use std::path::Path;

/// A printable/markdown-able table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }

    /// Prints an aligned text table to stdout.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Renders the table as GitHub markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Formats a throughput in ops/s with engineering notation.
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a float with two decimals.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.2}")
}

/// Builds the versioned full-snapshot document for `<name>.metrics.json`.
///
/// Shape (see `docs/METRICS.md`):
/// `{"schema_version": N, "name": ..., "runs": [{scheme, structure,
/// threads, duration_ms, per_thread: [{thread, ops, busy_cycles,
/// garbage}, ...], metrics: {...}}, ...]}`.
pub fn metrics_snapshot(name: &str, results: &[RunResult]) -> Json {
    let mut doc = Json::obj();
    doc.set("schema_version", SCHEMA_VERSION);
    doc.set("name", name);
    let runs: Vec<Json> = results
        .iter()
        .map(|r| {
            let mut run = Json::obj();
            run.set("scheme", r.scheme.as_str());
            run.set("structure", r.structure.as_str());
            run.set("threads", r.threads);
            run.set("duration_ms", r.duration_ms);
            let rows: Vec<Json> = r.per_thread.iter().map(PerThread::to_json).collect();
            run.set("per_thread", Json::Arr(rows));
            run.set("metrics", r.metrics.to_json());
            run
        })
        .collect();
    doc.set("runs", Json::Arr(runs));
    doc
}

/// One run parsed back out of a `<name>.metrics.json` snapshot.
#[derive(Debug, Clone)]
pub struct ParsedRun {
    /// Scheme display name.
    pub scheme: String,
    /// Structure display name.
    pub structure: String,
    /// Simulated thread count.
    pub threads: usize,
    /// The `per_thread` envelope rows, in file order.
    pub per_thread: Vec<PerThread>,
    /// The full metrics registry.
    pub metrics: MetricsRegistry,
}

impl ParsedRun {
    fn label(&self) -> String {
        format!("{}/{}", self.scheme, self.structure)
    }
}

/// Parses a `<name>.metrics.json` document back into per-run registries.
///
/// Rejects documents from a different schema version. A run's
/// `per_thread` rows are parsed structurally here; cross-field
/// consistency is [`validate_per_thread`]'s job.
pub fn parse_metrics_snapshot(text: &str) -> Result<Vec<ParsedRun>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "snapshot schema v{version}, tool expects v{SCHEMA_VERSION}"
        ));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs array")?;
    runs.iter()
        .map(|run| {
            let field = |k: &str| {
                run.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("run missing '{k}'"))
            };
            let threads = run
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("run missing 'threads'")? as usize;
            let per_thread = run
                .get("per_thread")
                .and_then(Json::as_arr)
                .ok_or("run missing 'per_thread' (schema v2 envelope)")?
                .iter()
                .map(parse_per_thread_row)
                .collect::<Result<Vec<PerThread>, String>>()?;
            let metrics = run.get("metrics").ok_or("run missing 'metrics'")?;
            let reg = MetricsRegistry::from_json(metrics).map_err(|e| e.to_string())?;
            Ok(ParsedRun {
                scheme: field("scheme")?,
                structure: field("structure")?,
                threads,
                per_thread,
                metrics: reg,
            })
        })
        .collect()
}

fn parse_per_thread_row(row: &Json) -> Result<PerThread, String> {
    let num = |k: &str| {
        row.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("per_thread row missing '{k}'"))
    };
    Ok(PerThread {
        thread: num("thread")? as usize,
        ops: num("ops")?,
        busy_cycles: num("busy_cycles")?,
        garbage: num("garbage")?,
    })
}

/// Validates the schema-v2 `per_thread` envelope of every parsed run:
/// one row per simulated thread, ids contiguous from 0 in file order,
/// and the rows' `ops` summing to the run's `run.total_ops` counter.
pub fn validate_per_thread(runs: &[ParsedRun]) -> Result<(), String> {
    for run in runs {
        let label = run.label();
        if run.per_thread.len() != run.threads {
            return Err(format!(
                "{label}: {} per_thread rows for {} threads",
                run.per_thread.len(),
                run.threads
            ));
        }
        for (i, row) in run.per_thread.iter().enumerate() {
            if row.thread != i {
                return Err(format!(
                    "{label}: per_thread ids not contiguous: expected {i}, found {}",
                    row.thread
                ));
            }
        }
        let ops: u64 = run.per_thread.iter().map(|r| r.ops).sum();
        let total = run.metrics.counter("run.total_ops");
        if ops != total {
            return Err(format!(
                "{label}: per_thread ops sum to {ops} but run.total_ops is {total}"
            ));
        }
    }
    Ok(())
}

/// Validates the `reclaim.garbage_ts.NN` gauge series of a parsed
/// snapshot.
///
/// Negative values can never reach this point — the registry parser
/// rejects any counter that is not an unsigned integer — so what is
/// left to check is the series' shape: every run that carries the
/// series must have plain-gauge values whose zero-padded indices form
/// a contiguous `01..=N` sequence, and `N` must agree across runs
/// (the robustness experiment samples all schemes on one shared grid,
/// so a short or gapped series means a truncated or hand-edited
/// snapshot). Returns the common sample count, 0 when no run carries
/// the series.
pub fn validate_garbage_series(runs: &[ParsedRun]) -> Result<u64, String> {
    let mut common: Option<(u64, String)> = None;
    for parsed in runs {
        let run = parsed.label();
        let mut indices = Vec::new();
        for (key, metric) in parsed.metrics.iter() {
            let Some(suffix) = key.strip_prefix("reclaim.garbage_ts.") else {
                continue;
            };
            if matches!(metric, st_obs::Metric::Histogram(_)) {
                return Err(format!("{run}: {key} is a histogram, expected a gauge"));
            }
            if suffix.len() < 2 || suffix.bytes().any(|b| !b.is_ascii_digit()) {
                return Err(format!(
                    "{run}: malformed garbage_ts index {suffix:?} (expected zero-padded digits)"
                ));
            }
            indices.push(suffix.parse::<u64>().expect("digits parse"));
        }
        if indices.is_empty() {
            continue;
        }
        indices.sort_unstable();
        for (i, idx) in indices.iter().enumerate() {
            let expected = i as u64 + 1;
            if *idx != expected {
                return Err(format!(
                    "{run}: garbage_ts samples are not contiguous: expected index \
                     {expected:02}, found {idx:02}"
                ));
            }
        }
        let n = indices.len() as u64;
        match &common {
            None => common = Some((n, run)),
            Some((cn, witness)) if *cn != n => {
                return Err(format!(
                    "garbage_ts sample counts disagree: {witness} has {cn}, {run} has {n}"
                ));
            }
            Some(_) => {}
        }
    }
    Ok(common.map_or(0, |(n, _)| n))
}

/// Validates the `audit.*` counter section of a parsed snapshot (written
/// by `st-bench audit`, see `docs/AUDIT.md`).
///
/// A run carries the section iff any of its metric keys starts with
/// `audit.`. For such a run: every `audit.*` key must be a counter from
/// the canonical vocabulary in [`st_obs::audit`], the core counters
/// (`audit.episodes`, `audit.retires`, `audit.frees`,
/// `audit.violations`) must all be present, `audit.episodes` must be
/// nonzero (a combination that never soaked proves nothing), and
/// `audit.violations` must equal the sum of the per-class
/// `audit.violations.*` counters. Returns the number of runs carrying
/// the section, 0 when the snapshot is not an audit snapshot.
pub fn validate_audit(runs: &[ParsedRun]) -> Result<u64, String> {
    use st_obs::audit;
    const CORE: [&str; 4] = [
        audit::EPISODES,
        audit::RETIRES,
        audit::FREES,
        audit::VIOLATIONS,
    ];
    let mut audited = 0;
    for parsed in runs {
        let run = parsed.label();
        let mut present: Vec<String> = Vec::new();
        for (key, metric) in parsed.metrics.iter() {
            if !key.starts_with("audit.") {
                continue;
            }
            if matches!(metric, st_obs::Metric::Histogram(_)) {
                return Err(format!("{run}: {key} is a histogram, expected a counter"));
            }
            if !CORE.contains(&key) && !audit::VIOLATION_COUNTERS.contains(&key) {
                return Err(format!(
                    "{run}: unknown audit counter {key} (not in the st_obs::audit vocabulary)"
                ));
            }
            present.push(key.to_string());
        }
        if present.is_empty() {
            continue;
        }
        audited += 1;
        for key in CORE {
            if !present.iter().any(|k| k == key) {
                return Err(format!("{run}: audit section missing {key}"));
            }
        }
        if parsed.metrics.counter(audit::EPISODES) == 0 {
            return Err(format!("{run}: audit.episodes is zero"));
        }
        let total = parsed.metrics.counter(audit::VIOLATIONS);
        let by_class: u64 = audit::VIOLATION_COUNTERS
            .iter()
            .map(|&k| parsed.metrics.counter(k))
            .sum();
        if total != by_class {
            return Err(format!(
                "{run}: audit.violations is {total} but the per-class counters sum to {by_class}"
            ));
        }
    }
    Ok(audited)
}

/// Per-scheme counter families: every `scheme.*` key a scheme's
/// `report_metrics` may emit, keyed by the scheme's display name
/// (StackTrack reports `st.*` statistics instead and owns no family;
/// schema in `docs/METRICS.md`, per-scheme semantics in
/// `docs/SCHEMES.md`).
const SCHEME_FAMILIES: [(&str, &[&str]); 7] = [
    ("Original", &["scheme.none.leaked"]),
    ("Epoch", &["scheme.epoch.freed"]),
    ("Hazards", &["scheme.hazard.scans"]),
    (
        "DTA",
        &[
            "scheme.dta.anchors",
            "scheme.dta.freezes",
            "scheme.dta.recoveries",
        ],
    ),
    ("RefCount", &["scheme.rc.freed"]),
    (
        "NBR",
        &[
            "scheme.nbr.neutralizations",
            "scheme.nbr.signals_sent",
            "scheme.nbr.freed",
        ],
    ),
    (
        "Hyaline",
        &[
            "scheme.hyaline.dispatches",
            "scheme.hyaline.batch_handoffs",
            "scheme.hyaline.freed",
        ],
    ),
];

/// Validates the `scheme.*` counter section of every parsed run: each
/// key must be a counter from the canonical per-scheme vocabulary
/// (`SCHEME_FAMILIES`), and a run may only carry the family its own
/// scheme owns — a Hazards run reporting `scheme.epoch.freed` means the
/// snapshot's runs were mislabeled or cross-wired. Returns the number
/// of runs carrying at least one scheme counter.
pub fn validate_scheme_counters(runs: &[ParsedRun]) -> Result<u64, String> {
    let mut carrying = 0;
    for parsed in runs {
        let run = parsed.label();
        let own: Option<&[&str]> = SCHEME_FAMILIES
            .iter()
            .find(|(name, _)| *name == parsed.scheme)
            .map(|(_, keys)| *keys);
        let mut any = false;
        for (key, metric) in parsed.metrics.iter() {
            if !key.starts_with("scheme.") {
                continue;
            }
            if matches!(metric, st_obs::Metric::Histogram(_)) {
                return Err(format!("{run}: {key} is a histogram, expected a counter"));
            }
            any = true;
            if !SCHEME_FAMILIES.iter().any(|(_, keys)| keys.contains(&key)) {
                return Err(format!(
                    "{run}: unknown scheme counter {key} (not in any scheme's vocabulary)"
                ));
            }
            if let Some(own) = own {
                if !own.contains(&key) {
                    return Err(format!(
                        "{run}: counter {key} belongs to another scheme's family"
                    ));
                }
            }
        }
        if any {
            carrying += 1;
        }
    }
    Ok(carrying)
}

/// Persists raw results as JSON lines under `out_dir/name.json`, the full
/// metrics snapshot under `out_dir/name.metrics.json`, and the rendered
/// table as markdown under `out_dir/name.md`.
pub fn persist(out_dir: &Path, name: &str, results: &[RunResult], tables: &[Table]) {
    fs::create_dir_all(out_dir).expect("create results directory");
    let json: Vec<String> = results.iter().map(|r| r.to_json().to_string()).collect();
    fs::write(out_dir.join(format!("{name}.json")), json.join("\n") + "\n")
        .expect("write results json");
    fs::write(
        out_dir.join(format!("{name}.metrics.json")),
        metrics_snapshot(name, results).to_pretty_string() + "\n",
    )
    .expect("write metrics snapshot");
    let md: String = tables.iter().map(Table::to_markdown).collect();
    fs::write(out_dir.join(format!("{name}.md")), md).expect("write results markdown");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn ops_formatting() {
        assert_eq!(fmt_ops(12.0), "12");
        assert_eq!(fmt_ops(1_500.0), "1.5K");
        assert_eq!(fmt_ops(2_300_000.0), "2.30M");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    fn sample_result() -> RunResult {
        let mut metrics = MetricsRegistry::new();
        metrics.add("st.ops", 123);
        metrics.add("st.aborts.conflict", 7);
        metrics.add("run.total_ops", 123);
        metrics.record_n("st.segment_length", 16, 40);
        let per_thread = (0..4)
            .map(|thread| PerThread {
                thread,
                ops: if thread == 0 { 33 } else { 30 },
                busy_cycles: 1_000_000,
                garbage: 1,
            })
            .collect();
        RunResult {
            scheme: "stacktrack".into(),
            structure: "list".into(),
            threads: 4,
            duration_ms: 2,
            total_ops: 123,
            ops_per_sec: 61_500.0,
            tx_begun: 200,
            tx_committed: 180,
            aborts_conflict: 7,
            aborts_capacity: 5,
            aborts_explicit: 3,
            aborts_preempted: 2,
            aborts_other: 3,
            fences: 9,
            loads: 1000,
            stores: 500,
            tx_loads: 800,
            tx_stores: 400,
            cas_ops: 11,
            context_switches: 2,
            avg_splits_per_op: 1.5,
            avg_split_length: 16.0,
            slow_ops: 1,
            scans: 6,
            avg_scan_depth: 32.0,
            scan_retries: 0,
            scan_penalty_pct: 0.5,
            garbage: 4,
            live_words: 4096,
            per_thread,
            metrics,
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let results = [sample_result()];
        let doc = metrics_snapshot("fig_demo", &results);
        let parsed = parse_metrics_snapshot(&doc.to_pretty_string()).unwrap();
        assert_eq!(parsed.len(), 1);
        let run = &parsed[0];
        assert_eq!(run.scheme, "stacktrack");
        assert_eq!(run.structure, "list");
        assert_eq!(run.threads, 4);
        assert_eq!(run.metrics, results[0].metrics);
        assert_eq!(run.metrics.counter("st.aborts.conflict"), 7);
        assert_eq!(
            run.metrics.histogram("st.segment_length").unwrap().count(),
            40
        );
        assert_eq!(run.per_thread, results[0].per_thread);
        assert_eq!(validate_per_thread(&parsed), Ok(()));
    }

    #[test]
    fn per_thread_envelope_is_required() {
        let doc = metrics_snapshot("fig_demo", &[sample_result()])
            .to_string()
            .replace("\"per_thread\":", "\"per_thread_gone\":");
        let err = parse_metrics_snapshot(&doc).unwrap_err();
        assert!(err.contains("per_thread"), "{err}");
    }

    #[test]
    fn per_thread_rejects_row_count_mismatch() {
        let mut result = sample_result();
        result.per_thread.pop();
        let doc = metrics_snapshot("fig_demo", &[result]);
        let parsed = parse_metrics_snapshot(&doc.to_string()).unwrap();
        let err = validate_per_thread(&parsed).unwrap_err();
        assert!(err.contains("3 per_thread rows for 4 threads"), "{err}");
    }

    #[test]
    fn per_thread_rejects_non_contiguous_ids() {
        let mut result = sample_result();
        result.per_thread[2].thread = 9;
        let doc = metrics_snapshot("fig_demo", &[result]);
        let parsed = parse_metrics_snapshot(&doc.to_string()).unwrap();
        let err = validate_per_thread(&parsed).unwrap_err();
        assert!(err.contains("not contiguous"), "{err}");
    }

    #[test]
    fn per_thread_rejects_ops_mismatch() {
        let mut result = sample_result();
        result.per_thread[0].ops += 1;
        let doc = metrics_snapshot("fig_demo", &[result]);
        let parsed = parse_metrics_snapshot(&doc.to_string()).unwrap();
        let err = validate_per_thread(&parsed).unwrap_err();
        assert!(err.contains("run.total_ops"), "{err}");
    }

    #[test]
    fn snapshot_rejects_future_schema() {
        let mut doc = metrics_snapshot("x", &[]);
        doc.set("schema_version", SCHEMA_VERSION + 1);
        let err = parse_metrics_snapshot(&doc.to_string()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    /// A hand-built snapshot with one run per `(scheme, series)` pair.
    fn garbage_snapshot(series: &[(&str, &[(String, u64)])]) -> String {
        let mut doc = Json::obj();
        doc.set("schema_version", SCHEMA_VERSION);
        let runs: Vec<Json> = series
            .iter()
            .map(|(scheme, points)| {
                let mut metrics = Json::obj();
                metrics.set("reclaim.outstanding_garbage", 0u64);
                for (key, value) in points.iter() {
                    metrics.set(key, *value);
                }
                let rows: Vec<Json> = (0..2usize)
                    .map(|thread| {
                        PerThread {
                            thread,
                            ops: 0,
                            busy_cycles: 0,
                            garbage: 0,
                        }
                        .to_json()
                    })
                    .collect();
                let mut run = Json::obj();
                run.set("scheme", *scheme);
                run.set("structure", "list");
                run.set("threads", 2u64);
                run.set("per_thread", Json::Arr(rows));
                run.set("metrics", metrics);
                run
            })
            .collect();
        doc.set("runs", Json::Arr(runs));
        doc.to_string()
    }

    fn ts(indices: &[u64]) -> Vec<(String, u64)> {
        indices
            .iter()
            .map(|i| (format!("reclaim.garbage_ts.{i:02}"), 10 * i))
            .collect()
    }

    #[test]
    fn garbage_series_accepts_contiguous_consistent_runs() {
        let a = ts(&[1, 2, 3]);
        let b = ts(&[1, 2, 3]);
        let text = garbage_snapshot(&[("Epoch", &a), ("StackTrack", &b)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        assert_eq!(validate_garbage_series(&runs), Ok(3));
    }

    #[test]
    fn garbage_series_without_samples_is_fine() {
        let text = garbage_snapshot(&[("Epoch", &[])]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        assert_eq!(validate_garbage_series(&runs), Ok(0));
    }

    #[test]
    fn garbage_series_rejects_gaps() {
        let a = ts(&[1, 3]);
        let text = garbage_snapshot(&[("Epoch", &a)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_garbage_series(&runs).unwrap_err();
        assert!(err.contains("not contiguous"), "{err}");
    }

    #[test]
    fn garbage_series_rejects_missing_first_sample() {
        let a = ts(&[2, 3]);
        let text = garbage_snapshot(&[("Epoch", &a)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_garbage_series(&runs).unwrap_err();
        assert!(err.contains("expected index 01"), "{err}");
    }

    #[test]
    fn garbage_series_rejects_count_mismatch_across_runs() {
        let a = ts(&[1, 2, 3]);
        let b = ts(&[1, 2]);
        let text = garbage_snapshot(&[("Epoch", &a), ("StackTrack", &b)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_garbage_series(&runs).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn garbage_series_rejects_malformed_index() {
        let a = vec![("reclaim.garbage_ts.x1".to_string(), 5u64)];
        let text = garbage_snapshot(&[("Epoch", &a)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_garbage_series(&runs).unwrap_err();
        assert!(err.contains("malformed"), "{err}");
    }

    #[test]
    fn negative_garbage_sample_is_rejected_at_parse() {
        // Non-negativity is enforced by the registry parser itself: a
        // snapshot carrying a negative sample never yields a registry.
        let a = ts(&[1]);
        let good = garbage_snapshot(&[("Epoch", &a)]);
        let bad = good.replace(
            "\"reclaim.garbage_ts.01\":10",
            "\"reclaim.garbage_ts.01\":-10",
        );
        assert_ne!(good, bad, "replacement did not apply");
        let err = parse_metrics_snapshot(&bad).unwrap_err();
        assert!(err.contains("unsigned"), "{err}");
    }

    /// A hand-built audit snapshot: one run whose metrics are exactly
    /// `pairs` (plus the envelope-required `run.total_ops`).
    fn audit_snapshot_text(pairs: &[(&str, u64)]) -> String {
        let mut doc = Json::obj();
        doc.set("schema_version", SCHEMA_VERSION);
        let mut metrics = Json::obj();
        metrics.set("run.total_ops", 0u64);
        for (key, value) in pairs {
            metrics.set(key, *value);
        }
        let rows: Vec<Json> = (0..2usize)
            .map(|thread| {
                PerThread {
                    thread,
                    ops: 0,
                    busy_cycles: 0,
                    garbage: 0,
                }
                .to_json()
            })
            .collect();
        let mut run = Json::obj();
        run.set("scheme", "Hazards");
        run.set("structure", "list");
        run.set("threads", 2u64);
        run.set("per_thread", Json::Arr(rows));
        run.set("metrics", metrics);
        doc.set("runs", Json::Arr(vec![run]));
        doc.to_string()
    }

    fn clean_audit_pairs() -> Vec<(&'static str, u64)> {
        use st_obs::audit;
        let mut pairs = vec![
            (audit::EPISODES, 5),
            (audit::RETIRES, 40),
            (audit::FREES, 40),
            (audit::VIOLATIONS, 0),
        ];
        pairs.extend(audit::VIOLATION_COUNTERS.iter().map(|&k| (k, 0)));
        pairs
    }

    #[test]
    fn audit_section_accepts_a_clean_run() {
        let text = audit_snapshot_text(&clean_audit_pairs());
        let runs = parse_metrics_snapshot(&text).unwrap();
        assert_eq!(validate_audit(&runs), Ok(1));
    }

    #[test]
    fn audit_section_is_optional() {
        let text = garbage_snapshot(&[("Epoch", &[])]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        assert_eq!(validate_audit(&runs), Ok(0));
    }

    #[test]
    fn audit_section_rejects_violation_sum_mismatch() {
        use st_obs::audit;
        let mut pairs = clean_audit_pairs();
        for (key, value) in pairs.iter_mut() {
            if *key == audit::VIOLATIONS {
                *value = 3;
            }
            if *key == audit::V_LEAK {
                *value = 2;
            }
        }
        let text = audit_snapshot_text(&pairs);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_audit(&runs).unwrap_err();
        assert!(err.contains("sum to 2"), "{err}");
    }

    #[test]
    fn audit_section_rejects_missing_core_counter() {
        use st_obs::audit;
        let pairs: Vec<(&str, u64)> = clean_audit_pairs()
            .into_iter()
            .filter(|(k, _)| *k != audit::RETIRES)
            .collect();
        let text = audit_snapshot_text(&pairs);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_audit(&runs).unwrap_err();
        assert!(err.contains("missing audit.retires"), "{err}");
    }

    #[test]
    fn audit_section_rejects_unknown_counters() {
        let mut pairs = clean_audit_pairs();
        pairs.push(("audit.violations.typo", 1));
        let text = audit_snapshot_text(&pairs);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_audit(&runs).unwrap_err();
        assert!(err.contains("unknown audit counter"), "{err}");
    }

    #[test]
    fn audit_section_rejects_zero_episodes() {
        use st_obs::audit;
        let mut pairs = clean_audit_pairs();
        for (key, value) in pairs.iter_mut() {
            if *key == audit::EPISODES {
                *value = 0;
            }
        }
        let text = audit_snapshot_text(&pairs);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_audit(&runs).unwrap_err();
        assert!(err.contains("audit.episodes is zero"), "{err}");
    }

    /// A snapshot with one run labeled `scheme` whose metrics are exactly
    /// `pairs` (plus the envelope-required `run.total_ops`).
    fn scheme_snapshot_text(scheme: &str, pairs: &[(&str, u64)]) -> String {
        let mut doc = Json::obj();
        doc.set("schema_version", SCHEMA_VERSION);
        let mut metrics = Json::obj();
        metrics.set("run.total_ops", 0u64);
        for (key, value) in pairs {
            metrics.set(key, *value);
        }
        let rows: Vec<Json> = (0..2usize)
            .map(|thread| {
                PerThread {
                    thread,
                    ops: 0,
                    busy_cycles: 0,
                    garbage: 0,
                }
                .to_json()
            })
            .collect();
        let mut run = Json::obj();
        run.set("scheme", scheme);
        run.set("structure", "list");
        run.set("threads", 2u64);
        run.set("per_thread", Json::Arr(rows));
        run.set("metrics", metrics);
        doc.set("runs", Json::Arr(vec![run]));
        doc.to_string()
    }

    #[test]
    fn scheme_counters_accept_every_family() {
        for (scheme, keys) in SCHEME_FAMILIES {
            let pairs: Vec<(&str, u64)> = keys.iter().map(|&k| (k, 3)).collect();
            let text = scheme_snapshot_text(scheme, &pairs);
            let runs = parse_metrics_snapshot(&text).unwrap();
            assert_eq!(validate_scheme_counters(&runs), Ok(1), "{scheme}");
        }
    }

    #[test]
    fn scheme_counters_are_optional() {
        let text = scheme_snapshot_text("StackTrack", &[("st.splits", 2)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        assert_eq!(validate_scheme_counters(&runs), Ok(0));
    }

    #[test]
    fn scheme_counters_reject_unknown_keys() {
        let text = scheme_snapshot_text("NBR", &[("scheme.nbr.typo", 1)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_scheme_counters(&runs).unwrap_err();
        assert!(err.contains("unknown scheme counter"), "{err}");
    }

    #[test]
    fn scheme_counters_reject_cross_wired_families() {
        let text = scheme_snapshot_text("Hyaline", &[("scheme.nbr.freed", 1)]);
        let runs = parse_metrics_snapshot(&text).unwrap();
        let err = validate_scheme_counters(&runs).unwrap_err();
        assert!(err.contains("another scheme's family"), "{err}");
    }

    #[test]
    fn flat_summary_keeps_tool_facing_field_names() {
        // tools/update_experiments.py keys on these exact names.
        let json = sample_result().to_json().to_string();
        for key in [
            "ops_per_sec",
            "threads",
            "scheme",
            "tx_committed",
            "aborts_conflict",
            "aborts_capacity",
            "aborts_preempted",
            "avg_splits_per_op",
            "avg_split_length",
            "scan_penalty_pct",
            "avg_scan_depth",
            "scans",
            "scan_retries",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }
}
