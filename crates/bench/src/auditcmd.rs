//! `st-bench audit`: the heap-ledger audit oracle + differential soak
//! harness (see `docs/AUDIT.md`).
//!
//! ```text
//! st-bench audit [--structures list,hash] [--schemes A,B,...]
//!                [--budget-ms N] [--episodes N] [--threads N] [--ops N]
//!                [--keys N] [--seed N] [--faults on|off] [--percent N]
//!                [--mutate M] [--out DIR]
//! ```
//!
//! Each *episode* runs one seeded scripted workload (the `st-check`
//! harness) under a randomized schedule with every oracle armed: the
//! heap's use-after-free oracle, the lifecycle ledger (double retire,
//! double free, free-before-retire, leak-at-teardown), and the
//! differential check of per-op results against the structure's
//! sequential specification. Episodes round-robin over every requested
//! structure × scheme combination — `Scheme::None` rides along as the
//! reclaim-none reference — until the wall-clock budget or the episode
//! cap is reached. A violating episode is shrunk to a minimal
//! `st-bench check --replay` token and stops further soaking of its
//! combination.
//!
//! The soak writes `audit.metrics.json` (schema v2): one run per
//! combination, with the `audit.*` counters named in [`st_obs::audit`]
//! and a `per_thread` envelope whose ops rows sum to `run.total_ops`.

use crate::experiment::PerThread;
use st_check::{
    run_schedule, shrink_failure, CheckConfig, Mutation, RecordingController, ReplayToken,
    Structure, Violation,
};
use st_machine::{FaultPlan, Pcg32};
use st_obs::{audit, Json, MetricsRegistry, SCHEMA_VERSION};
use st_reclaim::Scheme;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Soak parameters (CLI flags of `st-bench audit`).
#[derive(Debug, Clone)]
pub struct AuditOpts {
    /// Structures to soak (default: list and hash, the two whose node
    /// turnover is highest per step).
    pub structures: Vec<Structure>,
    /// Schemes to soak (default: all six, including the reclaim-none
    /// reference).
    pub schemes: Vec<Scheme>,
    /// Wall-clock soak budget in milliseconds. Every combination gets at
    /// least one episode even when the budget is already spent.
    pub budget_ms: u64,
    /// Hard cap on episodes per combination (keeps artifacts bounded and
    /// runs reproducible when the budget is generous).
    pub max_episodes: u64,
    /// Simulated threads per episode.
    pub threads: usize,
    /// Scripted operations per thread per episode.
    pub ops: usize,
    /// Keys drawn from `1..=keys` (small, to force conflicts).
    pub keys: u64,
    /// Base seed; episode `e` soaks seed `base + e * PHI`.
    pub seed: u64,
    /// Inject a seed-derived stall + preemption-storm plan per episode.
    pub faults: bool,
    /// Per-decision deviation probability of the randomized scheduler.
    pub percent: u32,
    /// Protocol mutation (teeth checks; `none` for real audits).
    pub mutation: Mutation,
    /// Output directory for `audit.metrics.json`.
    pub out: PathBuf,
}

impl Default for AuditOpts {
    fn default() -> Self {
        let base = CheckConfig::default();
        AuditOpts {
            structures: vec![Structure::List, Structure::Hash],
            schemes: Scheme::all().to_vec(),
            budget_ms: 3_000,
            max_episodes: 40,
            threads: base.threads,
            ops: base.ops_per_thread,
            keys: base.key_range,
            seed: base.seed,
            faults: false,
            percent: 25,
            mutation: Mutation::None,
            out: PathBuf::from("results"),
        }
    }
}

/// Accumulated soak state of one structure × scheme combination.
#[derive(Debug)]
pub struct ComboSummary {
    /// Structure soaked.
    pub structure: Structure,
    /// Scheme soaked.
    pub scheme: Scheme,
    /// Episodes executed.
    pub episodes: u64,
    /// Completed operations across all episodes.
    pub ops: u64,
    /// Completed operations per thread slot (snapshot envelope rows).
    pub per_thread_ops: Vec<u64>,
    /// Ledger retire events across all episodes.
    pub retires: u64,
    /// Ledger free events across all episodes.
    pub frees: u64,
    /// Findings per class, indexed like [`audit::VIOLATION_COUNTERS`].
    pub violation_counts: [u64; audit::VIOLATION_COUNTERS.len()],
    /// The first failing episode: its findings and the shrunk token.
    pub failure: Option<(Vec<Violation>, ReplayToken)>,
}

impl ComboSummary {
    fn new(structure: Structure, scheme: Scheme, threads: usize) -> Self {
        Self {
            structure,
            scheme,
            episodes: 0,
            ops: 0,
            per_thread_ops: vec![0; threads],
            retires: 0,
            frees: 0,
            violation_counts: [0; audit::VIOLATION_COUNTERS.len()],
            failure: None,
        }
    }

    /// Total findings across all classes.
    pub fn violations(&self) -> u64 {
        self.violation_counts.iter().sum()
    }
}

/// Maps a finding to its `audit.violations.*` counter index.
fn classify(v: &Violation) -> usize {
    let key = match v {
        Violation::Uaf(_) => audit::V_UAF,
        Violation::NonLinearizable(_) => audit::V_DIFFERENTIAL,
        Violation::Panic(_) => audit::V_PANIC,
        Violation::Ledger(m) if m.starts_with("double-retire") => audit::V_DOUBLE_RETIRE,
        Violation::Ledger(m) if m.starts_with("double-free") => audit::V_DOUBLE_FREE,
        Violation::Ledger(m) if m.starts_with("free-before-retire") => audit::V_FREE_BEFORE_RETIRE,
        Violation::Ledger(_) => audit::V_LEAK,
    };
    audit::VIOLATION_COUNTERS
        .iter()
        .position(|&k| k == key)
        .expect("classified counter is listed")
}

/// A seed-derived fault plan for one episode: one mid-run stall plus one
/// preemption storm. Kills are deliberately absent — a killed thread
/// never tears down, which would blind the leak oracle for the whole
/// episode (the windows below end well inside the step budget, so every
/// episode still drains and teardown leaks stay judgeable).
fn fault_plan(seed: u64, threads: usize) -> FaultPlan {
    let mut rng = Pcg32::new_stream(seed, 0xfa17);
    FaultPlan::new()
        .stall(
            rng.below(threads.max(1) as u64) as usize,
            rng.below(20_000),
            1_000 + rng.below(9_000),
        )
        .storm(0, rng.below(20_000), 500 + rng.below(4_000))
}

/// Runs the soak and returns one summary per combination.
pub fn soak(opts: &AuditOpts) -> Vec<ComboSummary> {
    let started = Instant::now();
    let mut combos: Vec<ComboSummary> = opts
        .structures
        .iter()
        .flat_map(|&structure| {
            opts.schemes
                .iter()
                .map(move |&scheme| ComboSummary::new(structure, scheme, opts.threads))
        })
        .collect();
    'soak: for e in 0..opts.max_episodes {
        for combo in combos.iter_mut() {
            // Episode 0 always runs so every combination has coverage.
            if e > 0 && started.elapsed().as_millis() as u64 >= opts.budget_ms {
                break 'soak;
            }
            if combo.failure.is_some() {
                continue;
            }
            let seed = opts.seed.wrapping_add(e.wrapping_mul(0x9e37_79b9));
            let config = CheckConfig {
                structure: combo.structure,
                scheme: combo.scheme,
                threads: opts.threads,
                ops_per_thread: opts.ops,
                key_range: opts.keys,
                seed,
                mutation: opts.mutation,
                faults: if opts.faults {
                    fault_plan(seed, opts.threads)
                } else {
                    FaultPlan::default()
                },
                ..CheckConfig::default()
            };
            let ctrl = Arc::new(RecordingController::random(
                seed ^ 0x51ed_c0de,
                opts.percent,
            ));
            let outcome = run_schedule(&config, ctrl);
            combo.episodes += 1;
            combo.ops += outcome.completed_ops;
            for (t, &n) in outcome.per_thread_ops.iter().enumerate() {
                combo.per_thread_ops[t] += n;
            }
            combo.retires += outcome.ledger.retire_events;
            combo.frees += outcome.ledger.free_events;
            if !outcome.violations.is_empty() {
                for v in &outcome.violations {
                    combo.violation_counts[classify(v)] += 1;
                }
                let violations = outcome.violations.clone();
                let deviations = outcome.deviations.clone();
                let (failure, _shrink_runs) = shrink_failure(&config, deviations, outcome);
                combo.failure = Some((violations, failure.token));
            }
        }
    }
    combos
}

/// Builds the schema-v2 `audit.metrics.json` document: one run per
/// combination, `audit.*` counters plus a `per_thread` envelope whose
/// ops rows sum to `run.total_ops`.
pub fn audit_snapshot(name: &str, budget_ms: u64, combos: &[ComboSummary]) -> Json {
    let mut doc = Json::obj();
    doc.set("schema_version", SCHEMA_VERSION);
    doc.set("name", name);
    let runs: Vec<Json> = combos
        .iter()
        .map(|c| {
            let mut metrics = MetricsRegistry::new();
            metrics.add("run.total_ops", c.ops);
            metrics.add(audit::EPISODES, c.episodes);
            metrics.add(audit::RETIRES, c.retires);
            metrics.add(audit::FREES, c.frees);
            metrics.add(audit::VIOLATIONS, c.violations());
            for (key, &count) in audit::VIOLATION_COUNTERS.iter().zip(&c.violation_counts) {
                metrics.add(key, count);
            }
            let rows: Vec<Json> = c
                .per_thread_ops
                .iter()
                .enumerate()
                .map(|(thread, &ops)| {
                    PerThread {
                        thread,
                        ops,
                        busy_cycles: 0,
                        garbage: 0,
                    }
                    .to_json()
                })
                .collect();
            let mut run = Json::obj();
            run.set("scheme", c.scheme.name());
            run.set("structure", c.structure.name());
            run.set("threads", c.per_thread_ops.len());
            run.set("duration_ms", budget_ms);
            run.set("per_thread", Json::Arr(rows));
            run.set("metrics", metrics.to_json());
            run
        })
        .collect();
    doc.set("runs", Json::Arr(runs));
    doc
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: st-bench audit [--structures list,hash,queue,skiplist] \
         [--schemes None,Hazards,Epoch,StackTrack,DTA,RefCount,NBR,Hyaline] [--budget-ms N] \
         [--episodes N] [--threads N] [--ops N] [--keys N] [--seed N] \
         [--faults on|off] [--percent N] \
         [--mutate none|splits|hazard|skipfree|dretire|nbrskip|hyadrop] [--out DIR]"
    );
    ExitCode::from(2)
}

/// Entry point for `st-bench audit`.
pub fn run(args: &[String]) -> ExitCode {
    let mut opts = AuditOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let int = |what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("{what} takes an integer, got {value:?}"))
        };
        let result: Result<(), String> = match flag {
            "--structures" => value
                .split(',')
                .map(|s| s.trim().parse())
                .collect::<Result<Vec<Structure>, _>>()
                .map(|v| opts.structures = v),
            "--schemes" => value
                .split(',')
                .map(|s| s.trim().parse())
                .collect::<Result<Vec<Scheme>, _>>()
                .map(|v| opts.schemes = v),
            "--budget-ms" => int(flag).map(|v| opts.budget_ms = v),
            "--episodes" => int(flag).map(|v| opts.max_episodes = v.max(1)),
            "--threads" => int(flag).map(|v| opts.threads = v as usize),
            "--ops" => int(flag).map(|v| opts.ops = v as usize),
            "--keys" => int(flag).map(|v| opts.keys = v),
            "--seed" => int(flag).map(|v| opts.seed = v),
            "--percent" => int(flag).map(|v| opts.percent = v as u32),
            "--faults" => match value.as_str() {
                "on" => {
                    opts.faults = true;
                    Ok(())
                }
                "off" => {
                    opts.faults = false;
                    Ok(())
                }
                other => Err(format!("--faults takes on or off, got {other:?}")),
            },
            "--mutate" => value.parse().map(|m| opts.mutation = m),
            "--out" => {
                opts.out = PathBuf::from(value);
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = result {
            eprintln!("{e}");
            return usage();
        }
        i += 2;
    }

    let combos = soak(&opts);
    let mut failed = false;
    for c in &combos {
        match &c.failure {
            None => {
                println!(
                    "audit {}/{}: {} episodes, {} ops, {} retires / {} frees: clean",
                    c.structure, c.scheme, c.episodes, c.ops, c.retires, c.frees
                );
            }
            Some((violations, token)) => {
                failed = true;
                println!(
                    "audit {}/{}: FAILED on episode {} ({} finding(s))",
                    c.structure,
                    c.scheme,
                    c.episodes,
                    violations.len()
                );
                for v in violations {
                    println!("  violation: {v}");
                }
                println!("  replay with: st-bench check --replay {token}");
            }
        }
    }
    let doc = audit_snapshot("audit", opts.budget_ms, &combos);
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("{}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    let path = opts.out.join("audit.metrics.json");
    if let Err(e) = std::fs::write(&path, doc.to_pretty_string() + "\n") {
        eprintln!("{}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "audit: {} combination(s), {} episode(s), snapshot {}",
        combos.len(),
        combos.iter().map(|c| c.episodes).sum::<u64>(),
        path.display()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
