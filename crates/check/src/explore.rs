//! Schedule exploration: bounded DFS over deviation points, a PCT-style
//! randomized mode, and greedy shrinking of failing schedules.
//!
//! **DFS mode** enumerates schedules by the number of forced preemptions
//! they contain (the *preemption bound*), in the spirit of
//! delay-bounded / context-bound model checking: start from the
//! deviation-free default schedule, and for every explored schedule whose
//! deviation budget is not exhausted, branch on each decision point after
//! its last deviation, forcing each alternative runnable thread there.
//! Most reclamation races need one or two preemptions placed at the right
//! step, so the interesting part of the space is covered early.
//!
//! **Random mode** flips a biased coin at every branchable decision
//! instead — much deeper schedules, no systematic coverage. It is fully
//! deterministic per attempt seed, so a failure found at attempt `i` is
//! reproducible, and its recorded deviation list replays identically.
//!
//! Either way, a failing schedule is **shrunk** by greedily dropping
//! deviations that are not needed for the failure, then serialized as a
//! [`ReplayToken`].

use crate::harness::{run_schedule, CheckConfig, ScheduleOutcome, Violation};
use crate::schedule::RecordingController;
use crate::token::ReplayToken;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How to explore the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Systematic bounded DFS.
    Dfs {
        /// Only decisions with an index below this may branch.
        depth: u64,
        /// Maximum forced preemptions per schedule.
        preemption_bound: usize,
    },
    /// Randomized (PCT-style) exploration with the given per-decision
    /// deviation probability in percent.
    Random {
        /// Deviation probability in percent (e.g. 15).
        percent: u32,
    },
}

/// Exploration budget and strategy.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Strategy.
    pub mode: ExploreMode,
    /// Hard cap on schedules executed.
    pub max_schedules: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            mode: ExploreMode::Dfs {
                depth: 40,
                preemption_bound: 2,
            },
            max_schedules: 400,
        }
    }
}

/// A schedule that violated an oracle, shrunk and replayable.
#[derive(Debug)]
pub struct Failure {
    /// Findings of the shrunk schedule.
    pub violations: Vec<Violation>,
    /// Minimal replay token.
    pub token: ReplayToken,
    /// Deviations before shrinking (for diagnostics).
    pub original_deviations: usize,
}

/// What an exploration produced.
#[derive(Debug)]
pub struct CheckReport {
    /// Schedules executed (including shrink attempts).
    pub schedules_run: u64,
    /// Scheduling decisions across all schedules.
    pub total_decisions: u64,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

impl CheckReport {
    /// Whether every explored schedule satisfied both oracles.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs one schedule from a deviation list.
fn run_devs(config: &CheckConfig, devs: &BTreeMap<u64, usize>) -> (ScheduleOutcome, u64) {
    let ctrl = Arc::new(RecordingController::replay(devs.clone()));
    let outcome = run_schedule(config, ctrl);
    let decisions = outcome.decisions;
    (outcome, decisions)
}

/// Greedily removes deviations while the failure persists; returns the
/// shrunk deviation list, its outcome, and the number of extra schedules
/// executed.
fn shrink(
    config: &CheckConfig,
    mut devs: BTreeMap<u64, usize>,
    mut outcome: ScheduleOutcome,
) -> (BTreeMap<u64, usize>, ScheduleOutcome, u64) {
    let mut runs = 0;
    loop {
        let mut improved = false;
        for idx in devs.keys().copied().collect::<Vec<_>>() {
            let mut candidate = devs.clone();
            candidate.remove(&idx);
            let (attempt, _) = run_devs(config, &candidate);
            runs += 1;
            if !attempt.violations.is_empty() {
                devs = candidate;
                outcome = attempt;
                improved = true;
            }
        }
        if !improved {
            return (devs, outcome, runs);
        }
    }
}

fn failure_from(
    config: &CheckConfig,
    devs: BTreeMap<u64, usize>,
    outcome: ScheduleOutcome,
    schedules_run: &mut u64,
) -> Failure {
    let original = devs.len();
    let (shrunk, shrunk_outcome, shrink_runs) = shrink(config, devs, outcome);
    *schedules_run += shrink_runs;
    Failure {
        violations: shrunk_outcome.violations,
        token: ReplayToken {
            config: config.clone(),
            deviations: shrunk,
        },
        original_deviations: original,
    }
}

/// Shrinks a failing schedule found *outside* [`check`] — e.g. by the
/// audit harness's randomized soak — to a minimal replayable [`Failure`].
/// Returns the failure and the number of extra schedules executed while
/// shrinking.
pub fn shrink_failure(
    config: &CheckConfig,
    deviations: BTreeMap<u64, usize>,
    outcome: ScheduleOutcome,
) -> (Failure, u64) {
    let mut runs = 0;
    let failure = failure_from(config, deviations, outcome, &mut runs);
    (failure, runs)
}

/// Explores schedules of `config` per `explore`; stops at the first
/// failing schedule (shrunk to a minimal replay token) or when the
/// budget is exhausted.
pub fn check(config: &CheckConfig, explore: &ExploreConfig) -> CheckReport {
    let mut report = CheckReport {
        schedules_run: 0,
        total_decisions: 0,
        failure: None,
    };
    match explore.mode {
        ExploreMode::Dfs {
            depth,
            preemption_bound,
        } => {
            let mut stack: Vec<BTreeMap<u64, usize>> = vec![BTreeMap::new()];
            while let Some(devs) = stack.pop() {
                if report.schedules_run >= explore.max_schedules {
                    break;
                }
                let ctrl = Arc::new(RecordingController::replay(devs.clone()));
                let decisions = {
                    let outcome = run_schedule(config, ctrl.clone());
                    report.schedules_run += 1;
                    report.total_decisions += outcome.decisions;
                    if !outcome.violations.is_empty() {
                        report.failure = Some(failure_from(
                            config,
                            devs,
                            outcome,
                            &mut report.schedules_run,
                        ));
                        return report;
                    }
                    outcome.decisions
                };
                if devs.len() >= preemption_bound {
                    continue;
                }
                // Branch on every decision after the last pinned one (the
                // prefix is already covered by earlier schedules).
                let trace = ctrl.decisions();
                let start = devs.keys().next_back().map_or(0, |&i| i + 1);
                let end = decisions.min(depth);
                // Reverse so the lowest decision index is explored first.
                for i in (start..end).rev() {
                    let d = &trace[i as usize];
                    for &c in d.candidates.iter().rev() {
                        if c == d.chosen {
                            continue;
                        }
                        let mut next = devs.clone();
                        next.insert(i, c);
                        stack.push(next);
                    }
                }
            }
        }
        ExploreMode::Random { percent } => {
            for attempt in 0..explore.max_schedules {
                let ctrl = Arc::new(RecordingController::random(
                    config.seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9)),
                    percent,
                ));
                let outcome = run_schedule(config, ctrl.clone());
                report.schedules_run += 1;
                report.total_decisions += outcome.decisions;
                if !outcome.violations.is_empty() {
                    let devs = outcome.deviations.clone();
                    report.failure = Some(failure_from(
                        config,
                        devs,
                        outcome,
                        &mut report.schedules_run,
                    ));
                    return report;
                }
            }
        }
    }
    report
}

/// Replays a token, returning what its schedule produces now.
pub fn replay(token: &ReplayToken) -> ScheduleOutcome {
    let ctrl = Arc::new(RecordingController::replay(token.deviations.clone()));
    run_schedule(&token.config, ctrl)
}
