//! The recording schedule controller: dictates thread choices, records
//! every decision, and expresses schedules as sparse *deviation* lists.
//!
//! A schedule is described relative to a deterministic **default policy**:
//! keep running the thread that ran last if it is still runnable,
//! otherwise run the lowest-numbered runnable thread. Under that policy a
//! *deviation* `(decision index, thread)` is a forced preemption — the
//! point where an adversarial scheduler strikes. Most interleaving bugs
//! need only one or two well-placed preemptions, so schedules stay tiny,
//! diff cleanly, and shrink greedily.

use st_machine::{Pcg32, ScheduleController};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One recorded scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Runnable thread ids, ascending (as handed to the controller).
    pub candidates: Vec<usize>,
    /// The thread the controller picked.
    pub chosen: usize,
    /// What the default policy would have picked.
    pub default: usize,
}

/// How the controller chooses when no deviation is pinned.
#[derive(Debug)]
enum Mode {
    /// Apply the pinned deviations; default policy everywhere else.
    Replay,
    /// Deviate at random decision points (PCT-style), recording where.
    Random {
        rng: Pcg32,
        /// Deviation probability in percent at each branchable decision.
        percent: u32,
    },
}

#[derive(Debug)]
struct Inner {
    mode: Mode,
    deviations: BTreeMap<u64, usize>,
    decisions: Vec<Decision>,
    last: Option<usize>,
}

/// A [`ScheduleController`] that replays or randomizes deviations and
/// records the full decision trace.
#[derive(Debug)]
pub struct RecordingController {
    inner: Mutex<Inner>,
}

impl RecordingController {
    /// A controller that replays `deviations` (decision index → thread)
    /// over the default policy.
    pub fn replay(deviations: BTreeMap<u64, usize>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                mode: Mode::Replay,
                deviations,
                decisions: Vec::new(),
                last: None,
            }),
        }
    }

    /// A controller that preempts at random with probability
    /// `percent`/100 per branchable decision, deterministically from
    /// `seed`.
    pub fn random(seed: u64, percent: u32) -> Self {
        Self {
            inner: Mutex::new(Inner {
                mode: Mode::Random {
                    rng: Pcg32::new_stream(seed, 0xC0A7),
                    percent,
                },
                deviations: BTreeMap::new(),
                decisions: Vec::new(),
                last: None,
            }),
        }
    }

    /// Decisions recorded so far.
    pub fn decisions(&self) -> Vec<Decision> {
        self.inner.lock().unwrap().decisions.clone()
    }

    /// Number of decisions taken.
    pub fn decision_count(&self) -> u64 {
        self.inner.lock().unwrap().decisions.len() as u64
    }

    /// The sparse schedule actually executed: every decision where the
    /// choice differed from the default policy.
    pub fn deviations_taken(&self) -> BTreeMap<u64, usize> {
        self.inner
            .lock()
            .unwrap()
            .decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.chosen != d.default)
            .map(|(i, d)| (i as u64, d.chosen))
            .collect()
    }
}

/// The default continuation policy over sorted `candidates`.
fn default_pick(candidates: &[usize], last: Option<usize>) -> usize {
    match last {
        Some(t) if candidates.contains(&t) => t,
        _ => candidates[0],
    }
}

impl ScheduleController for RecordingController {
    fn pick(&self, runnable: &[usize]) -> usize {
        let inner = &mut *self.inner.lock().unwrap();
        let idx = inner.decisions.len() as u64;
        let default = default_pick(runnable, inner.last);
        let chosen = match &mut inner.mode {
            Mode::Replay => match inner.deviations.get(&idx) {
                // A pinned thread that is not runnable here (the schedule
                // drifted, e.g. while shrinking) falls back to the
                // default instead of poisoning the run.
                Some(&t) if runnable.contains(&t) => t,
                _ => default,
            },
            Mode::Random { rng, percent } => {
                let others: Vec<usize> =
                    runnable.iter().copied().filter(|&t| t != default).collect();
                if !others.is_empty() && rng.below(100) < u64::from(*percent) {
                    others[rng.below(others.len() as u64) as usize]
                } else {
                    default
                }
            }
        };
        inner.decisions.push(Decision {
            candidates: runnable.to_vec(),
            chosen,
            default,
        });
        inner.last = Some(chosen);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(ctrl: &RecordingController, rounds: &[&[usize]]) -> Vec<usize> {
        rounds.iter().map(|c| ctrl.pick(c)).collect()
    }

    #[test]
    fn default_policy_continues_last_then_lowest() {
        let ctrl = RecordingController::replay(BTreeMap::new());
        let picks = drive(&ctrl, &[&[0, 1, 2], &[0, 1, 2], &[1, 2], &[1, 2]]);
        assert_eq!(picks, vec![0, 0, 1, 1]);
        assert!(ctrl.deviations_taken().is_empty());
    }

    #[test]
    fn pinned_deviation_is_applied_and_reported() {
        let ctrl = RecordingController::replay(BTreeMap::from([(1, 2)]));
        let picks = drive(&ctrl, &[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]]);
        assert_eq!(picks, vec![0, 2, 2], "deviation switches; policy continues");
        assert_eq!(ctrl.deviations_taken(), BTreeMap::from([(1, 2)]));
    }

    #[test]
    fn unrunnable_deviation_falls_back_to_default() {
        let ctrl = RecordingController::replay(BTreeMap::from([(0, 5)]));
        assert_eq!(ctrl.pick(&[0, 1]), 0);
        assert!(ctrl.deviations_taken().is_empty());
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = |seed| {
            let ctrl = RecordingController::random(seed, 50);
            let picks: Vec<usize> = (0..64).map(|_| ctrl.pick(&[0, 1, 2, 3])).collect();
            (picks, ctrl.deviations_taken())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seed, different schedule");
        let (_, devs) = run(7);
        assert!(!devs.is_empty(), "50% deviation rate must deviate");
    }

    #[test]
    fn deviations_taken_replay_identically() {
        // The sparse signature of a random run, replayed, reproduces the
        // same pick sequence (on the same candidate sets).
        let rounds: Vec<Vec<usize>> = (0..32).map(|_| vec![0, 1, 2]).collect();
        let random = RecordingController::random(3, 40);
        let picks: Vec<usize> = rounds.iter().map(|c| random.pick(c)).collect();
        let replay = RecordingController::replay(random.deviations_taken());
        let replayed: Vec<usize> = rounds.iter().map(|c| replay.pick(c)).collect();
        assert_eq!(picks, replayed);
    }
}
