//! One bounded execution under a dictated schedule, with both oracles.
//!
//! [`run_schedule`] builds a fresh environment (heap, HTM engine, scheme
//! factory, structure), runs a small scripted workload — every thread
//! executes a fixed, seed-derived list of operations — under a
//! [`RecordingController`], and returns everything the explorer needs:
//! the decision trace, any use-after-free violations recorded by the heap
//! oracle, and the linearizability verdict of the recorded history.
//!
//! A panic during the run (e.g. a poison dereference — the classic
//! symptom of a reclamation bug) is caught and reported as a violation,
//! so exploration continues over the remaining schedules.

use crate::schedule::RecordingController;
use st_machine::{
    CostModel, Cpu, Cycles, FaultPlan, Pcg32, SimConfig, StepOutcome, Topology, Worker,
};
use st_reclaim::{ReclaimConfig, Scheme, SchemeFactory, SchemeThread};
use st_simheap::{Heap, HeapConfig, LedgerStats};
use st_simhtm::{HtmConfig, HtmEngine};
use st_structures::history::{check_linearizable, DsOp, HistoryRecorder, SpecKind};
use st_structures::{hash, list, queue, rbtree, skiplist};
use stacktrack::{OpBody, StConfig};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The four structures of the paper's evaluation, plus its running
/// example (the red-black tree of Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Harris linked list.
    List,
    /// Hash table over Harris lists.
    Hash,
    /// Michael-Scott queue.
    Queue,
    /// Fraser-Harris skip list.
    SkipList,
    /// Single-writer red-black tree with transactional readers.
    RbTree,
}

impl Structure {
    /// All five, in checking order.
    pub fn all() -> [Structure; 5] {
        [
            Structure::List,
            Structure::Hash,
            Structure::Queue,
            Structure::SkipList,
            Structure::RbTree,
        ]
    }

    /// Short name (used in replay tokens and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Structure::List => "list",
            Structure::Hash => "hash",
            Structure::Queue => "queue",
            Structure::SkipList => "skiplist",
            Structure::RbTree => "rbtree",
        }
    }

    /// The sequential specification this structure implements.
    pub fn spec(self) -> SpecKind {
        match self {
            Structure::Queue => SpecKind::Queue,
            _ => SpecKind::Set,
        }
    }
}

impl std::fmt::Display for Structure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Structure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "list" => Ok(Structure::List),
            "hash" => Ok(Structure::Hash),
            "queue" => Ok(Structure::Queue),
            "skiplist" | "skip" => Ok(Structure::SkipList),
            "rbtree" | "rb" => Ok(Structure::RbTree),
            _ => Err(format!(
                "unknown structure {s:?} (expected list, hash, queue, skiplist, or rbtree)"
            )),
        }
    }
}

/// Protocol mutations the checker can inject to prove its oracles have
/// teeth (see `docs/TESTING.md` and `docs/AUDIT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Protocols intact.
    None,
    /// StackTrack: skip the `splits`/`oper_counter` re-read after an
    /// inspection (Algorithm 1 lines 23-29), accepting torn snapshots.
    SkipSplitsRecheck,
    /// Hazard pointers: defer the publish/fence/revalidate of `load_ptr`
    /// to the next step boundary, un-protecting the node across a
    /// scheduling point.
    DeferHazardPublish,
    /// StackTrack: swallow one scan verdict that would free a candidate
    /// (the block is neither freed nor kept as a survivor). The heap
    /// ledger must report it as a leak at teardown.
    SkipFree,
    /// Hazard pointers: issue the first retire twice, planting a
    /// double-retire (and eventually a double free) the heap ledger must
    /// catch.
    DoubleRetire,
    /// NBR: ignore delivered neutralization signals, leaving the read
    /// phase's stale locals live across the reclaimer's free (the classic
    /// missed-signal bug; the use-after-free oracle must catch it).
    NbrSkipRestart,
    /// Hyaline: the dispatching thread skips its own reference decrement
    /// on the first batch, so the batch's count never reaches zero and
    /// the ledger reports its nodes as leaks at teardown.
    HyalineDropDecrement,
}

impl Mutation {
    /// Short name (used in replay tokens and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipSplitsRecheck => "splits",
            Mutation::DeferHazardPublish => "hazard",
            Mutation::SkipFree => "skipfree",
            Mutation::DoubleRetire => "dretire",
            Mutation::NbrSkipRestart => "nbrskip",
            Mutation::HyalineDropDecrement => "hyadrop",
        }
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Mutation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Ok(Mutation::None),
            "splits" => Ok(Mutation::SkipSplitsRecheck),
            "hazard" => Ok(Mutation::DeferHazardPublish),
            "skipfree" => Ok(Mutation::SkipFree),
            "dretire" => Ok(Mutation::DoubleRetire),
            "nbrskip" => Ok(Mutation::NbrSkipRestart),
            "hyadrop" => Ok(Mutation::HyalineDropDecrement),
            _ => Err(format!(
                "unknown mutation {s:?} (expected none, splits, hazard, skipfree, \
                 dretire, nbrskip, or hyadrop)"
            )),
        }
    }
}

/// The workload and environment of one check, fully determining every
/// schedule's execution together with the controller's choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Structure under check.
    pub structure: Structure,
    /// Reclamation scheme under check.
    pub scheme: Scheme,
    /// Simulated threads.
    pub threads: usize,
    /// Scripted operations per thread.
    pub ops_per_thread: usize,
    /// Keys are drawn from `1..=key_range` (small, to force conflicts).
    pub key_range: u64,
    /// Seed for the scripted workload (and the randomized explorer).
    pub seed: u64,
    /// Injected protocol mutation.
    pub mutation: Mutation,
    /// Scheduler step budget per schedule; pending operations at the
    /// limit are allowed (the linearizability checker handles them).
    pub step_limit: u64,
    /// Deterministic fault schedule applied to every schedule of this
    /// config (the audit harness soaks with stalls and storms enabled).
    pub faults: FaultPlan,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            structure: Structure::List,
            scheme: Scheme::StackTrack,
            threads: 3,
            ops_per_thread: 4,
            key_range: 6,
            seed: 1,
            mutation: Mutation::None,
            step_limit: 60_000,
            faults: FaultPlan::default(),
        }
    }
}

/// One oracle finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The heap's use-after-free oracle fired.
    Uaf(String),
    /// The heap's lifecycle ledger fired (double retire, double free,
    /// free-before-retire, or leak-at-teardown; see `docs/AUDIT.md`).
    Ledger(String),
    /// The recorded history has no valid linearization.
    NonLinearizable(String),
    /// The run panicked (e.g. a poison dereference).
    Panic(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Uaf(m) => write!(f, "use-after-free: {m}"),
            Violation::Ledger(m) => write!(f, "ledger: {m}"),
            Violation::NonLinearizable(m) => write!(f, "linearizability: {m}"),
            Violation::Panic(m) => write!(f, "panic: {m}"),
        }
    }
}

/// What one schedule produced.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// All oracle findings, in detection order.
    pub violations: Vec<Violation>,
    /// Scheduling decisions taken.
    pub decisions: u64,
    /// Sparse deviations actually executed (the schedule's signature).
    pub deviations: BTreeMap<u64, usize>,
    /// Operations that responded.
    pub completed_ops: u64,
    /// StackTrack scans completed across all threads (diagnostic: a
    /// mutation can only be exercised if scans actually ran).
    pub scans: u64,
    /// StackTrack inspection restarts forced by the consistency re-read
    /// (diagnostic: nonzero means the schedule opened the torn-snapshot
    /// window the `splits` protocol guards).
    pub scan_retries: u64,
    /// Whether every scripted operation (plus the pre-population) invoked
    /// and responded. False under kills, stalls that outlast the step
    /// budget, or a mid-run panic — the cases where leak-at-teardown
    /// cannot be judged.
    pub all_ops_completed: bool,
    /// Completed operations per thread (audit metrics rows).
    pub per_thread_ops: Vec<u64>,
    /// Aggregate heap-ledger counters for this schedule.
    pub ledger: LedgerStats,
}

/// The shared structure of a run (a cloneable shape).
#[derive(Clone)]
enum Shape {
    List(list::ListShape),
    Hash(hash::HashShape),
    Queue(queue::QueueShape),
    SkipList(skiplist::SkipShape),
    RbTree(rbtree::RbShape),
}

fn body_for(shape: &Shape, op: DsOp) -> (u32, usize, Box<OpBody<'static>>) {
    match (shape, op) {
        (Shape::List(s), DsOp::Contains(k)) => {
            (0, list::LIST_SLOTS, Box::new(list::contains_body(*s, k)))
        }
        (Shape::List(s), DsOp::Insert(k)) => {
            (1, list::LIST_SLOTS, Box::new(list::insert_body(*s, k)))
        }
        (Shape::List(s), DsOp::Delete(k)) => {
            (2, list::LIST_SLOTS, Box::new(list::delete_body(*s, k)))
        }
        (Shape::Hash(s), DsOp::Contains(k)) => {
            (0, list::LIST_SLOTS, Box::new(hash::contains_body(s, k)))
        }
        (Shape::Hash(s), DsOp::Insert(k)) => {
            (1, list::LIST_SLOTS, Box::new(hash::insert_body(s, k)))
        }
        (Shape::Hash(s), DsOp::Delete(k)) => {
            (2, list::LIST_SLOTS, Box::new(hash::delete_body(s, k)))
        }
        (Shape::Queue(s), DsOp::Enqueue(v)) => {
            (0, queue::QUEUE_SLOTS, Box::new(queue::enqueue_body(*s, v)))
        }
        (Shape::Queue(s), DsOp::Dequeue) => {
            (1, queue::QUEUE_SLOTS, Box::new(queue::dequeue_body(*s)))
        }
        (Shape::SkipList(s), DsOp::Contains(k)) => (
            0,
            skiplist::SKIP_SLOTS,
            Box::new(skiplist::contains_body(*s, k)),
        ),
        (Shape::SkipList(s), DsOp::Insert(k)) => (
            1,
            skiplist::SKIP_SLOTS,
            Box::new(skiplist::insert_body(*s, k)),
        ),
        (Shape::SkipList(s), DsOp::Delete(k)) => (
            2,
            skiplist::SKIP_SLOTS,
            Box::new(skiplist::delete_body(*s, k)),
        ),
        (Shape::RbTree(s), DsOp::Contains(k)) => (
            rbtree::OP_SEARCH,
            rbtree::RB_SLOTS,
            Box::new(rbtree::search_body(*s, k)),
        ),
        (Shape::RbTree(s), DsOp::Insert(k)) => (
            rbtree::OP_INSERT,
            rbtree::RB_SLOTS,
            Box::new(rbtree::insert_body(*s, k)),
        ),
        (Shape::RbTree(s), DsOp::Delete(k)) => (
            rbtree::OP_DELETE,
            rbtree::RB_SLOTS,
            Box::new(rbtree::delete_body(*s, k)),
        ),
        (_, op) => panic!("operation {op} does not fit this structure"),
    }
}

/// A worker running its fixed script, recording invoke/respond events.
struct ScriptWorker {
    th: Box<dyn SchemeThread>,
    thread_id: usize,
    shape: Shape,
    script: VecDeque<DsOp>,
    recorder: Arc<HistoryRecorder>,
    current: Option<(usize, Box<OpBody<'static>>)>,
}

impl Worker for ScriptWorker {
    fn step(&mut self, cpu: &mut Cpu) -> StepOutcome {
        if self.th.idle_work_pending() {
            self.th.step_idle(cpu);
            return StepOutcome::Progress;
        }
        if self.current.is_none() {
            let Some(op) = self.script.pop_front() else {
                return StepOutcome::Finished;
            };
            let (op_id, slots, body) = body_for(&self.shape, op);
            let hid = self.recorder.invoke(self.thread_id, op);
            self.th.begin_op(cpu, op_id, slots);
            self.current = Some((hid, body));
            return StepOutcome::Progress;
        }
        let (hid, body) = self.current.as_mut().expect("active op");
        match self.th.step_op(cpu, body.as_mut()) {
            Some(v) => {
                self.recorder.respond(*hid, v);
                self.current = None;
                StepOutcome::OpDone
            }
            None => StepOutcome::Progress,
        }
    }

    fn finish(&mut self, cpu: &mut Cpu) {
        self.th.teardown(cpu);
    }

    fn neutralize(&mut self, cpu: &mut Cpu) {
        self.th.neutralize(cpu);
    }
}

/// A standalone CPU for pre-population setup work (never enters the
/// simulated schedule).
fn scratch_cpu() -> Cpu {
    use st_machine::{cpu::ActivityBoard, HwContext};
    let topo = Topology::haswell();
    Cpu::new(
        0,
        HwContext::new(&topo, 0),
        Arc::new(CostModel::default()),
        Arc::new(ActivityBoard::new(topo.hw_contexts())),
        0x5e7,
    )
}

/// Generates thread `t`'s script.
fn script(config: &CheckConfig, t: usize) -> VecDeque<DsOp> {
    let mut rng = Pcg32::new_stream(config.seed ^ 0x5c81_9e1d, t as u64);
    (0..config.ops_per_thread)
        .map(|i| match config.structure {
            Structure::Queue => {
                if rng.below(2) == 0 {
                    DsOp::Enqueue(((t + 1) * 100 + i) as u64)
                } else {
                    DsOp::Dequeue
                }
            }
            _ => {
                let key = rng.below(config.key_range) + 1;
                match rng.below(3) {
                    0 => DsOp::Insert(key),
                    1 => DsOp::Delete(key),
                    _ => DsOp::Contains(key),
                }
            }
        })
        .collect()
}

/// Runs one schedule under `controller` and reports what both oracles saw.
pub fn run_schedule(config: &CheckConfig, controller: Arc<RecordingController>) -> ScheduleOutcome {
    let heap = Arc::new(Heap::new(HeapConfig {
        capacity_words: 1 << 18,
        ..HeapConfig::default()
    }));
    let engine = Arc::new(HtmEngine::new(
        heap.clone(),
        HtmConfig::default(),
        config.threads,
    ));
    let mut rc = ReclaimConfig {
        // Reclaim promptly: a batch of one puts every free inside the
        // explored window instead of deferring it past the race.
        retire_batch: 1,
        // Keep quiescence waits short so epoch threads do not eat the
        // step budget spinning.
        epoch_wait_budget: 10_000,
        ..ReclaimConfig::default()
    };
    rc.mutation_defer_hazard_publish = config.mutation == Mutation::DeferHazardPublish;
    rc.mutation_double_retire = config.mutation == Mutation::DoubleRetire;
    rc.mutation_nbr_skip_restart = config.mutation == Mutation::NbrSkipRestart;
    rc.mutation_hyaline_drop_decrement = config.mutation == Mutation::HyalineDropDecrement;
    let st_config = StConfig {
        // Short segments and fine-grained interruptible scans maximize
        // the schedule points where the consistency protocol matters.
        // One-block segments matter most: they let a local-only shuffle
        // (e.g. the list's advance) commit on its own, which is the only
        // commit that can republish a frame mid-scan without conflicting
        // with the reclaimer's unlink writes.
        initial_split_length: 1,
        scan_chunk_words: 1,
        max_free: 0,
        // Bodies keep every retained pointer in a shadow-stack local, so
        // protection does not rely on the register file; leaving register
        // exposure on would let stale register words pin candidates and
        // mask scan misses from the explorer.
        expose_registers: false,
        mutation_skip_splits_recheck: config.mutation == Mutation::SkipSplitsRecheck,
        mutation_skip_one_free: config.mutation == Mutation::SkipFree,
        ..StConfig::default()
    };
    let factory = SchemeFactory::builder(config.scheme)
        .engine(engine)
        .max_threads(config.threads)
        .reclaim_config(rc)
        .st_config(st_config)
        .guard_requirement(st_structures::max_guard_requirement())
        .build();

    heap.set_uaf_oracle(true);
    // The lifecycle ledger tracks everything allocated from here on —
    // structure nodes included — so retire/free pairing and teardown
    // leaks are judged per block (see docs/AUDIT.md).
    heap.set_ledger_oracle(true);
    for (base, words) in factory.protection_roots() {
        heap.add_uaf_root(base, words);
    }

    let recorder = Arc::new(HistoryRecorder::new());
    let shape = match config.structure {
        Structure::List => Shape::List(list::ListShape::new_untimed(&heap)),
        Structure::Hash => Shape::Hash(hash::HashShape::new_untimed(&heap, 4)),
        Structure::Queue => Shape::Queue(queue::QueueShape::new_untimed(&heap)),
        Structure::SkipList => Shape::SkipList(skiplist::SkipShape::new_untimed(&heap)),
        Structure::RbTree => Shape::RbTree(rbtree::RbShape::new_untimed(&heap)),
    };
    // Pre-populate (untimed, before the clock starts) and record the
    // set-up operations so the specification starts from the same state.
    let mut seed_rng = Pcg32::new_stream(config.seed, 0x5eed);
    match &shape {
        Shape::List(s) => {
            for key in [2, 4] {
                if s.insert_untimed(&heap, key) {
                    let id = recorder.invoke(0, DsOp::Insert(key));
                    recorder.respond(id, 1);
                }
            }
        }
        Shape::Hash(s) => {
            for key in [2, 4] {
                if s.insert_untimed(&heap, key) {
                    let id = recorder.invoke(0, DsOp::Insert(key));
                    recorder.respond(id, 1);
                }
            }
        }
        Shape::SkipList(s) => {
            for key in [2, 4] {
                if s.insert_untimed(&heap, key, &mut seed_rng) {
                    let id = recorder.invoke(0, DsOp::Insert(key));
                    recorder.respond(id, 1);
                }
            }
        }
        Shape::Queue(s) => {
            for value in [901, 902] {
                s.enqueue_untimed(&heap, value);
                let id = recorder.invoke(0, DsOp::Enqueue(value));
                recorder.respond(id, 1);
            }
        }
        Shape::RbTree(s) => {
            // No untimed populate for the tree (balance bookkeeping);
            // build it through a throwaway writer on a scratch cpu, as
            // the bench workload does. NoReclaim never frees, so the
            // setup cannot disturb the oracles armed above.
            let mut cpu = scratch_cpu();
            let mut writer = st_reclaim::none::NoReclaimThread::new(heap.clone());
            for key in [2, 4] {
                let mut body = rbtree::insert_body(*s, key);
                if writer.run_op(&mut cpu, rbtree::OP_INSERT, rbtree::RB_SLOTS, &mut body) == 1 {
                    let id = recorder.invoke(0, DsOp::Insert(key));
                    recorder.respond(id, 1);
                }
            }
        }
    }

    let prepop_ops = recorder.history().len() as u64;

    let workers: Vec<ScriptWorker> = (0..config.threads)
        .map(|t| ScriptWorker {
            th: factory.thread(t),
            thread_id: t,
            shape: shape.clone(),
            script: script(config, t),
            recorder: recorder.clone(),
            current: None,
        })
        .collect();

    let sim_config = SimConfig {
        topology: Topology::haswell(),
        costs: CostModel::default(),
        seed: config.seed,
        duration: Cycles::MAX / 2,
        step_limit: Some(config.step_limit),
        faults: config.faults.clone(),
        controller: None,
    }
    .with_controller(controller.clone());

    let (finished_workers, panic_msg) = {
        let sim = st_machine::Simulator::new(sim_config);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let (_report, workers) = sim.run(workers);
            workers
        }));
        match result {
            Ok(w) => (w, None),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                (Vec::new(), Some(msg))
            }
        }
    };
    let (mut scans, mut scan_retries) = (0, 0);
    for w in &finished_workers {
        if let Some(st) = w.th.st_stats() {
            scans += st.scans;
            scan_retries += st.scan_retries;
        }
    }

    let mut violations = Vec::new();
    for v in heap.uaf_violations() {
        violations.push(Violation::Uaf(v.to_string()));
    }
    // Event-time ledger findings (double retire/free, free-before-retire)
    // are unconditional: they are wrong whenever they happen.
    for v in heap.ledger_violations() {
        violations.push(Violation::Ledger(v.to_string()));
    }
    let panicked = panic_msg.is_some();
    if let Some(msg) = panic_msg {
        violations.push(Violation::Panic(msg));
    }
    let history = recorder.history();
    let completed_ops = history.iter().filter(|r| r.completed()).count() as u64;
    let mut per_thread_ops = vec![0u64; config.threads];
    for r in &history {
        if r.completed() && r.thread < per_thread_ops.len() {
            per_thread_ops[r.thread] += 1;
        }
    }
    // Leak-at-teardown is only judged on a run that finished cleanly:
    // every scripted op responded (no kill/stall/step-limit cutoff left a
    // thread holding references or undrained limbo) and nothing panicked.
    // `Scheme::None` leaks by design — it is the audit harness's positive
    // reference, not a defect.
    let all_ops_completed =
        completed_ops == prepop_ops + config.threads as u64 * config.ops_per_thread as u64;
    if all_ops_completed && !panicked && config.scheme != Scheme::None {
        for v in heap.ledger_leaks() {
            violations.push(Violation::Ledger(v.to_string()));
        }
    }
    if let Err(e) = check_linearizable(config.structure.spec(), &history) {
        violations.push(Violation::NonLinearizable(e.to_string()));
    }

    ScheduleOutcome {
        violations,
        decisions: controller.decision_count(),
        deviations: controller.deviations_taken(),
        completed_ops,
        scans,
        scan_retries,
        all_ops_completed,
        per_thread_ops,
        ledger: heap.ledger_stats(),
    }
}
