//! `st-check`: a loom-style bounded schedule explorer for the simulated
//! machine, with linearizability and use-after-free oracles.
//!
//! The StackTrack paper's safety argument rests on a subtle protocol: a
//! reclaimer's stack/register scan is only sound because HTM commits make
//! exposed frames consistent and the `splits`/`oper_counter` re-read loop
//! rejects torn snapshots (Algorithm 1). The simulator is fully
//! deterministic, which enables what real-HTM systems cannot do:
//! *systematically explore interleavings* and mechanically check safety.
//!
//! The pieces:
//!
//! - [`schedule::RecordingController`] plugs into
//!   [`st_machine::ScheduleController`] and expresses a schedule as a
//!   sparse list of *deviations* from a deterministic default policy.
//! - [`harness::run_schedule`] executes one scripted workload under one
//!   schedule with both oracles armed: the heap's use-after-free oracle
//!   ([`st_simheap::Heap::set_uaf_oracle`]) and a Wing-Gong
//!   linearizability check over the recorded operation history
//!   ([`st_structures::history`]).
//! - [`explore::check`] searches the schedule space — bounded DFS over
//!   preemption points, or PCT-style randomized — shrinks any failing
//!   schedule, and serializes it as a [`token::ReplayToken`] that
//!   `st-bench check --replay` reproduces exactly.
//!
//! The harness proves it has teeth via *mutation knobs*
//! ([`harness::Mutation`]): disabling StackTrack's consistency re-read or
//! hazard pointers' publish-validate protocol must produce a detected
//! violation within the default budget (see `tests/model_check.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod harness;
pub mod schedule;
pub mod token;

pub use explore::{
    check, replay, shrink_failure, CheckReport, ExploreConfig, ExploreMode, Failure,
};
pub use harness::{run_schedule, CheckConfig, Mutation, ScheduleOutcome, Structure, Violation};
pub use schedule::{Decision, RecordingController};
pub use token::ReplayToken;
