//! Replay tokens: a failing schedule serialized as one copy-pastable
//! string.
//!
//! A token captures the full [`CheckConfig`] plus the shrunk deviation
//! list, so `st-bench check --replay <token>` (or
//! [`crate::replay`]) deterministically reproduces the exact execution
//! that violated an oracle — environment, workload scripts, and every
//! scheduling decision.
//!
//! Format (all fields positional, colon-separated):
//!
//! ```text
//! stck1:<structure>:<scheme>:t<threads>:o<ops>:k<keys>:s<seed>:m<mutation>[:f<faults>]:<i>=<t>,...|-
//! ```
//!
//! The optional `f` field carries the config's [`FaultPlan`] as
//! `;`-separated events — `S<t>@<at>+<for>` (stall), `P<ctx>@<at>+<for>`
//! (preemption storm), `K<t>@<at>` (kill) — and is omitted when the plan
//! is empty, so pre-fault tokens keep parsing unchanged.

use crate::harness::{CheckConfig, Mutation, Structure};
use st_machine::{FaultEvent, FaultPlan};
use st_reclaim::Scheme;
use std::collections::BTreeMap;

/// A self-contained, replayable description of one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayToken {
    /// The environment and workload.
    pub config: CheckConfig,
    /// The schedule: decision index → thread forced at that decision.
    pub deviations: BTreeMap<u64, usize>,
}

/// Renders a fault plan as the token's `f` field payload.
fn fault_spec(plan: &FaultPlan) -> String {
    plan.events()
        .iter()
        .map(|e| match *e {
            FaultEvent::Stall {
                thread,
                at_cycle,
                for_cycles,
            } => format!("S{thread}@{at_cycle}+{for_cycles}"),
            FaultEvent::PreemptionStorm {
                ctx,
                at_cycle,
                for_cycles,
            } => format!("P{ctx}@{at_cycle}+{for_cycles}"),
            FaultEvent::Kill { thread, at_cycle } => format!("K{thread}@{at_cycle}"),
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses the `f` field payload back into a fault plan.
fn parse_fault_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for ev in spec.split(';') {
        let (kind, rest) = ev.split_at(ev.len().min(1));
        let (target, timing) = rest
            .split_once('@')
            .ok_or_else(|| format!("bad fault event {ev:?} (expected <kind><target>@<timing>)"))?;
        let target = target
            .parse::<usize>()
            .map_err(|e| format!("bad fault target in {ev:?}: {e}"))?;
        let parse_cycles = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|e| format!("bad fault {what} in {ev:?}: {e}"))
        };
        match kind {
            "K" => {
                plan.push(FaultEvent::Kill {
                    thread: target,
                    at_cycle: parse_cycles(timing, "time")?,
                });
            }
            "S" | "P" => {
                let (at, dur) = timing
                    .split_once('+')
                    .ok_or_else(|| format!("bad fault window {ev:?} (expected @<at>+<for>)"))?;
                let at_cycle = parse_cycles(at, "time")?;
                let for_cycles = parse_cycles(dur, "duration")?;
                plan.push(if kind == "S" {
                    FaultEvent::Stall {
                        thread: target,
                        at_cycle,
                        for_cycles,
                    }
                } else {
                    FaultEvent::PreemptionStorm {
                        ctx: target,
                        at_cycle,
                        for_cycles,
                    }
                });
            }
            _ => {
                return Err(format!(
                    "unknown fault kind in {ev:?} (expected S, P, or K)"
                ))
            }
        }
    }
    Ok(plan)
}

impl std::fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.config;
        write!(
            f,
            "stck1:{}:{}:t{}:o{}:k{}:s{}:m{}:",
            c.structure, c.scheme, c.threads, c.ops_per_thread, c.key_range, c.seed, c.mutation
        )?;
        if !c.faults.is_empty() {
            write!(f, "f{}:", fault_spec(&c.faults))?;
        }
        if self.deviations.is_empty() {
            f.write_str("-")
        } else {
            let devs: Vec<String> = self
                .deviations
                .iter()
                .map(|(i, t)| format!("{i}={t}"))
                .collect();
            f.write_str(&devs.join(","))
        }
    }
}

fn field<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, String> {
    parts.next().ok_or_else(|| format!("token missing {what}"))
}

fn tagged<'a>(part: &'a str, tag: char, what: &str) -> Result<&'a str, String> {
    part.strip_prefix(tag)
        .ok_or_else(|| format!("token field {what} must start with '{tag}' (got {part:?})"))
}

impl std::str::FromStr for ReplayToken {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.trim().split(':');
        let magic = field(&mut parts, "magic")?;
        if magic != "stck1" {
            return Err(format!(
                "not a replay token (expected stck1:..., got {magic:?})"
            ));
        }
        let structure: Structure = field(&mut parts, "structure")?.parse()?;
        let scheme: Scheme = field(&mut parts, "scheme")?.parse()?;
        let threads = tagged(field(&mut parts, "threads")?, 't', "threads")?
            .parse::<usize>()
            .map_err(|e| format!("bad thread count: {e}"))?;
        let ops_per_thread = tagged(field(&mut parts, "ops")?, 'o', "ops")?
            .parse::<usize>()
            .map_err(|e| format!("bad op count: {e}"))?;
        let key_range = tagged(field(&mut parts, "keys")?, 'k', "keys")?
            .parse::<u64>()
            .map_err(|e| format!("bad key range: {e}"))?;
        let seed = tagged(field(&mut parts, "seed")?, 's', "seed")?
            .parse::<u64>()
            .map_err(|e| format!("bad seed: {e}"))?;
        let mutation: Mutation =
            tagged(field(&mut parts, "mutation")?, 'm', "mutation")?.parse()?;
        // Optional fault field: deviations start with a digit or '-', so a
        // leading 'f' is unambiguous.
        let mut devs_str = field(&mut parts, "deviations")?;
        let mut faults = FaultPlan::default();
        if let Some(spec) = devs_str.strip_prefix('f') {
            faults = parse_fault_spec(spec)?;
            devs_str = field(&mut parts, "deviations")?;
        }
        let mut deviations = BTreeMap::new();
        if devs_str != "-" {
            for pair in devs_str.split(',') {
                let (i, t) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad deviation {pair:?} (expected idx=thread)"))?;
                deviations.insert(
                    i.parse::<u64>()
                        .map_err(|e| format!("bad deviation index: {e}"))?,
                    t.parse::<usize>()
                        .map_err(|e| format!("bad deviation thread: {e}"))?,
                );
            }
        }
        if parts.next().is_some() {
            return Err("trailing fields in replay token".to_string());
        }
        Ok(ReplayToken {
            config: CheckConfig {
                structure,
                scheme,
                threads,
                ops_per_thread,
                key_range,
                seed,
                mutation,
                faults,
                ..CheckConfig::default()
            },
            deviations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        let token = ReplayToken {
            config: CheckConfig {
                structure: Structure::Queue,
                scheme: Scheme::Hazard,
                threads: 4,
                ops_per_thread: 5,
                key_range: 8,
                seed: 99,
                mutation: Mutation::DeferHazardPublish,
                ..CheckConfig::default()
            },
            deviations: BTreeMap::from([(3, 1), (17, 2)]),
        };
        let text = token.to_string();
        assert_eq!(text, "stck1:queue:Hazards:t4:o5:k8:s99:mhazard:3=1,17=2");
        assert_eq!(text.parse::<ReplayToken>().unwrap(), token);
    }

    #[test]
    fn empty_deviation_list_round_trips() {
        let token = ReplayToken {
            config: CheckConfig::default(),
            deviations: BTreeMap::new(),
        };
        let text = token.to_string();
        assert!(text.ends_with(":-"), "{text}");
        assert_eq!(text.parse::<ReplayToken>().unwrap(), token);
    }

    #[test]
    fn fault_plans_round_trip() {
        let token = ReplayToken {
            config: CheckConfig {
                faults: FaultPlan::new()
                    .stall(1, 5_000, 2_500)
                    .storm(0, 100, 40)
                    .kill(2, 9_000),
                ..CheckConfig::default()
            },
            deviations: BTreeMap::from([(7, 0)]),
        };
        let text = token.to_string();
        assert_eq!(
            text,
            "stck1:list:StackTrack:t3:o4:k6:s1:mnone:fS1@5000+2500;P0@100+40;K2@9000:7=0"
        );
        assert_eq!(text.parse::<ReplayToken>().unwrap(), token);
    }

    #[test]
    fn pre_fault_tokens_still_parse() {
        // A token minted before the fault field existed.
        let token: ReplayToken = "stck1:list:StackTrack:t3:o4:k6:s1:mnone:3=1"
            .parse()
            .unwrap();
        assert!(token.config.faults.is_empty());
        assert_eq!(token.deviations, BTreeMap::from([(3, 1)]));
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        for text in [
            "stck1:list:StackTrack:t3:o4:k6:s1:mnone:fX1@2:-",
            "stck1:list:StackTrack:t3:o4:k6:s1:mnone:fS1@2:-", // stall missing +for
            "stck1:list:StackTrack:t3:o4:k6:s1:mnone:fS@2+3:-",
        ] {
            assert!(text.parse::<ReplayToken>().is_err(), "{text}");
        }
    }

    #[test]
    fn garbage_is_rejected_with_context() {
        assert!("nope".parse::<ReplayToken>().is_err());
        assert!("stck1:list:StackTrack:t2".parse::<ReplayToken>().is_err());
        assert!("stck1:list:StackTrack:t2:o3:k4:s5:mnone:x"
            .parse::<ReplayToken>()
            .is_err());
    }
}
