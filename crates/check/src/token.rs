//! Replay tokens: a failing schedule serialized as one copy-pastable
//! string.
//!
//! A token captures the full [`CheckConfig`] plus the shrunk deviation
//! list, so `st-bench check --replay <token>` (or
//! [`crate::replay`]) deterministically reproduces the exact execution
//! that violated an oracle — environment, workload scripts, and every
//! scheduling decision.
//!
//! Format (all fields positional, colon-separated):
//!
//! ```text
//! stck1:<structure>:<scheme>:t<threads>:o<ops>:k<keys>:s<seed>:m<mutation>:<i>=<t>,...|-
//! ```

use crate::harness::{CheckConfig, Mutation, Structure};
use st_reclaim::Scheme;
use std::collections::BTreeMap;

/// A self-contained, replayable description of one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayToken {
    /// The environment and workload.
    pub config: CheckConfig,
    /// The schedule: decision index → thread forced at that decision.
    pub deviations: BTreeMap<u64, usize>,
}

impl std::fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.config;
        write!(
            f,
            "stck1:{}:{}:t{}:o{}:k{}:s{}:m{}:",
            c.structure, c.scheme, c.threads, c.ops_per_thread, c.key_range, c.seed, c.mutation
        )?;
        if self.deviations.is_empty() {
            f.write_str("-")
        } else {
            let devs: Vec<String> = self
                .deviations
                .iter()
                .map(|(i, t)| format!("{i}={t}"))
                .collect();
            f.write_str(&devs.join(","))
        }
    }
}

fn field<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, String> {
    parts.next().ok_or_else(|| format!("token missing {what}"))
}

fn tagged<'a>(part: &'a str, tag: char, what: &str) -> Result<&'a str, String> {
    part.strip_prefix(tag)
        .ok_or_else(|| format!("token field {what} must start with '{tag}' (got {part:?})"))
}

impl std::str::FromStr for ReplayToken {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.trim().split(':');
        let magic = field(&mut parts, "magic")?;
        if magic != "stck1" {
            return Err(format!(
                "not a replay token (expected stck1:..., got {magic:?})"
            ));
        }
        let structure: Structure = field(&mut parts, "structure")?.parse()?;
        let scheme: Scheme = field(&mut parts, "scheme")?.parse()?;
        let threads = tagged(field(&mut parts, "threads")?, 't', "threads")?
            .parse::<usize>()
            .map_err(|e| format!("bad thread count: {e}"))?;
        let ops_per_thread = tagged(field(&mut parts, "ops")?, 'o', "ops")?
            .parse::<usize>()
            .map_err(|e| format!("bad op count: {e}"))?;
        let key_range = tagged(field(&mut parts, "keys")?, 'k', "keys")?
            .parse::<u64>()
            .map_err(|e| format!("bad key range: {e}"))?;
        let seed = tagged(field(&mut parts, "seed")?, 's', "seed")?
            .parse::<u64>()
            .map_err(|e| format!("bad seed: {e}"))?;
        let mutation: Mutation =
            tagged(field(&mut parts, "mutation")?, 'm', "mutation")?.parse()?;
        let devs_str = field(&mut parts, "deviations")?;
        let mut deviations = BTreeMap::new();
        if devs_str != "-" {
            for pair in devs_str.split(',') {
                let (i, t) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad deviation {pair:?} (expected idx=thread)"))?;
                deviations.insert(
                    i.parse::<u64>()
                        .map_err(|e| format!("bad deviation index: {e}"))?,
                    t.parse::<usize>()
                        .map_err(|e| format!("bad deviation thread: {e}"))?,
                );
            }
        }
        if parts.next().is_some() {
            return Err("trailing fields in replay token".to_string());
        }
        Ok(ReplayToken {
            config: CheckConfig {
                structure,
                scheme,
                threads,
                ops_per_thread,
                key_range,
                seed,
                mutation,
                ..CheckConfig::default()
            },
            deviations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        let token = ReplayToken {
            config: CheckConfig {
                structure: Structure::Queue,
                scheme: Scheme::Hazard,
                threads: 4,
                ops_per_thread: 5,
                key_range: 8,
                seed: 99,
                mutation: Mutation::DeferHazardPublish,
                ..CheckConfig::default()
            },
            deviations: BTreeMap::from([(3, 1), (17, 2)]),
        };
        let text = token.to_string();
        assert_eq!(text, "stck1:queue:Hazards:t4:o5:k8:s99:mhazard:3=1,17=2");
        assert_eq!(text.parse::<ReplayToken>().unwrap(), token);
    }

    #[test]
    fn empty_deviation_list_round_trips() {
        let token = ReplayToken {
            config: CheckConfig::default(),
            deviations: BTreeMap::new(),
        };
        let text = token.to_string();
        assert!(text.ends_with(":-"), "{text}");
        assert_eq!(text.parse::<ReplayToken>().unwrap(), token);
    }

    #[test]
    fn garbage_is_rejected_with_context() {
        assert!("nope".parse::<ReplayToken>().is_err());
        assert!("stck1:list:StackTrack:t2".parse::<ReplayToken>().is_err());
        assert!("stck1:list:StackTrack:t2:o3:k4:s5:mnone:x"
            .parse::<ReplayToken>()
            .is_err());
    }
}
