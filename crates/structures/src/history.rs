//! Operation histories and a Wing–Gong linearizability checker.
//!
//! The model checker (`st-check`) records an *invoke* event when a worker
//! begins a structure operation and a *respond* event when the operation
//! completes, stamped with a logical clock that advances in execution
//! order (the discrete-event simulator runs one step at a time, so
//! execution order is the real-time order of the virtual machine). The
//! resulting history is checked against a sequential specification with
//! the Wing & Gong algorithm: repeatedly pick a *minimal* operation — one
//! whose invocation precedes every other unlinearized response — apply it
//! to the spec, and backtrack when the recorded result disagrees.
//!
//! Three of the paper's structures (list, hash, skip list) share the set
//! specification; the Michael-Scott queue has its own FIFO spec.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A data-structure operation, with its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsOp {
    /// Set: insert `key`; returns 1 if newly inserted.
    Insert(u64),
    /// Set: delete `key`; returns 1 if present.
    Delete(u64),
    /// Set: membership test; returns 1 if present.
    Contains(u64),
    /// Queue: enqueue `value`; returns 1.
    Enqueue(u64),
    /// Queue: dequeue; returns the value, or 0 when empty.
    Dequeue,
}

impl std::fmt::Display for DsOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsOp::Insert(k) => write!(f, "insert({k})"),
            DsOp::Delete(k) => write!(f, "delete({k})"),
            DsOp::Contains(k) => write!(f, "contains({k})"),
            DsOp::Enqueue(v) => write!(f, "enqueue({v})"),
            DsOp::Dequeue => write!(f, "dequeue()"),
        }
    }
}

/// One completed-or-pending operation in a recorded history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Thread that issued the operation.
    pub thread: usize,
    /// The operation.
    pub op: DsOp,
    /// Logical invocation timestamp.
    pub invoke: u64,
    /// Logical response timestamp; `u64::MAX` while pending.
    pub respond: u64,
    /// Recorded result word; `None` while pending. Set operations return
    /// 1/0; dequeue returns the value or 0 for empty.
    pub result: Option<u64>,
}

impl OpRecord {
    /// Whether the operation responded.
    pub fn completed(&self) -> bool {
        self.respond != u64::MAX
    }
}

/// Records invoke/respond events under a shared logical clock.
///
/// `Sync` so one recorder can be shared by every worker of a simulation;
/// the discrete-event scheduler runs workers one at a time, so the clock
/// order *is* the execution order.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
    records: Mutex<Vec<OpRecord>>,
}

impl HistoryRecorder {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an invocation; returns the record's index, to be passed to
    /// [`HistoryRecorder::respond`].
    pub fn invoke(&self, thread: usize, op: DsOp) -> usize {
        let at = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut records = self.records.lock().unwrap();
        records.push(OpRecord {
            thread,
            op,
            invoke: at,
            respond: u64::MAX,
            result: None,
        });
        records.len() - 1
    }

    /// Records the response of the operation `id` returned by `invoke`.
    pub fn respond(&self, id: usize, result: u64) {
        let at = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut records = self.records.lock().unwrap();
        let rec = &mut records[id];
        debug_assert!(!rec.completed(), "double respond for op {id}");
        rec.respond = at;
        rec.result = Some(result);
    }

    /// Snapshot of the history so far (pending operations included).
    pub fn history(&self) -> Vec<OpRecord> {
        self.records.lock().unwrap().clone()
    }
}

/// Which sequential specification a history is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Ordered set (list, hash, skip list).
    Set,
    /// FIFO queue (Michael-Scott).
    Queue,
}

/// Sequential specification state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Spec {
    Set(BTreeSet<u64>),
    Queue(VecDeque<u64>),
}

impl Spec {
    fn new(kind: SpecKind) -> Self {
        match kind {
            SpecKind::Set => Spec::Set(BTreeSet::new()),
            SpecKind::Queue => Spec::Queue(VecDeque::new()),
        }
    }

    /// Applies `op`, returning its specified result.
    fn apply(&mut self, op: DsOp) -> u64 {
        match (self, op) {
            (Spec::Set(s), DsOp::Insert(k)) => u64::from(s.insert(k)),
            (Spec::Set(s), DsOp::Delete(k)) => u64::from(s.remove(&k)),
            (Spec::Set(s), DsOp::Contains(k)) => u64::from(s.contains(&k)),
            (Spec::Queue(q), DsOp::Enqueue(v)) => {
                q.push_back(v);
                1
            }
            (Spec::Queue(q), DsOp::Dequeue) => q.pop_front().unwrap_or(0),
            (spec, op) => panic!("operation {op} does not fit spec {spec:?}"),
        }
    }

    /// Canonical fingerprint for memoization.
    fn fingerprint(&self) -> Vec<u64> {
        match self {
            Spec::Set(s) => s.iter().copied().collect(),
            Spec::Queue(q) => q.iter().copied().collect(),
        }
    }
}

/// A witness that a history is *not* linearizable.
#[derive(Debug, Clone)]
pub struct LinearizabilityViolation {
    /// Human-readable explanation with the offending history.
    pub message: String,
}

impl std::fmt::Display for LinearizabilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Checks `history` against `kind` with Wing–Gong search.
///
/// Pending operations (no response) may be linearized at any point after
/// their invocation — or not at all (they may never have taken effect).
/// Supports histories of up to 64 operations; the model-check harness
/// stays far below that.
pub fn check_linearizable(
    kind: SpecKind,
    history: &[OpRecord],
) -> Result<(), LinearizabilityViolation> {
    assert!(
        history.len() <= 64,
        "history too long for the bitmask search"
    );
    let n = history.len();
    let all_completed: u64 = history
        .iter()
        .enumerate()
        .filter(|(_, r)| r.completed())
        .fold(0, |m, (i, _)| m | (1 << i));
    // DFS with memoization over (linearized mask, spec state).
    let mut seen: HashSet<(u64, Vec<u64>)> = HashSet::new();
    let mut stack: Vec<(u64, Spec)> = vec![(0, Spec::new(kind))];
    while let Some((mask, spec)) = stack.pop() {
        if mask & all_completed == all_completed {
            return Ok(());
        }
        if !seen.insert((mask, spec.fingerprint())) {
            continue;
        }
        // The earliest response among unlinearized ops bounds which
        // invocations may linearize next.
        let min_respond = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| history[i].respond)
            .min()
            .unwrap_or(u64::MAX);
        for i in 0..n {
            if mask & (1 << i) != 0 || history[i].invoke > min_respond {
                continue;
            }
            let mut next = spec.clone();
            let expected = next.apply(history[i].op);
            if let Some(actual) = history[i].result {
                if actual != expected {
                    continue;
                }
            }
            stack.push((mask | (1 << i), next));
        }
    }
    Err(LinearizabilityViolation {
        message: format!(
            "history is not linearizable against the {kind:?} spec:\n{}",
            format_history(history)
        ),
    })
}

/// Renders a history, one op per line, in invocation order.
pub fn format_history(history: &[OpRecord]) -> String {
    let mut sorted: Vec<&OpRecord> = history.iter().collect();
    sorted.sort_by_key(|r| r.invoke);
    sorted
        .iter()
        .map(|r| match r.result {
            Some(res) => format!(
                "  [{:>3},{:>3}] t{} {} -> {}",
                r.invoke, r.respond, r.thread, r.op, res
            ),
            None => format!("  [{:>3},  ∞] t{} {} -> pending", r.invoke, r.thread, r.op),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(thread: usize, op: DsOp, invoke: u64, respond: u64, result: u64) -> OpRecord {
        OpRecord {
            thread,
            op,
            invoke,
            respond,
            result: Some(result),
        }
    }

    #[test]
    fn sequential_set_history_is_linearizable() {
        let h = vec![
            rec(0, DsOp::Insert(5), 0, 1, 1),
            rec(0, DsOp::Contains(5), 2, 3, 1),
            rec(0, DsOp::Delete(5), 4, 5, 1),
            rec(0, DsOp::Contains(5), 6, 7, 0),
        ];
        assert!(check_linearizable(SpecKind::Set, &h).is_ok());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // contains(5)=1 overlaps the insert that makes it true: the
        // checker must find the order insert < contains.
        let h = vec![
            rec(0, DsOp::Insert(5), 0, 3, 1),
            rec(1, DsOp::Contains(5), 1, 2, 1),
        ];
        assert!(check_linearizable(SpecKind::Set, &h).is_ok());
    }

    #[test]
    fn contains_true_for_absent_key_is_flagged() {
        let h = vec![
            rec(0, DsOp::Insert(5), 0, 1, 1),
            rec(0, DsOp::Delete(5), 2, 3, 1),
            // Non-overlapping contains after the delete responded: no
            // valid order makes it see the key.
            rec(1, DsOp::Contains(5), 4, 5, 1),
        ];
        let err = check_linearizable(SpecKind::Set, &h).unwrap_err();
        assert!(err.message.contains("not linearizable"));
    }

    #[test]
    fn double_insert_success_is_flagged() {
        let h = vec![
            rec(0, DsOp::Insert(5), 0, 3, 1),
            rec(1, DsOp::Insert(5), 1, 2, 1),
        ];
        assert!(check_linearizable(SpecKind::Set, &h).is_err());
    }

    #[test]
    fn queue_fifo_order_enforced() {
        let good = vec![
            rec(0, DsOp::Enqueue(10), 0, 1, 1),
            rec(0, DsOp::Enqueue(20), 2, 3, 1),
            rec(1, DsOp::Dequeue, 4, 5, 10),
            rec(1, DsOp::Dequeue, 6, 7, 20),
        ];
        assert!(check_linearizable(SpecKind::Queue, &good).is_ok());
        let lifo = vec![
            rec(0, DsOp::Enqueue(10), 0, 1, 1),
            rec(0, DsOp::Enqueue(20), 2, 3, 1),
            rec(1, DsOp::Dequeue, 4, 5, 20),
            rec(1, DsOp::Dequeue, 6, 7, 10),
        ];
        assert!(check_linearizable(SpecKind::Queue, &lifo).is_err());
    }

    #[test]
    fn lost_value_detected_via_duplicate_dequeue() {
        let h = vec![
            rec(0, DsOp::Enqueue(10), 0, 1, 1),
            rec(1, DsOp::Dequeue, 2, 3, 10),
            rec(2, DsOp::Dequeue, 4, 5, 10),
        ];
        assert!(check_linearizable(SpecKind::Queue, &h).is_err());
    }

    #[test]
    fn pending_op_may_or_may_not_take_effect() {
        // A pending insert explains contains=1 ...
        let pending = OpRecord {
            thread: 0,
            op: DsOp::Insert(5),
            invoke: 0,
            respond: u64::MAX,
            result: None,
        };
        let seen = vec![pending, rec(1, DsOp::Contains(5), 1, 2, 1)];
        assert!(check_linearizable(SpecKind::Set, &seen).is_ok());
        // ... and equally a contains=0 (it may never have taken effect).
        let unseen = vec![pending, rec(1, DsOp::Contains(5), 1, 2, 0)];
        assert!(check_linearizable(SpecKind::Set, &unseen).is_ok());
    }

    #[test]
    fn recorder_stamps_execution_order() {
        let rec = HistoryRecorder::new();
        let a = rec.invoke(0, DsOp::Insert(1));
        let b = rec.invoke(1, DsOp::Contains(1));
        rec.respond(a, 1);
        rec.respond(b, 1);
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert!(h[a].invoke < h[b].invoke);
        assert!(h[b].invoke < h[a].respond);
        assert!(h.iter().all(|r| r.completed()));
        assert!(check_linearizable(SpecKind::Set, &h).is_ok());
    }
}
