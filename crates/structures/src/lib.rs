//! Lock-free data structures written once against [`stacktrack::OpMem`].
//!
//! The four structures of the paper's evaluation (section 6) plus its
//! running example, each from the original papers:
//!
//! - [`list`]: the Harris lock-free linked list with Michael's
//!   hazard-compatible `find` (help-unlink on traversal).
//! - [`skiplist`]: the Fraser-Harris lock-free skip list.
//! - [`queue`]: the Michael-Scott lock-free queue.
//! - [`hash`]: a closed-bucket hash table over Harris lists.
//! - [`rbtree`]: the red-black tree of the paper's Algorithm 3 —
//!   transactional readers over a single-writer CLRS tree.
//!
//! Every operation is a *basic-block step closure* (see
//! [`stacktrack::opmem`]): one closure call performs roughly one pointer
//! hop, the granularity at which StackTrack injects split checkpoints. The
//! same bodies run unchanged under every reclamation scheme in
//! `st-reclaim`. Every structure is written against the typed
//! reclamation API (`st_reclaim::mem` — typed guards, `Shared` borrows,
//! `Unlinked` retire proofs; see docs/MEMORY_API.md); the raw
//! `protect`/`retire` surface no longer exists outside the scheme
//! executors themselves.
//!
//! Each structure declares its guard requirement (`guard_requirement()`
//! next to its node layout); harnesses that drive the whole matrix
//! through one factory size guard slots with [`max_guard_requirement`].
//!
//! # Conventions
//!
//! - Keys are `u64` in `1..u64::MAX` (0 and `u64::MAX` are the sentinel
//!   keys).
//! - Set operations return `1` for success ("was present" / "inserted" /
//!   "removed") and `0` otherwise, as the operation's result word.
//! - Pointer words carry the Harris deletion mark in bit 0
//!   ([`st_simheap::TaggedPtr`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod history;
pub mod list;
pub mod queue;
pub mod rbtree;
pub mod skiplist;

pub use hash::HashSet;
pub use list::LockFreeList;
pub use queue::MsQueue;
pub use rbtree::RbTree;
pub use skiplist::SkipList;

/// The pointwise maximum of every structure's declared guard requirement
/// — what a harness that drives any structure through one factory passes
/// to `SchemeFactoryBuilder::guard_requirement`.
///
/// Using the maximum (the skip list's, today) for every structure keeps
/// guard-table layout — and therefore heap addresses, stripe-conflict
/// patterns, and the committed deterministic figures — identical across
/// structures; per-structure requirements are still the right bound for
/// single-structure harnesses that don't carry that contract.
pub const fn max_guard_requirement() -> st_reclaim::mem::GuardRequirement {
    list::guard_requirement()
        .max(hash::guard_requirement())
        .max(queue::guard_requirement())
        .max(skiplist::guard_requirement())
        .max(rbtree::guard_requirement())
}

#[cfg(test)]
pub(crate) mod testutil {
    use st_machine::{cpu::ActivityBoard, CostModel, Cpu, HwContext, Topology};
    use st_reclaim::{ReclaimConfig, Scheme, SchemeFactory};
    use st_simheap::{Heap, HeapConfig};
    use st_simhtm::{HtmConfig, HtmEngine};
    use std::sync::Arc;

    /// A test heap (no factory).
    pub(crate) fn scheme_env() -> (Arc<Heap>, ()) {
        let heap = Arc::new(Heap::new(HeapConfig {
            capacity_words: 1 << 18,
            ..HeapConfig::default()
        }));
        (heap, ())
    }

    /// A factory for `scheme` with `threads` slots, plus its heap.
    pub(crate) fn all_scheme_factories(
        scheme: Scheme,
        threads: usize,
    ) -> (SchemeFactory, Arc<Heap>) {
        let (heap, ()) = scheme_env();
        let engine = Arc::new(HtmEngine::new(heap.clone(), HtmConfig::default(), threads));
        let factory = SchemeFactory::builder(scheme)
            .engine(engine)
            .max_threads(threads)
            .reclaim_config(ReclaimConfig::default())
            .guard_requirement(crate::max_guard_requirement())
            .build();
        (factory, heap)
    }

    /// A standalone CPU on thread slot `id`.
    pub(crate) fn test_cpu(id: usize) -> Cpu {
        let topo = Topology::haswell();
        Cpu::new(
            id,
            HwContext::new(&topo, topo.place(id)),
            Arc::new(CostModel::default()),
            Arc::new(ActivityBoard::new(topo.hw_contexts())),
            0xfeed + id as u64,
        )
    }
}
