//! A closed-bucket lock-free hash table over Harris lists, as in the
//! paper's hash benchmark ("a lock-free hash-table based on the Harris
//! lock-free list"). No resizing: the bucket count is fixed at build time,
//! which matches the evaluation's fixed 10K-key configuration.
//!
//! Every operation runs on exactly one bucket list, so the table inherits
//! the list's typed-API port (`st_reclaim::mem`) and its guard
//! requirement wholesale — see [`guard_requirement`].

use crate::list::{self, ListShape, LIST_SLOTS};
use st_machine::Cpu;
use st_reclaim::mem::GuardRequirement;
use st_reclaim::SchemeThread;
use st_simheap::Heap;
use st_simhtm::Abort;
use stacktrack::{OpMem, Step};
use std::sync::Arc;

/// The table's declared guard requirement: identical to the list's, since
/// each operation is one bucket-list operation.
pub const fn guard_requirement() -> GuardRequirement {
    list::guard_requirement()
}

/// The shared shape of the table: one list shape per bucket.
#[derive(Debug, Clone)]
pub struct HashShape {
    buckets: Arc<Vec<ListShape>>,
}

impl HashShape {
    /// Allocates `buckets` empty bucket lists (untimed; setup).
    pub fn new_untimed(heap: &Heap, buckets: usize) -> Self {
        assert!(buckets > 0);
        let shapes = (0..buckets).map(|_| ListShape::new_untimed(heap)).collect();
        Self {
            buckets: Arc::new(shapes),
        }
    }

    /// The bucket a key hashes to.
    pub fn bucket_of(&self, key: u64) -> ListShape {
        let h = key.wrapping_mul(0x9e3779b97f4a7c15);
        self.buckets[(h >> 33) as usize % self.buckets.len()]
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Inserts directly (initial population).
    pub fn insert_untimed(&self, heap: &Heap, key: u64) -> bool {
        self.bucket_of(key).insert_untimed(heap, key)
    }

    /// All keys currently present (untimed; tests).
    pub fn collect_keys_untimed(&self, heap: &Heap) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .buckets
            .iter()
            .flat_map(|b| b.collect_keys_untimed(heap))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Invariant check on every bucket.
    pub fn check_invariants_untimed(&self, heap: &Heap) {
        for b in self.buckets.iter() {
            b.check_invariants_untimed(heap);
        }
    }
}

/// Body of `contains(key)`.
pub fn contains_body(
    shape: &HashShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    list::contains_body(shape.bucket_of(key), key)
}

/// Body of `insert(key)`.
pub fn insert_body(
    shape: &HashShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    list::insert_body(shape.bucket_of(key), key)
}

/// Body of `delete(key)`.
pub fn delete_body(
    shape: &HashShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    list::delete_body(shape.bucket_of(key), key)
}

/// High-level hash-set handle.
#[derive(Debug)]
pub struct HashSet {
    shape: HashShape,
    heap: Arc<Heap>,
}

impl HashSet {
    /// Creates a table with `buckets` buckets on `heap`.
    pub fn new(heap: Arc<Heap>, buckets: usize) -> Self {
        let shape = HashShape::new_untimed(&heap, buckets);
        Self { shape, heap }
    }

    /// The shareable shape.
    pub fn shape(&self) -> HashShape {
        self.shape.clone()
    }

    /// The heap this table lives on.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Membership test through a scheme executor.
    pub fn contains(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = contains_body(&self.shape, key);
        th.run_op(cpu, list::OP_CONTAINS, LIST_SLOTS, &mut body) == 1
    }

    /// Insert through a scheme executor.
    pub fn insert(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = insert_body(&self.shape, key);
        th.run_op(cpu, list::OP_INSERT, LIST_SLOTS, &mut body) == 1
    }

    /// Delete through a scheme executor.
    pub fn delete(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = delete_body(&self.shape, key);
        th.run_op(cpu, list::OP_DELETE, LIST_SLOTS, &mut body) == 1
    }

    /// All keys currently present (untimed snapshot).
    pub fn collect_keys(&self) -> Vec<u64> {
        self.shape.collect_keys_untimed(&self.heap)
    }

    /// Invariant check on every bucket.
    pub fn check_invariants(&self) {
        self.shape.check_invariants_untimed(&self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn spreads_keys_across_buckets() {
        let (_, heap) = all_scheme_factories(Scheme::None, 1);
        let shape = HashShape::new_untimed(&heap, 16);
        let mut nonempty = 0;
        for k in 1..=64u64 {
            shape.insert_untimed(&heap, k);
        }
        for b in 0..16 {
            if !shape.buckets[b].collect_keys_untimed(&heap).is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 12, "hashing must spread keys ({nonempty}/16)");
        assert_eq!(shape.collect_keys_untimed(&heap).len(), 64);
    }

    #[test]
    fn set_semantics_under_every_scheme() {
        for scheme in Scheme::all() {
            let (factory, heap) = all_scheme_factories(scheme, 1);
            let set = HashSet::new(heap, 8);
            let mut th = factory.thread(0);
            let mut cpu = test_cpu(0);

            for k in 1..=32u64 {
                assert!(set.insert(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            for k in 1..=32u64 {
                assert!(set.contains(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            for k in (1..=32u64).step_by(2) {
                assert!(set.delete(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            assert_eq!(
                set.collect_keys(),
                (2..=32).step_by(2).collect::<Vec<u64>>(),
                "{scheme:?}"
            );
            set.check_invariants();
            th.teardown(&mut cpu);
        }
    }
}
