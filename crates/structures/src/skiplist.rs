//! The Fraser-Harris lock-free skip list (Fraser 2004; the variant in
//! Herlihy & Shavit's *Art of Multiprocessor Programming*).
//!
//! Node layout (`2 + level` words): `[key, level, next_0 .. next_{l-1}]`,
//! with the deletion mark in bit 0 of each next pointer. A node is
//! logically deleted once its **bottom-level** next is marked; the unique
//! winner of that mark owns the node and retires it after a cleanup
//! search has physically unlinked it from every level (searches snip
//! marked nodes they encounter, so the owner's own search suffices).
//!
//! Guard budget (hazard pointers): one predecessor guard per level, one
//! traversal guard per level, one working guard, and one pinning the
//! operation's own node — [`SKIP_GUARDS`] in total. The shadow frame holds
//! the full `preds`/`succs` arrays, which is why
//! [`stacktrack::layout::STACK_SLOTS`] is sized the way it is.

//! Written against the typed reclamation API (`st_reclaim::mem`): the
//! per-level guard arrays are `GuardPool` handles in declaration order,
//! searches snip marked nodes with `cas_snip` (helping — no proof
//! minted), the bottom-level mark CAS decides ownership, and the owner
//! mints its `Unlinked` proof with `assume_unlinked` once its cleanup
//! search has unlinked every level — see docs/MEMORY_API.md.

use st_machine::{Cpu, Pcg32};
use st_reclaim::mem::{Guard, GuardPool, GuardRequirement, Mem, NodeType, Owned, Unlinked};
use st_reclaim::SchemeThread;
use st_simheap::{Addr, Heap, TaggedPtr, Word};
use st_simhtm::Abort;
use stacktrack::{OpMem, Step};
use std::sync::Arc;

/// Maximum tower height.
pub const MAX_LEVEL: usize = 16;

/// Contains operation id.
pub const OP_CONTAINS: u32 = 0;
/// Insert operation id.
pub const OP_INSERT: u32 = 1;
/// Delete operation id.
pub const OP_DELETE: u32 = 2;

/// Key word offset.
pub const NODE_KEY: u64 = 0;
/// Tower-height word offset.
pub const NODE_LEVEL: u64 = 1;
/// First next-pointer word offset.
pub const NODE_NEXT0: u64 = 2;

/// The skip list's node layout: `[key, level, next_0 .. next_{l-1}]`.
///
/// `WORDS` declares the maximum (full-height) tower; actual towers are
/// `2 + height` words and allocated with `Mem::alloc_var`.
#[derive(Debug, Clone, Copy)]
pub struct SkipNode;
impl NodeType for SkipNode {
    const WORDS: usize = 2 + MAX_LEVEL;
}

/// Shadow-stack slots used by skip-list operations.
pub const SKIP_SLOTS: usize = 10 + 2 * MAX_LEVEL;
/// Guard slots used by skip-list operations.
pub const SKIP_GUARDS: usize = 2 * MAX_LEVEL + 2;

/// The skip list's declared guard requirement: per-level predecessor and
/// traversal guards, one working guard, one pinning the operation's own
/// node. The deepest requirement in the crate — what
/// [`crate::max_guard_requirement`] resolves to.
pub const fn guard_requirement() -> GuardRequirement {
    GuardRequirement::new(SKIP_GUARDS)
}

// Local slot assignment.
const PHASE: usize = 0;
const LVL: usize = 1;
const PRED: usize = 2;
const CURR: usize = 3;
const NODE: usize = 4;
const TOPLVL: usize = 5;
const CKEY: usize = 6;
const CONT: usize = 7;
const MARK_LVL: usize = 8;
/// The insert's upper-level cursor. Must be distinct from `LVL`, which the
/// search machinery reuses as its own level cursor on every refresh.
const INS_LVL: usize = 9;
const PREDS: usize = 10;
const SUCCS: usize = 10 + MAX_LEVEL;

// Guard assignment, fixed by `GuardPool` declaration order in every
// body: `pred[l] = l`, `curr[l] = MAX_LEVEL + l`, work = 2*MAX_LEVEL,
// node = 2*MAX_LEVEL + 1.
fn take_guards(pool: &mut GuardPool) -> ([Guard; MAX_LEVEL], [Guard; MAX_LEVEL], Guard, Guard) {
    // `array::from_fn` fills in ascending index order, so `pred[l]`
    // always lands on scheme slot `l` (asserted by a unit test below).
    let pred: [Guard; MAX_LEVEL] = std::array::from_fn(|_| pool.guard());
    let curr: [Guard; MAX_LEVEL] = std::array::from_fn(|_| pool.guard());
    let work = pool.guard();
    let node = pool.guard();
    (pred, curr, work, node)
}

// Phases.
const P_SEARCH_START: Word = 0;
const P_SEARCH_STEP: Word = 1;
const P_CONTAINS_DONE: Word = 2;
const P_INS_CHECK: Word = 3;
const P_INS_BOTTOM: Word = 4;
const P_INS_UPPER: Word = 5;
const P_DEL_CHECK: Word = 6;
const P_DEL_MARK_UPPER: Word = 7;
const P_DEL_MARK_BOTTOM: Word = 8;
const P_DEL_CLEANUP_DONE: Word = 9;

/// The shared shape of one skip list: its sentinel addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipShape {
    /// Head sentinel (key 0, full height).
    pub head: Addr,
    /// Tail sentinel (key `u64::MAX`).
    pub tail: Addr,
}

impl SkipShape {
    /// Allocates an empty skip list (untimed; setup).
    pub fn new_untimed(heap: &Heap) -> Self {
        let head = heap
            .alloc_untimed(2 + MAX_LEVEL)
            .expect("heap too small for skip-list sentinels");
        let tail = heap
            .alloc_untimed(2 + MAX_LEVEL)
            .expect("heap too small for skip-list sentinels");
        heap.poke(head, NODE_KEY, 0);
        heap.poke(head, NODE_LEVEL, MAX_LEVEL as u64);
        heap.poke(tail, NODE_KEY, u64::MAX);
        heap.poke(tail, NODE_LEVEL, MAX_LEVEL as u64);
        for l in 0..MAX_LEVEL as u64 {
            heap.poke(head, NODE_NEXT0 + l, tail.raw());
            heap.poke(tail, NODE_NEXT0 + l, 0);
        }
        Self { head, tail }
    }

    /// Samples a tower height: geometric with p = 1/2, capped.
    pub fn random_level(rng: &mut Pcg32) -> usize {
        let mut h = 1;
        while h < MAX_LEVEL && rng.chance(0.5) {
            h += 1;
        }
        h
    }

    /// Inserts directly (initial population).
    pub fn insert_untimed(&self, heap: &Heap, key: u64, rng: &mut Pcg32) -> bool {
        assert!(key > 0 && key < u64::MAX, "key range");
        let mut preds = [Addr(0); MAX_LEVEL];
        let mut pred = self.head;
        for l in (0..MAX_LEVEL).rev() {
            loop {
                let next = Addr::from_raw(heap.peek(pred, NODE_NEXT0 + l as u64));
                if heap.peek(next, NODE_KEY) < key {
                    pred = next;
                } else {
                    break;
                }
            }
            preds[l] = pred;
        }
        let succ0 = Addr::from_raw(heap.peek(preds[0], NODE_NEXT0));
        if heap.peek(succ0, NODE_KEY) == key {
            return false;
        }
        let h = Self::random_level(rng);
        let node = heap
            .alloc_untimed(2 + h)
            .expect("heap too small for initial population");
        heap.poke(node, NODE_KEY, key);
        heap.poke(node, NODE_LEVEL, h as u64);
        for l in 0..h {
            let succ = heap.peek(preds[l], NODE_NEXT0 + l as u64);
            heap.poke(node, NODE_NEXT0 + l as u64, succ);
            heap.poke(preds[l], NODE_NEXT0 + l as u64, node.raw());
        }
        true
    }

    /// Keys present at the bottom level (untimed; tests). Marked nodes are
    /// excluded.
    pub fn collect_keys_untimed(&self, heap: &Heap) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = TaggedPtr::from_word(heap.peek(self.head, NODE_NEXT0));
        while !cur.is_null() {
            let addr = cur.addr();
            if addr == self.tail {
                break;
            }
            let next = TaggedPtr::from_word(heap.peek(addr, NODE_NEXT0));
            if !next.marked() {
                keys.push(heap.peek(addr, NODE_KEY));
            }
            cur = next;
        }
        keys
    }

    /// Checks structural invariants: every level strictly sorted and
    /// terminated at the tail; every unmarked upper-level node also
    /// present below.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants_untimed(&self, heap: &Heap) {
        for l in 0..MAX_LEVEL as u64 {
            let mut last = 0u64;
            let mut cur = TaggedPtr::from_word(heap.peek(self.head, NODE_NEXT0 + l));
            loop {
                assert!(!cur.is_null(), "level {l} must end at the tail");
                let addr = cur.addr();
                if addr == self.tail {
                    break;
                }
                assert!(heap.is_live(addr), "reachable node {addr:?} live");
                let key = heap.peek(addr, NODE_KEY);
                let height = heap.peek(addr, NODE_LEVEL);
                assert!(height as usize <= MAX_LEVEL && height > l, "height");
                let next = TaggedPtr::from_word(heap.peek(addr, NODE_NEXT0 + l));
                // Nodes are never moved: key order holds across marked
                // nodes too. Duplicates may only appear as a marked node
                // followed (not preceded) by its unmarked replacement.
                assert!(
                    key > last || (key == last && !next.marked()),
                    "level {l}: key {key} out of order after {last}"
                );
                last = key;
                cur = next;
            }
        }
    }
}

/// One step of the skip-list search. Ends with `PREDS`/`SUCCS` filled and
/// the phase set to the continuation in `CONT`; `CKEY` holds the key of
/// `SUCCS[0]`. Searches snip marked nodes (helping deletion) but never
/// retire them — retirement belongs to the deletion's owner.
fn search_step(
    shape: SkipShape,
    key: u64,
    mem: &mut Mem<'_, '_>,
    g_pred: &mut [Guard; MAX_LEVEL],
    g_curr: &mut [Guard; MAX_LEVEL],
    g_work: &mut Guard,
) -> Result<Step, Abort> {
    let phase = mem.local(PHASE);
    if phase == P_SEARCH_START {
        let top = MAX_LEVEL - 1;
        // The head sentinel is immortal — shielding it is always sound.
        let pred = g_pred[top].shield::<SkipNode>(mem, shape.head.raw());
        let curr = pred
            .link::<SkipNode>(NODE_NEXT0 + top as u64)
            .load(mem, &mut g_curr[top])?;
        mem.set_local(PRED, shape.head.raw());
        mem.set_local(CURR, curr.addr_word());
        mem.set_local(LVL, top as u64);
        mem.set_local(PHASE, P_SEARCH_STEP);
        return Ok(Step::Continue);
    }
    debug_assert_eq!(phase, P_SEARCH_STEP);

    let l = mem.local(LVL) as usize;
    let pred_word = mem.local(PRED);
    let curr_word = mem.local(CURR);
    let curr = g_curr[l].assume_protected::<SkipNode>(curr_word);
    let succ = curr
        .link::<SkipNode>(NODE_NEXT0 + l as u64)
        .load(mem, g_work)?;

    if succ.marked() {
        // `curr` is deleted: snip it out of this level — helping only,
        // so no unlink proof is minted (the bottom-mark winner owns the
        // retire; see `delete_body`).
        let pred = g_pred[l].assume_protected::<SkipNode>(pred_word);
        match pred
            .link::<SkipNode>(NODE_NEXT0 + l as u64)
            .cas_snip(mem, &curr, succ.addr_word())?
        {
            Ok(()) => {
                let _ = g_curr[l].shield::<SkipNode>(mem, succ.addr_word());
                mem.set_local(CURR, succ.addr_word());
            }
            Err(_actual) => {
                mem.set_local(PHASE, P_SEARCH_START);
            }
        }
        return Ok(Step::Continue);
    }

    let ckey = curr.read(mem, NODE_KEY)?;
    if ckey < key {
        let _ = g_pred[l].shield::<SkipNode>(mem, curr_word);
        let _ = g_curr[l].shield::<SkipNode>(mem, succ.addr_word());
        mem.set_local(PRED, curr_word);
        mem.set_local(CURR, succ.addr_word());
        return Ok(Step::Continue);
    }

    // Record this level and descend (or finish).
    mem.set_local(PREDS + l, pred_word);
    mem.set_local(SUCCS + l, curr_word);
    if l == 0 {
        mem.set_local(CKEY, ckey);
        let cont = mem.local(CONT);
        mem.set_local(PHASE, cont);
    } else {
        let below = l - 1;
        // The descend re-shields `pred` one level down while it is still
        // covered by `g_pred[l]`, then loads its link there.
        let pred_below = g_pred[below].shield::<SkipNode>(mem, pred_word);
        let c = pred_below
            .link::<SkipNode>(NODE_NEXT0 + below as u64)
            .load(mem, &mut g_curr[below])?;
        mem.set_local(CURR, c.addr_word());
        mem.set_local(LVL, below as u64);
    }
    Ok(Step::Continue)
}

/// Body of `contains(key)`.
pub fn contains_body(
    shape: SkipShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let (mut g_pred, mut g_curr, mut g_work, _g_node) = take_guards(&mut guards);
        let phase = mem.local(PHASE);
        match phase {
            P_SEARCH_START | P_SEARCH_STEP => {
                if phase == P_SEARCH_START {
                    mem.set_local(CONT, P_CONTAINS_DONE);
                }
                search_step(shape, key, &mut mem, &mut g_pred, &mut g_curr, &mut g_work)
            }
            P_CONTAINS_DONE => Ok(Step::Done(u64::from(mem.local(CKEY) == key))),
            other => unreachable!("contains phase {other}"),
        }
    }
}

/// Body of `insert(key)`: 1 if inserted, 0 if already present.
pub fn insert_body(
    shape: SkipShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let (mut g_pred, mut g_curr, mut g_work, mut g_node) = take_guards(&mut guards);
        let phase = mem.local(PHASE);
        match phase {
            P_SEARCH_START | P_SEARCH_STEP => {
                if phase == P_SEARCH_START && mem.local(CONT) == 0 {
                    mem.set_local(CONT, P_INS_CHECK);
                }
                search_step(shape, key, &mut mem, &mut g_pred, &mut g_curr, &mut g_work)
            }
            P_INS_CHECK => {
                if mem.local(CKEY) == key {
                    let node_word = mem.local(NODE);
                    if let Some(node) = Owned::<SkipNode>::unstash(node_word) {
                        // Never published; safe to hand back.
                        node.dispose(&mut mem)?;
                        mem.set_local(NODE, 0);
                    }
                    return Ok(Step::Done(0));
                }
                let node = match Owned::<SkipNode>::unstash(mem.local(NODE)) {
                    None => {
                        let h = SkipShape::random_level(&mut mem.cpu().rng);
                        let node = mem.alloc_var::<SkipNode>(2 + h);
                        node.store(&mut mem, NODE_KEY, key)?;
                        node.store(&mut mem, NODE_LEVEL, h as u64)?;
                        // Pin our own tower for the whole operation (it
                        // is still private, so the shield is sound).
                        let _ = g_node.shield::<SkipNode>(&mut mem, node.word());
                        mem.set_local(NODE, node.word());
                        mem.set_local(TOPLVL, h as u64);
                        node
                    }
                    Some(node) => node,
                };
                // Aim the unpublished tower at the current successors.
                let h = mem.local(TOPLVL);
                for l in 0..h as usize {
                    let succ = mem.local(SUCCS + l.min(MAX_LEVEL - 1));
                    node.store(&mut mem, NODE_NEXT0 + l as u64, succ)?;
                }
                // Still unpublished; it stays stashed for the next block.
                let _ = node.stash();
                mem.set_local(PHASE, P_INS_BOTTOM);
                Ok(Step::Continue)
            }
            P_INS_BOTTOM => {
                let node_word = mem.local(NODE);
                let pred_word = mem.local(PREDS);
                let succ = mem.local(SUCCS);
                // Never link in front of a marked successor: a deleted
                // same-key node hidden behind ours would be invisible to
                // its owner's cleanup search (which stops at the first
                // node with key >= target) and would be freed while still
                // linked. Re-search instead; the search snips it. The mark
                // check and the CAS share this block, which the simulated
                // machine executes atomically (segment granularity).
                let succ_sh = g_curr[0].assume_protected::<SkipNode>(succ);
                let succ_state = TaggedPtr::from_word(succ_sh.read(&mut mem, NODE_NEXT0)?);
                if succ_state.marked() {
                    mem.set_local(PHASE, P_SEARCH_START);
                    return Ok(Step::Continue);
                }
                let node = Owned::<SkipNode>::unstash(node_word).expect("tower stashed");
                let pred = g_pred[0].assume_protected::<SkipNode>(pred_word);
                match pred
                    .link::<SkipNode>(NODE_NEXT0)
                    .cas_publish(&mut mem, succ, node)?
                {
                    Ok(()) => {
                        mem.set_local(INS_LVL, 1);
                        mem.set_local(PHASE, P_INS_UPPER);
                    }
                    Err((lost, _actual)) => {
                        // Still unpublished; it stays stashed for retry.
                        let _ = lost.stash();
                        mem.set_local(PHASE, P_SEARCH_START);
                    }
                }
                Ok(Step::Continue)
            }
            P_INS_UPPER => {
                let l = mem.local(INS_LVL) as usize;
                let h = mem.local(TOPLVL) as usize;
                if l >= h {
                    return Ok(Step::Done(1));
                }
                // The tower is published (it carries readers), so upper
                // levels are linked with plain word CASes — no `Owned`
                // token exists any more.
                let node_word = mem.local(NODE);
                let pred_word = mem.local(PREDS + l);
                let succ = mem.local(SUCCS + l);
                let node = g_node.assume_protected::<SkipNode>(node_word);
                let cur_next = TaggedPtr::from_word(node.read(&mut mem, NODE_NEXT0 + l as u64)?);
                if cur_next.marked() {
                    // Deleted while inserting; the deleter unlinks.
                    return Ok(Step::Done(1));
                }
                if cur_next.word() != succ {
                    // Refresh the tower pointer before linking.
                    let _ = node.link::<SkipNode>(NODE_NEXT0 + l as u64).cas_word(
                        &mut mem,
                        cur_next.word(),
                        succ,
                    )?;
                    return Ok(Step::Continue);
                }
                // Same marked-successor guard as the bottom level (see
                // P_INS_BOTTOM); checked atomically with the link CAS.
                let succ_sh = g_curr[l].assume_protected::<SkipNode>(succ);
                let succ_state =
                    TaggedPtr::from_word(succ_sh.read(&mut mem, NODE_NEXT0 + l as u64)?);
                if succ_state.marked() {
                    mem.set_local(CONT, P_INS_UPPER);
                    mem.set_local(PHASE, P_SEARCH_START);
                    return Ok(Step::Continue);
                }
                let pred = g_pred[l].assume_protected::<SkipNode>(pred_word);
                match pred
                    .link::<SkipNode>(NODE_NEXT0 + l as u64)
                    .cas_word(&mut mem, succ, node_word)?
                {
                    Ok(_prev) => {
                        mem.set_local(INS_LVL, l as u64 + 1);
                        Ok(Step::Continue)
                    }
                    Err(_actual) => {
                        // Stale predecessor: refresh preds/succs and retry
                        // this level. The continuation must come back HERE —
                        // re-entering P_INS_CHECK would find our own linked
                        // node and retire it (a linked-node free).
                        mem.set_local(CONT, P_INS_UPPER);
                        mem.set_local(PHASE, P_SEARCH_START);
                        Ok(Step::Continue)
                    }
                }
            }
            other => unreachable!("insert phase {other}"),
        }
    }
}

/// Body of `delete(key)`: 1 if this thread removed the key.
pub fn delete_body(
    shape: SkipShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let (mut g_pred, mut g_curr, mut g_work, mut g_node) = take_guards(&mut guards);
        let phase = mem.local(PHASE);
        match phase {
            P_SEARCH_START | P_SEARCH_STEP => {
                if phase == P_SEARCH_START && mem.local(CONT) == 0 {
                    mem.set_local(CONT, P_DEL_CHECK);
                }
                search_step(shape, key, &mut mem, &mut g_pred, &mut g_curr, &mut g_work)
            }
            P_DEL_CHECK => {
                if mem.local(CKEY) != key {
                    return Ok(Step::Done(0));
                }
                let node_word = mem.local(SUCCS);
                let node = g_curr[0].assume_protected::<SkipNode>(node_word);
                let h = node.read(&mut mem, NODE_LEVEL)?;
                // Pin the victim for the rest of the operation (it is
                // still covered by the search's bottom-level guard).
                let _ = g_node.shield::<SkipNode>(&mut mem, node_word);
                mem.set_local(NODE, node_word);
                mem.set_local(TOPLVL, h);
                mem.set_local(MARK_LVL, h - 1);
                mem.set_local(
                    PHASE,
                    if h > 1 {
                        P_DEL_MARK_UPPER
                    } else {
                        P_DEL_MARK_BOTTOM
                    },
                );
                Ok(Step::Continue)
            }
            P_DEL_MARK_UPPER => {
                let l = mem.local(MARK_LVL);
                debug_assert!(l >= 1);
                let node = g_node.assume_protected::<SkipNode>(mem.local(NODE));
                let next = TaggedPtr::from_word(node.read(&mut mem, NODE_NEXT0 + l)?);
                let advanced = if next.marked() {
                    true
                } else {
                    // A mark is a tag flip in place — `cas_word`, never an
                    // unlink.
                    node.link::<SkipNode>(NODE_NEXT0 + l)
                        .cas_word(&mut mem, next.word(), next.with_mark(true).word())?
                        .is_ok()
                };
                if advanced {
                    if l == 1 {
                        mem.set_local(PHASE, P_DEL_MARK_BOTTOM);
                    } else {
                        mem.set_local(MARK_LVL, l - 1);
                    }
                }
                Ok(Step::Continue)
            }
            P_DEL_MARK_BOTTOM => {
                let node = g_node.assume_protected::<SkipNode>(mem.local(NODE));
                let next = TaggedPtr::from_word(node.read(&mut mem, NODE_NEXT0)?);
                if next.marked() {
                    // Another deleter won the bottom mark and owns the node.
                    return Ok(Step::Done(0));
                }
                match node.link::<SkipNode>(NODE_NEXT0).cas_word(
                    &mut mem,
                    next.word(),
                    next.with_mark(true).word(),
                )? {
                    Ok(_prev) => {
                        // We own the deletion: snip everywhere via a
                        // cleanup search, then retire.
                        mem.set_local(CONT, P_DEL_CLEANUP_DONE);
                        mem.set_local(PHASE, P_SEARCH_START);
                        Ok(Step::Continue)
                    }
                    Err(_actual) => Ok(Step::Continue),
                }
            }
            P_DEL_CLEANUP_DONE => {
                // This operation won the bottom-level mark CAS (sole
                // ownership) and its cleanup search confirmed the node is
                // unlinked from every level — the audited premises of
                // `assume_unlinked`.
                let unlinked = Unlinked::<SkipNode>::assume_unlinked(mem.local(NODE));
                unlinked.retire(&mut mem)?;
                Ok(Step::Done(1))
            }
            other => unreachable!("delete phase {other}"),
        }
    }
}

/// High-level skip-list handle.
#[derive(Debug)]
pub struct SkipList {
    shape: SkipShape,
    heap: Arc<Heap>,
}

impl SkipList {
    /// Creates an empty skip list on `heap`.
    pub fn new(heap: Arc<Heap>) -> Self {
        let shape = SkipShape::new_untimed(&heap);
        Self { shape, heap }
    }

    /// The copyable shape.
    pub fn shape(&self) -> SkipShape {
        self.shape
    }

    /// The heap this skip list lives on.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Membership test through a scheme executor.
    pub fn contains(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = contains_body(self.shape, key);
        th.run_op(cpu, OP_CONTAINS, SKIP_SLOTS, &mut body) == 1
    }

    /// Insert through a scheme executor.
    pub fn insert(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = insert_body(self.shape, key);
        th.run_op(cpu, OP_INSERT, SKIP_SLOTS, &mut body) == 1
    }

    /// Delete through a scheme executor.
    pub fn delete(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = delete_body(self.shape, key);
        th.run_op(cpu, OP_DELETE, SKIP_SLOTS, &mut body) == 1
    }

    /// Keys currently present (untimed snapshot).
    pub fn collect_keys(&self) -> Vec<u64> {
        self.shape.collect_keys_untimed(&self.heap)
    }

    /// Structural invariant check.
    pub fn check_invariants(&self) {
        self.shape.check_invariants_untimed(&self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn guard_declaration_order_matches_scheme_slots() {
        // The per-level guard arrays must land on the same scheme slots
        // the raw code used: `pred[l] = l`, `curr[l] = MAX_LEVEL + l`,
        // then the work and node guards — the declaration-order contract
        // `take_guards` relies on for byte-identical lowering.
        let mut pool = GuardPool::new(guard_requirement());
        let (pred, curr, work, node) = take_guards(&mut pool);
        for l in 0..MAX_LEVEL {
            assert_eq!(pred[l].index(), l);
            assert_eq!(curr[l].index(), MAX_LEVEL + l);
        }
        assert_eq!(work.index(), 2 * MAX_LEVEL);
        assert_eq!(node.index(), 2 * MAX_LEVEL + 1);
        assert_eq!(SKIP_GUARDS, 2 * MAX_LEVEL + 2);
    }

    #[test]
    fn untimed_population_is_sound() {
        let (_, heap) = all_scheme_factories(Scheme::None, 1);
        let shape = SkipShape::new_untimed(&heap);
        let mut rng = Pcg32::new(7);
        for k in 1..=200u64 {
            assert!(shape.insert_untimed(&heap, k * 3, &mut rng));
        }
        assert!(!shape.insert_untimed(&heap, 3, &mut rng));
        let keys = shape.collect_keys_untimed(&heap);
        assert_eq!(keys.len(), 200);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        shape.check_invariants_untimed(&heap);
    }

    #[test]
    fn random_levels_are_geometric() {
        let mut rng = Pcg32::new(42);
        let mut counts = [0u32; MAX_LEVEL + 1];
        for _ in 0..10_000 {
            counts[SkipShape::random_level(&mut rng)] += 1;
        }
        assert!(counts[1] > 4_000 && counts[1] < 6_000, "p=1/2 geometric");
        assert!(counts[2] > 1_800 && counts[2] < 3_200);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn set_semantics_under_every_scheme() {
        for scheme in Scheme::all() {
            let (factory, heap) = all_scheme_factories(scheme, 1);
            let sl = SkipList::new(heap);
            let mut th = factory.thread(0);
            let mut cpu = test_cpu(0);

            for k in [10u64, 4, 77, 30, 55] {
                assert!(sl.insert(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            assert!(!sl.insert(th.as_mut(), &mut cpu, 30), "{scheme:?} dup");
            for k in [10u64, 4, 77, 30, 55] {
                assert!(sl.contains(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            assert!(!sl.contains(th.as_mut(), &mut cpu, 31), "{scheme:?}");
            assert!(sl.delete(th.as_mut(), &mut cpu, 30), "{scheme:?}");
            assert!(!sl.delete(th.as_mut(), &mut cpu, 30), "{scheme:?} gone");
            assert_eq!(sl.collect_keys(), vec![4, 10, 55, 77], "{scheme:?}");
            sl.check_invariants();
            th.teardown(&mut cpu);
        }
    }

    #[test]
    fn towers_are_fully_unlinked_and_reclaimed() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let sl = SkipList::new(heap.clone());
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        let live_before = heap.stats().alloc.live_objects;
        for k in 1..=60u64 {
            assert!(sl.insert(th.as_mut(), &mut cpu, k));
        }
        for k in 1..=60u64 {
            assert!(sl.delete(th.as_mut(), &mut cpu, k));
        }
        sl.check_invariants();
        th.teardown(&mut cpu);
        assert_eq!(
            heap.stats().alloc.live_objects,
            live_before,
            "every tower reclaimed"
        );
    }

    #[test]
    fn interleaved_insert_delete_stays_sound() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 2);
        let sl = SkipList::new(heap);
        let mut a = factory.thread(0);
        let mut b = factory.thread(1);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);
        let shape = sl.shape();

        for round in 0..25u64 {
            let ka = round % 12 + 1;
            let kb = round % 9 + 1;
            let mut body_a = insert_body(shape, ka);
            let mut body_b = delete_body(shape, kb);
            while a.idle_work_pending() {
                a.step_idle(&mut cpu_a);
            }
            while b.idle_work_pending() {
                b.step_idle(&mut cpu_b);
            }
            a.begin_op(&mut cpu_a, OP_INSERT, SKIP_SLOTS);
            b.begin_op(&mut cpu_b, OP_DELETE, SKIP_SLOTS);
            let (mut da, mut db) = (false, false);
            while !da || !db {
                if !da {
                    da = a.step_op(&mut cpu_a, &mut body_a).is_some();
                }
                if !db {
                    db = b.step_op(&mut cpu_b, &mut body_b).is_some();
                }
            }
            sl.check_invariants();
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn delete_absent_and_reinsert_cycles() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let sl = SkipList::new(heap);
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        assert!(!sl.delete(th.as_mut(), &mut cpu, 10), "absent");
        for _ in 0..10 {
            assert!(sl.insert(th.as_mut(), &mut cpu, 10));
            assert!(sl.contains(th.as_mut(), &mut cpu, 10));
            assert!(sl.delete(th.as_mut(), &mut cpu, 10));
            assert!(!sl.contains(th.as_mut(), &mut cpu, 10));
            sl.check_invariants();
        }
        th.teardown(&mut cpu);
    }

    #[test]
    fn boundary_keys() {
        let (factory, heap) = all_scheme_factories(Scheme::Epoch, 1);
        let sl = SkipList::new(heap);
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        assert!(sl.insert(th.as_mut(), &mut cpu, 1), "minimum key");
        assert!(
            sl.insert(th.as_mut(), &mut cpu, u64::MAX - 1),
            "maximum key"
        );
        assert!(sl.contains(th.as_mut(), &mut cpu, 1));
        assert!(sl.contains(th.as_mut(), &mut cpu, u64::MAX - 1));
        sl.check_invariants();
    }

    #[test]
    #[should_panic(expected = "key range")]
    fn sentinel_keys_rejected() {
        let _ = contains_body(
            SkipShape {
                head: Addr::from_index(1),
                tail: Addr::from_index(2),
            },
            u64::MAX,
        );
    }

    #[test]
    fn tall_towers_link_every_level() {
        // Force tall towers by repeated insertion; every unmarked node
        // reachable at level l must carry height > l (checked by
        // check_invariants), and deleting them unlinks all levels.
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let sl = SkipList::new(heap.clone());
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);
        for k in 1..=256u64 {
            assert!(sl.insert(th.as_mut(), &mut cpu, k));
        }
        sl.check_invariants();
        // At least one tower above level 3 exists with high probability.
        let mut tall = 0;
        let mut cur = TaggedPtr::from_word(heap.peek(sl.shape().head, NODE_NEXT0 + 4));
        while !cur.is_null() && cur.addr() != sl.shape().tail {
            tall += 1;
            cur = TaggedPtr::from_word(heap.peek(cur.addr(), NODE_NEXT0 + 4));
        }
        assert!(tall > 0, "expected towers above level 4");
        for k in 1..=256u64 {
            assert!(sl.delete(th.as_mut(), &mut cpu, k));
        }
        sl.check_invariants();
    }
}
