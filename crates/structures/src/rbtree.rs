//! A red-black tree with StackTrack-instrumented searches — the paper's
//! running example (Algorithm 3 instruments `REDBLACK_TREE_SEARCH`
//! "since it generates short code blocks, which best illustrate the
//! instrumentation").
//!
//! Concurrency model: **transactional readers, single mutator**. Searches
//! descend one node per basic block, exactly as Algorithm 3 shows, and are
//! strictly serializable under StackTrack (each search is a chain of
//! hardware transactions; any concurrent mutation conflicts and aborts the
//! reader's segment, which retries). Mutations take a writer lock and
//! perform the whole CLRS insert/delete — rotations, recolorings,
//! successor moves — in a single basic block, so they are atomic at the
//! simulated machine's segment granularity; deleted nodes are retired
//! through the active reclamation scheme.
//!
//! Under fence-based schemes (hazard pointers, epoch) the same search body
//! is merely non-blocking and memory-safe: a search racing a rotation can
//! miss a key that is concurrently relocated. That contrast — transactions
//! give readers serializability for free where manual schemes give only
//! safety — is the paper's motivating observation, demonstrated here as a
//! test (`transactional_searches_are_serializable`).
//!
//! Node layout (5 words): `[key, color, left, right, parent]`, with a
//! per-tree NIL sentinel standing in for leaf children (CLRS style; the
//! delete fixup scribbles `parent` into it, which is why it is a real
//! node).
//!
//! Written against the typed reclamation API (`st_reclaim::mem`). The
//! search descends hand-over-self with [`Guard::rotate_load`]; writers
//! take the anchor lock through [`Field::cas`], mint an
//! [`Exclusive`] witness for the plain loads and stores of the locked
//! section, and delete proves its retire with
//! [`Unlinked::assume_unlinked`] — the single writer owns the unlink it
//! just performed. Every typed call lowers to the identical raw
//! [`OpMem`] call the pre-migration code made, so instruction-level
//! traces (and the committed benchmark figures) are unchanged.

use st_machine::Cpu;
use st_reclaim::mem::{
    Atomic, Exclusive, Field, Guard, GuardPool, GuardRequirement, Mem, NodeType, Unlinked,
};
use st_reclaim::SchemeThread;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::{OpMem, Step};
use std::sync::Arc;

/// Search operation id.
pub const OP_SEARCH: u32 = 0;
/// Insert operation id.
pub const OP_INSERT: u32 = 1;
/// Delete operation id.
pub const OP_DELETE: u32 = 2;

/// Key word offset.
pub const NODE_KEY: u64 = 0;
/// Color word offset (0 = black, 1 = red).
pub const NODE_COLOR: u64 = 1;
/// Left-child word offset.
pub const NODE_LEFT: u64 = 2;
/// Right-child word offset.
pub const NODE_RIGHT: u64 = 3;
/// Parent word offset.
pub const NODE_PARENT: u64 = 4;
/// Node size in words.
pub const NODE_WORDS: usize = 5;

/// Type tag for tree nodes in the typed reclamation API.
#[derive(Debug, Clone, Copy)]
pub struct RbNode;

impl NodeType for RbNode {
    const WORDS: usize = NODE_WORDS;
}

const BLACK: Word = 0;
const RED: Word = 1;

/// Anchor layout: `[writer lock, root]`.
const A_LOCK: u64 = 0;
const A_ROOT: u64 = 1;

/// Shadow-stack slots used by tree operations.
pub const RB_SLOTS: usize = 2;
/// Guard slots used by tree operations.
pub const RB_GUARDS: usize = 2;

/// The tree's declared guard requirement: the search's root-load guard
/// plus the hand-over-self descent guard.
pub const fn guard_requirement() -> GuardRequirement {
    GuardRequirement::new(RB_GUARDS)
}

const CUR: usize = 0;

/// The shared shape of one tree: anchor and NIL sentinel addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbShape {
    /// Two-word anchor: `[lock, root]`.
    pub anchor: Addr,
    /// The tree's NIL sentinel (black, key 0).
    pub nil: Addr,
}

impl RbShape {
    /// Allocates an empty tree (untimed; setup).
    pub fn new_untimed(heap: &Heap) -> Self {
        let anchor = heap.alloc_untimed(2).expect("heap too small for rb anchor");
        let nil = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for rb sentinel");
        heap.poke(nil, NODE_COLOR, BLACK);
        heap.poke(anchor, A_ROOT, nil.raw());
        Self { anchor, nil }
    }

    /// Collects keys in order (untimed; tests).
    pub fn collect_keys_untimed(&self, heap: &Heap) -> Vec<u64> {
        let mut out = Vec::new();
        self.inorder(
            heap,
            Addr::from_raw(heap.peek(self.anchor, A_ROOT)),
            &mut out,
        );
        out
    }

    fn inorder(&self, heap: &Heap, node: Addr, out: &mut Vec<u64>) {
        if node == self.nil {
            return;
        }
        self.inorder(heap, Addr::from_raw(heap.peek(node, NODE_LEFT)), out);
        out.push(heap.peek(node, NODE_KEY));
        self.inorder(heap, Addr::from_raw(heap.peek(node, NODE_RIGHT)), out);
    }

    /// Checks the red-black invariants: BST order, no red node with a red
    /// child, equal black height on every path, black root.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants_untimed(&self, heap: &Heap) {
        let root = Addr::from_raw(heap.peek(self.anchor, A_ROOT));
        if root != self.nil {
            assert_eq!(heap.peek(root, NODE_COLOR), BLACK, "root must be black");
        }
        self.check_node(heap, root, 0, u64::MAX);
    }

    /// Returns the black height of `node`'s subtree.
    fn check_node(&self, heap: &Heap, node: Addr, min: u64, max: u64) -> u64 {
        if node == self.nil {
            return 1;
        }
        assert!(heap.is_live(node), "reachable node {node:?} must be live");
        let key = heap.peek(node, NODE_KEY);
        assert!(min <= key && key <= max, "BST order violated at {node:?}");
        let color = heap.peek(node, NODE_COLOR);
        let left = Addr::from_raw(heap.peek(node, NODE_LEFT));
        let right = Addr::from_raw(heap.peek(node, NODE_RIGHT));
        if color == RED {
            for child in [left, right] {
                if child != self.nil {
                    assert_eq!(
                        heap.peek(child, NODE_COLOR),
                        BLACK,
                        "red-red violation under {node:?}"
                    );
                }
            }
        }
        let lh = self.check_node(heap, left, min, key.saturating_sub(1));
        let rh = self.check_node(heap, right, key + 1, max);
        assert_eq!(lh, rh, "black-height mismatch at {node:?}");
        lh + u64::from(color == BLACK)
    }
}

/// Body of `search(key)` — the paper's Algorithm 3: one comparison (one
/// basic block, one checkpoint) per tree level.
pub fn search_body(
    shape: RbShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut g_root: Guard = guards.guard();
        let mut g_cur: Guard = guards.guard();
        let cur = mem.local(CUR);
        let node = if cur == 0 {
            // SPLIT_START equivalent: load the root.
            Atomic::<RbNode>::root(shape.anchor, A_ROOT).load(&mut mem, &mut g_root)?
        } else {
            // The descent guard still announces `cur` from the previous
            // block's rotation (the shadow stack replays it on restart).
            g_cur.assume_protected(cur)
        };
        if node.addr() == shape.nil {
            return Ok(Step::Done(0));
        }
        let nkey = node.read(&mut mem, NODE_KEY)?;
        if nkey == key {
            return Ok(Step::Done(1));
        }
        let side = if key < nkey { NODE_LEFT } else { NODE_RIGHT };
        let node_addr = node.addr();
        // Hand-over-self: the guard protecting `node` rotates onto the
        // child it reads out of `node`.
        let child = g_cur.rotate_load::<RbNode>(&mut mem, node_addr, side)?;
        mem.set_local(CUR, child.word());
        Ok(Step::Continue)
    }
}

// ----------------------------------------------------------------------
// Writer-side helpers (run inside the single mutation block).
// ----------------------------------------------------------------------

/// The writer's view: the typed memory handle plus the [`Exclusive`]
/// witness minted after winning the anchor lock. Every plain node access
/// below names the witness, so its soundness traces to the one lock
/// acquisition; the anchor's own words (lock, root) go through [`Field`].
struct W<'m, 'c> {
    mem: Mem<'m, 'c>,
    excl: Exclusive<RbNode>,
    shape: RbShape,
}

impl W<'_, '_> {
    fn get(&mut self, n: Addr, off: u64) -> Result<Addr, Abort> {
        Ok(Addr::from_raw(self.excl.read(&mut self.mem, n, off)?))
    }

    fn set(&mut self, n: Addr, off: u64, v: Addr) -> Result<(), Abort> {
        self.excl.write(&mut self.mem, n, off, v.raw())
    }

    fn key(&mut self, n: Addr) -> Result<u64, Abort> {
        self.excl.read(&mut self.mem, n, NODE_KEY)
    }

    fn color(&mut self, n: Addr) -> Result<Word, Abort> {
        self.excl.read(&mut self.mem, n, NODE_COLOR)
    }

    fn set_color(&mut self, n: Addr, c: Word) -> Result<(), Abort> {
        self.excl.write(&mut self.mem, n, NODE_COLOR, c)
    }

    fn root(&mut self) -> Result<Addr, Abort> {
        Ok(Addr::from_raw(
            Field::root(self.shape.anchor, A_ROOT).read(&mut self.mem)?,
        ))
    }

    fn set_root(&mut self, n: Addr) -> Result<(), Abort> {
        Field::root(self.shape.anchor, A_ROOT).write(&mut self.mem, n.raw())
    }

    /// Releases the writer lock — the [`Exclusive`] witness must not be
    /// used past this store (`self` methods all borrow it, so dropping
    /// `W` right after is the enforcement in practice).
    fn unlock(&mut self) -> Result<(), Abort> {
        Field::root(self.shape.anchor, A_LOCK).write(&mut self.mem, 0)
    }

    /// Replaces `u` by `v` in `u`'s parent (or the root).
    fn transplant(&mut self, u: Addr, v: Addr) -> Result<(), Abort> {
        let p = self.get(u, NODE_PARENT)?;
        if p.is_null() {
            self.set_root(v)?;
        } else if self.get(p, NODE_LEFT)? == u {
            self.set(p, NODE_LEFT, v)?;
        } else {
            self.set(p, NODE_RIGHT, v)?;
        }
        self.set(v, NODE_PARENT, p)
    }

    fn rotate(&mut self, x: Addr, left: bool) -> Result<(), Abort> {
        let (near, far) = if left {
            (NODE_RIGHT, NODE_LEFT)
        } else {
            (NODE_LEFT, NODE_RIGHT)
        };
        let y = self.get(x, near)?;
        let beta = self.get(y, far)?;
        self.set(x, near, beta)?;
        if beta != self.shape.nil {
            self.set(beta, NODE_PARENT, x)?;
        }
        let p = self.get(x, NODE_PARENT)?;
        self.set(y, NODE_PARENT, p)?;
        if p.is_null() {
            self.set_root(y)?;
        } else if self.get(p, NODE_LEFT)? == x {
            self.set(p, NODE_LEFT, y)?;
        } else {
            self.set(p, NODE_RIGHT, y)?;
        }
        self.set(y, far, x)?;
        self.set(x, NODE_PARENT, y)
    }

    /// CLRS RB-INSERT-FIXUP.
    fn insert_fixup(&mut self, mut z: Addr) -> Result<(), Abort> {
        loop {
            let p = self.get(z, NODE_PARENT)?;
            if p.is_null() || self.color(p)? == BLACK {
                break;
            }
            let g = self.get(p, NODE_PARENT)?;
            let p_is_left = self.get(g, NODE_LEFT)? == p;
            let uncle = self.get(g, if p_is_left { NODE_RIGHT } else { NODE_LEFT })?;
            if uncle != self.shape.nil && self.color(uncle)? == RED {
                self.set_color(p, BLACK)?;
                self.set_color(uncle, BLACK)?;
                self.set_color(g, RED)?;
                z = g;
            } else {
                let z_inner = if p_is_left {
                    self.get(p, NODE_RIGHT)? == z
                } else {
                    self.get(p, NODE_LEFT)? == z
                };
                if z_inner {
                    z = p;
                    self.rotate(z, p_is_left)?;
                }
                let p2 = self.get(z, NODE_PARENT)?;
                let g2 = self.get(p2, NODE_PARENT)?;
                self.set_color(p2, BLACK)?;
                self.set_color(g2, RED)?;
                self.rotate(g2, !p_is_left)?;
            }
        }
        let root = self.root()?;
        self.set_color(root, BLACK)
    }

    /// CLRS RB-DELETE-FIXUP, starting at `x` (which may be the NIL
    /// sentinel; its parent field was set by the caller).
    fn delete_fixup(&mut self, mut x: Addr) -> Result<(), Abort> {
        loop {
            let root = self.root()?;
            if x == root || self.color(x)? == RED {
                break;
            }
            let p = self.get(x, NODE_PARENT)?;
            let x_is_left = self.get(p, NODE_LEFT)? == x;
            let (near, far) = if x_is_left {
                (NODE_LEFT, NODE_RIGHT)
            } else {
                (NODE_RIGHT, NODE_LEFT)
            };
            let mut w = self.get(p, far)?;
            if self.color(w)? == RED {
                self.set_color(w, BLACK)?;
                self.set_color(p, RED)?;
                self.rotate(p, x_is_left)?;
                w = self.get(p, far)?;
            }
            let w_near = self.get(w, near)?;
            let w_far = self.get(w, far)?;
            let near_black = w_near == self.shape.nil || self.color(w_near)? == BLACK;
            let far_black = w_far == self.shape.nil || self.color(w_far)? == BLACK;
            if near_black && far_black {
                self.set_color(w, RED)?;
                x = p;
            } else {
                if far_black {
                    if w_near != self.shape.nil {
                        self.set_color(w_near, BLACK)?;
                    }
                    self.set_color(w, RED)?;
                    self.rotate(w, !x_is_left)?;
                    w = self.get(p, far)?;
                }
                let pc = self.color(p)?;
                self.set_color(w, pc)?;
                self.set_color(p, BLACK)?;
                let w_far2 = self.get(w, far)?;
                if w_far2 != self.shape.nil {
                    self.set_color(w_far2, BLACK)?;
                }
                self.rotate(p, x_is_left)?;
                x = self.root()?;
            }
        }
        if x != self.shape.nil {
            self.set_color(x, BLACK)?;
        }
        Ok(())
    }
}

/// Body of `insert(key)`: 1 if inserted, 0 if present. The whole mutation
/// (descent, link, fixup) is one basic block under a writer lock.
pub fn insert_body(
    shape: RbShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        // Writer lock: buffered under StackTrack (conflict detection
        // arbitrates), immediate elsewhere (the block is atomic anyway).
        if Field::root(shape.anchor, A_LOCK)
            .cas(&mut mem, 0, 1)?
            .is_err()
        {
            return Ok(Step::Continue); // spin
        }
        let mut w = W {
            mem,
            excl: Exclusive::assume_exclusive(),
            shape,
        };

        // Standard BST descent.
        let mut parent = Addr(0);
        let mut cur = w.root()?;
        while cur != shape.nil {
            let ck = w.key(cur)?;
            if ck == key {
                w.unlock()?;
                return Ok(Step::Done(0));
            }
            parent = cur;
            cur = w.get(cur, if key < ck { NODE_LEFT } else { NODE_RIGHT })?;
        }

        let node = w.mem.alloc::<RbNode>();
        node.store(&mut w.mem, NODE_KEY, key)?;
        node.store(&mut w.mem, NODE_COLOR, RED)?;
        node.store(&mut w.mem, NODE_LEFT, shape.nil.raw())?;
        node.store(&mut w.mem, NODE_RIGHT, shape.nil.raw())?;
        node.store(&mut w.mem, NODE_PARENT, parent.raw())?;
        let node_addr = node.addr();
        if parent.is_null() {
            w.excl.publish(&mut w.mem, shape.anchor, A_ROOT, node)?;
        } else if key < w.key(parent)? {
            w.excl.publish(&mut w.mem, parent, NODE_LEFT, node)?;
        } else {
            w.excl.publish(&mut w.mem, parent, NODE_RIGHT, node)?;
        }
        w.insert_fixup(node_addr)?;
        w.unlock()?;
        Ok(Step::Done(1))
    }
}

/// Body of `delete(key)`: 1 if removed, 0 if absent. The physically
/// removed node is retired through the reclamation scheme.
pub fn delete_body(
    shape: RbShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        if Field::root(shape.anchor, A_LOCK)
            .cas(&mut mem, 0, 1)?
            .is_err()
        {
            return Ok(Step::Continue);
        }
        let mut w = W {
            mem,
            excl: Exclusive::assume_exclusive(),
            shape,
        };

        // Find the node.
        let mut z = w.root()?;
        while z != shape.nil {
            let ck = w.key(z)?;
            if ck == key {
                break;
            }
            z = w.get(z, if key < ck { NODE_LEFT } else { NODE_RIGHT })?;
        }
        if z == shape.nil {
            w.unlock()?;
            return Ok(Step::Done(0));
        }

        // CLRS RB-DELETE. `y` is the node physically removed.
        let z_left = w.get(z, NODE_LEFT)?;
        let z_right = w.get(z, NODE_RIGHT)?;
        let (y, x, y_color) = if z_left == shape.nil {
            (z, z_right, w.color(z)?)
        } else if z_right == shape.nil {
            (z, z_left, w.color(z)?)
        } else {
            // Successor: minimum of the right subtree.
            let mut y = z_right;
            loop {
                let l = w.get(y, NODE_LEFT)?;
                if l == shape.nil {
                    break;
                }
                y = l;
            }
            (y, w.get(y, NODE_RIGHT)?, w.color(y)?)
        };

        if y == z {
            // x's parent must be correct even when x is the sentinel.
            let p = w.get(z, NODE_PARENT)?;
            w.transplant(z, x)?;
            if x == shape.nil {
                w.set(x, NODE_PARENT, p)?;
            }
        } else {
            // Splice y out of its place, then put it where z was.
            let y_parent = w.get(y, NODE_PARENT)?;
            if y_parent == z {
                w.set(x, NODE_PARENT, y)?;
            } else {
                w.transplant(y, x)?;
                let zr = w.get(z, NODE_RIGHT)?;
                w.set(y, NODE_RIGHT, zr)?;
                w.set(zr, NODE_PARENT, y)?;
            }
            w.transplant(z, y)?;
            let zl = w.get(z, NODE_LEFT)?;
            w.set(y, NODE_LEFT, zl)?;
            w.set(zl, NODE_PARENT, y)?;
            let zc = w.color(z)?;
            w.set_color(y, zc)?;
        }
        if y_color == BLACK {
            w.delete_fixup(x)?;
        }
        // The node cut out of the tree is `z` when y == z, else... also z:
        // CLRS moves y into z's position, so z is the unlinked node. The
        // single writer performed that unlink under the lock it still
        // holds, which is exactly the `assume_unlinked` proof obligation.
        Unlinked::<RbNode>::assume_unlinked(z.raw()).retire(&mut w.mem)?;
        w.unlock()?;
        Ok(Step::Done(1))
    }
}

/// High-level tree handle.
#[derive(Debug)]
pub struct RbTree {
    shape: RbShape,
    heap: Arc<Heap>,
}

impl RbTree {
    /// Creates an empty tree on `heap`.
    pub fn new(heap: Arc<Heap>) -> Self {
        let shape = RbShape::new_untimed(&heap);
        Self { shape, heap }
    }

    /// The copyable shape.
    pub fn shape(&self) -> RbShape {
        self.shape
    }

    /// The heap this tree lives on.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Search through a scheme executor (Algorithm 3).
    pub fn search(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = search_body(self.shape, key);
        th.run_op(cpu, OP_SEARCH, RB_SLOTS, &mut body) == 1
    }

    /// Insert through a scheme executor.
    pub fn insert(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = insert_body(self.shape, key);
        th.run_op(cpu, OP_INSERT, RB_SLOTS, &mut body) == 1
    }

    /// Delete through a scheme executor.
    pub fn delete(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = delete_body(self.shape, key);
        th.run_op(cpu, OP_DELETE, RB_SLOTS, &mut body) == 1
    }

    /// Keys in order (untimed snapshot).
    pub fn collect_keys(&self) -> Vec<u64> {
        self.shape.collect_keys_untimed(&self.heap)
    }

    /// Red-black invariant check.
    pub fn check_invariants(&self) {
        self.shape.check_invariants_untimed(&self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn set_semantics_and_balance_under_every_scheme() {
        for scheme in Scheme::all() {
            if scheme == Scheme::Dta {
                continue; // DTA is list-only by design.
            }
            let (factory, heap) = all_scheme_factories(scheme, 1);
            let tree = RbTree::new(heap);
            let mut th = factory.thread(0);
            let mut cpu = test_cpu(0);

            // Insert a shuffled sequence; check balance along the way.
            let keys = [50u64, 20, 70, 10, 30, 60, 80, 5, 15, 25, 35, 1, 90, 85, 95];
            for &k in &keys {
                assert!(tree.insert(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
                tree.check_invariants();
            }
            assert!(!tree.insert(th.as_mut(), &mut cpu, 30), "{scheme:?} dup");
            for &k in &keys {
                assert!(tree.search(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            assert!(!tree.search(th.as_mut(), &mut cpu, 41), "{scheme:?}");

            // Delete half, checking balance after every removal.
            for &k in &[20u64, 70, 5, 95, 50, 30] {
                assert!(tree.delete(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
                tree.check_invariants();
                assert!(!tree.search(th.as_mut(), &mut cpu, k), "{scheme:?} {k}");
            }
            let mut remaining: Vec<u64> = keys
                .iter()
                .copied()
                .filter(|k| ![20, 70, 5, 95, 50, 30].contains(k))
                .collect();
            remaining.sort_unstable();
            assert_eq!(tree.collect_keys(), remaining, "{scheme:?}");
            th.teardown(&mut cpu);
        }
    }

    #[test]
    fn deleted_nodes_are_reclaimed() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let tree = RbTree::new(heap.clone());
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        let before = heap.stats().alloc.live_objects;
        for k in 1..=64u64 {
            assert!(tree.insert(th.as_mut(), &mut cpu, k));
        }
        for k in 1..=64u64 {
            assert!(tree.delete(th.as_mut(), &mut cpu, k));
            tree.check_invariants();
        }
        th.teardown(&mut cpu);
        assert_eq!(heap.stats().alloc.live_objects, before);
        assert_eq!(tree.collect_keys(), Vec::<u64>::new());
    }

    #[test]
    fn transactional_searches_are_serializable() {
        // A reader descends one node per block while a writer rotates the
        // tree under it; under StackTrack the reader's segments abort and
        // retry on conflict, so it never misses a key that is present
        // throughout.
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 2);
        let tree = RbTree::new(heap);
        let mut reader = factory.thread(0);
        let mut writer = factory.thread(1);
        let mut cpu_r = test_cpu(0);
        let mut cpu_w = test_cpu(1);

        for k in (10..=200u64).step_by(10) {
            assert!(tree.insert(writer.as_mut(), &mut cpu_w, k));
        }
        let shape = tree.shape();

        // Key 150 is present for the whole test; the writer churns other
        // keys to force rotations along the reader's path.
        let mut churn = 0u64;
        for round in 0..40 {
            let mut body = search_body(shape, 150);
            reader.begin_op(&mut cpu_r, OP_SEARCH, RB_SLOTS);
            let mut result = None;
            while result.is_none() {
                result = reader.step_op(&mut cpu_r, &mut body);
                // Interleave writer churn between reader blocks.
                churn += 1;
                let k = churn % 9 + 1; // keys 1..=9, near the root paths
                if round % 2 == 0 {
                    let mut ins = insert_body(shape, k);
                    st_reclaim::SchemeThread::run_op(
                        &mut *writer,
                        &mut cpu_w,
                        OP_INSERT,
                        RB_SLOTS,
                        &mut ins,
                    );
                } else {
                    let mut del = delete_body(shape, k);
                    st_reclaim::SchemeThread::run_op(
                        &mut *writer,
                        &mut cpu_w,
                        OP_DELETE,
                        RB_SLOTS,
                        &mut del,
                    );
                }
            }
            assert_eq!(result, Some(1), "round {round}: reader must find 150");
        }
        tree.check_invariants();
    }

    #[test]
    fn randomized_against_btreeset() {
        use std::collections::BTreeSet;
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let tree = RbTree::new(heap);
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);
        let mut oracle = BTreeSet::new();
        let mut rng = st_machine::Pcg32::new(99);

        for _ in 0..600 {
            let k = rng.below(100) + 1;
            match rng.below(3) {
                0 => assert_eq!(tree.insert(th.as_mut(), &mut cpu, k), oracle.insert(k)),
                1 => assert_eq!(tree.delete(th.as_mut(), &mut cpu, k), oracle.remove(&k)),
                _ => assert_eq!(tree.search(th.as_mut(), &mut cpu, k), oracle.contains(&k)),
            }
        }
        tree.check_invariants();
        assert_eq!(
            tree.collect_keys(),
            oracle.iter().copied().collect::<Vec<_>>()
        );
    }
}
