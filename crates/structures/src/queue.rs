//! The Michael-Scott lock-free queue (PODC 1996).
//!
//! A dummy-headed singly linked list with `head`/`tail` anchor words. Each
//! operation attempt is one basic block (the algorithm's retry loop maps
//! onto `Step::Continue`). Dequeue retires the old dummy — the node whose
//! address momentarily lives only in thread-private state, which is
//! exactly the reclamation race the paper's queue benchmark stresses.
//!
//! Values must be non-zero; `dequeue` returns 0 for "empty".
//!
//! Written against the typed reclamation API (`st_reclaim::mem`): the
//! dequeue's head-swing CAS is the `cas_unlink` that mints the old
//! dummy's `Unlinked` proof, and the anchor re-reads that validate a
//! snapshot are `load_word` validation reads — see docs/MEMORY_API.md.

use st_machine::Cpu;
use st_reclaim::mem::{Atomic, GuardPool, GuardRequirement, Mem, NodeType, Owned};
use st_reclaim::SchemeThread;
use st_simheap::{Addr, Heap, Word};
use st_simhtm::Abort;
use stacktrack::{OpMem, Step};
use std::sync::Arc;

/// Enqueue operation id.
pub const OP_ENQUEUE: u32 = 0;
/// Dequeue operation id.
pub const OP_DEQUEUE: u32 = 1;
/// Peek operation id (the benchmark's read-only operation).
pub const OP_PEEK: u32 = 2;

/// Value word offset within a node.
pub const NODE_VALUE: u64 = 0;
/// Next-pointer word offset within a node.
pub const NODE_NEXT: u64 = 1;
/// Node size in words.
pub const NODE_WORDS: usize = 2;

/// The queue's node layout: `[value, next]`.
#[derive(Debug, Clone, Copy)]
pub struct QueueNode;
impl NodeType for QueueNode {
    const WORDS: usize = NODE_WORDS;
}

/// Head anchor offset.
const A_HEAD: u64 = 0;
/// Tail anchor offset.
const A_TAIL: u64 = 1;

/// Shadow-stack slots used by queue operations.
pub const QUEUE_SLOTS: usize = 2;
/// Guard slots used by queue operations.
pub const QUEUE_GUARDS: usize = 3;

/// The queue's declared guard requirement: head, tail, and next guards.
pub const fn guard_requirement() -> GuardRequirement {
    GuardRequirement::new(QUEUE_GUARDS)
}

const NODE: usize = 1;

/// The shared shape of one queue: its anchor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueShape {
    /// Two-word anchor: `[head, tail]`.
    pub anchor: Addr,
}

impl QueueShape {
    /// Allocates an empty queue (untimed; structure setup).
    pub fn new_untimed(heap: &Heap) -> Self {
        let anchor = heap
            .alloc_untimed(2)
            .expect("heap too small for queue anchor");
        let dummy = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for queue dummy");
        heap.poke(anchor, A_HEAD, dummy.raw());
        heap.poke(anchor, A_TAIL, dummy.raw());
        Self { anchor }
    }

    /// Enqueues directly, bypassing the protocol (initial population).
    pub fn enqueue_untimed(&self, heap: &Heap, value: Word) {
        assert_ne!(value, 0, "queue values must be non-zero");
        let node = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for initial population");
        heap.poke(node, NODE_VALUE, value);
        let tail = Addr::from_raw(heap.peek(self.anchor, A_TAIL));
        heap.poke(tail, NODE_NEXT, node.raw());
        heap.poke(self.anchor, A_TAIL, node.raw());
    }

    /// Snapshot of queued values, head to tail (untimed; tests).
    pub fn collect_values_untimed(&self, heap: &Heap) -> Vec<Word> {
        let mut out = Vec::new();
        let dummy = Addr::from_raw(heap.peek(self.anchor, A_HEAD));
        let mut cur = heap.peek(dummy, NODE_NEXT);
        while cur != 0 {
            let node = Addr::from_raw(cur);
            out.push(heap.peek(node, NODE_VALUE));
            cur = heap.peek(node, NODE_NEXT);
        }
        out
    }
}

/// Body of `enqueue(value)`; always returns 1.
pub fn enqueue_body(
    shape: QueueShape,
    value: Word,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert_ne!(value, 0, "queue values must be non-zero");
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut _g_head = guards.guard();
        let mut g_tail = guards.guard();
        let mut g_next = guards.guard();
        let a_tail = Atomic::<QueueNode>::root(shape.anchor, A_TAIL);

        // Allocate once; keep the node across retries in a traced local.
        let node_word = match mem.local(NODE) {
            0 => {
                let node = mem.alloc::<QueueNode>();
                node.store(&mut mem, NODE_VALUE, value)?;
                let word = node.stash();
                mem.set_local(NODE, word);
                word
            }
            raw => raw,
        };

        let tail = a_tail.load(&mut mem, &mut g_tail)?;
        let next = tail
            .link::<QueueNode>(NODE_NEXT)
            .load(&mut mem, &mut g_next)?;
        if a_tail.load_word(&mut mem)? != tail.addr_word() {
            return Ok(Step::Continue);
        }
        if next.is_null() {
            let node = Owned::unstash(node_word).expect("node stashed above");
            match tail
                .link::<QueueNode>(NODE_NEXT)
                .cas_publish(&mut mem, 0, node)?
            {
                Ok(()) => {
                    // Swing the tail (failure means someone helped).
                    let _ = a_tail.cas_word(&mut mem, tail.addr_word(), node_word)?;
                    Ok(Step::Done(1))
                }
                Err((lost, _actual)) => {
                    // Still unpublished; it stays stashed for the retry.
                    let _ = lost.stash();
                    Ok(Step::Continue)
                }
            }
        } else {
            // Tail lags: help advance it.
            let _ = a_tail.cas_word(&mut mem, tail.addr_word(), next.word())?;
            Ok(Step::Continue)
        }
    }
}

/// Body of `dequeue()`: the dequeued value, or 0 when empty.
pub fn dequeue_body(
    shape: QueueShape,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut g_head = guards.guard();
        let mut _g_tail = guards.guard();
        let mut g_next = guards.guard();
        let a_head = Atomic::<QueueNode>::root(shape.anchor, A_HEAD);
        let a_tail = Atomic::<QueueNode>::root(shape.anchor, A_TAIL);

        let head = a_head.load(&mut mem, &mut g_head)?;
        let tail = a_tail.load_word(&mut mem)?;
        let next = head
            .link::<QueueNode>(NODE_NEXT)
            .load(&mut mem, &mut g_next)?;
        if a_head.load_word(&mut mem)? != head.addr_word() {
            return Ok(Step::Continue);
        }
        if head.addr_word() == tail {
            if next.is_null() {
                return Ok(Step::Done(0));
            }
            // Tail lags behind a half-finished enqueue: help.
            let _ = a_tail.cas_word(&mut mem, tail, next.word())?;
            return Ok(Step::Continue);
        }
        let value = next.read(&mut mem, NODE_VALUE)?;
        match a_head.cas_unlink(&mut mem, head, next.word())? {
            Ok(unlinked) => {
                // The old dummy is ours to reclaim.
                unlinked.retire(&mut mem)?;
                Ok(Step::Done(value))
            }
            Err(_actual) => Ok(Step::Continue),
        }
    }
}

/// Body of `peek()`: the front value without removing it (0 when empty).
pub fn peek_body(
    shape: QueueShape,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    move |m, cpu| {
        let mut mem = Mem::new(m, cpu);
        let mut guards = GuardPool::new(guard_requirement());
        let mut g_head = guards.guard();
        let mut _g_tail = guards.guard();
        let mut g_next = guards.guard();
        let a_head = Atomic::<QueueNode>::root(shape.anchor, A_HEAD);

        let head = a_head.load(&mut mem, &mut g_head)?;
        let next = head
            .link::<QueueNode>(NODE_NEXT)
            .load(&mut mem, &mut g_next)?;
        if a_head.load_word(&mut mem)? != head.addr_word() {
            return Ok(Step::Continue);
        }
        if next.is_null() {
            return Ok(Step::Done(0));
        }
        let value = next.read(&mut mem, NODE_VALUE)?;
        Ok(Step::Done(value))
    }
}

/// High-level queue handle.
#[derive(Debug)]
pub struct MsQueue {
    shape: QueueShape,
    heap: Arc<Heap>,
}

impl MsQueue {
    /// Creates an empty queue on `heap`.
    pub fn new(heap: Arc<Heap>) -> Self {
        let shape = QueueShape::new_untimed(&heap);
        Self { shape, heap }
    }

    /// The copyable shape.
    pub fn shape(&self) -> QueueShape {
        self.shape
    }

    /// The heap this queue lives on.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Enqueue through a scheme executor.
    pub fn enqueue(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, value: Word) {
        let mut body = enqueue_body(self.shape, value);
        th.run_op(cpu, OP_ENQUEUE, QUEUE_SLOTS, &mut body);
    }

    /// Dequeue through a scheme executor; `None` when empty.
    pub fn dequeue(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu) -> Option<Word> {
        let mut body = dequeue_body(self.shape);
        match th.run_op(cpu, OP_DEQUEUE, QUEUE_SLOTS, &mut body) {
            0 => None,
            v => Some(v),
        }
    }

    /// Peek through a scheme executor; `None` when empty.
    pub fn peek(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu) -> Option<Word> {
        let mut body = peek_body(self.shape);
        match th.run_op(cpu, OP_PEEK, QUEUE_SLOTS, &mut body) {
            0 => None,
            v => Some(v),
        }
    }

    /// Snapshot of queued values (untimed; tests).
    pub fn collect_values(&self) -> Vec<Word> {
        self.shape.collect_values_untimed(&self.heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn fifo_order_under_every_scheme() {
        for scheme in Scheme::all() {
            let (factory, heap) = all_scheme_factories(scheme, 1);
            let q = MsQueue::new(heap);
            let mut th = factory.thread(0);
            let mut cpu = test_cpu(0);

            assert_eq!(q.dequeue(th.as_mut(), &mut cpu), None, "{scheme:?}");
            for v in 1..=20u64 {
                q.enqueue(th.as_mut(), &mut cpu, v);
            }
            assert_eq!(q.peek(th.as_mut(), &mut cpu), Some(1), "{scheme:?}");
            for v in 1..=20u64 {
                assert_eq!(q.dequeue(th.as_mut(), &mut cpu), Some(v), "{scheme:?}");
            }
            assert_eq!(q.dequeue(th.as_mut(), &mut cpu), None, "{scheme:?}");
            th.teardown(&mut cpu);
        }
    }

    #[test]
    fn dequeued_dummies_are_reclaimed_by_stacktrack() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let q = MsQueue::new(heap.clone());
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        let live_before = heap.stats().alloc.live_objects;
        for round in 0..40u64 {
            q.enqueue(th.as_mut(), &mut cpu, round + 1);
            assert_eq!(q.dequeue(th.as_mut(), &mut cpu), Some(round + 1));
        }
        th.teardown(&mut cpu);
        // One dummy is always part of the queue; allocation count returns
        // to the baseline because dummies rotate.
        assert_eq!(heap.stats().alloc.live_objects, live_before);
    }

    #[test]
    fn interleaved_producer_consumer() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 2);
        let q = MsQueue::new(heap);
        let mut producer = factory.thread(0);
        let mut consumer = factory.thread(1);
        let mut cpu_p = test_cpu(0);
        let mut cpu_c = test_cpu(1);

        let shape = q.shape();
        let mut produced = 0u64;
        let mut consumed = Vec::new();
        while consumed.len() < 50 {
            if produced < 50 {
                produced += 1;
                let mut body = enqueue_body(shape, produced);
                consumer_step_all(&mut *producer, &mut cpu_p, &mut body);
            }
            let mut deq = dequeue_body(shape);
            let got = consumer_step_all(&mut *consumer, &mut cpu_c, &mut deq);
            if got != 0 {
                consumed.push(got);
            }
        }
        assert_eq!(consumed, (1..=50).collect::<Vec<_>>(), "FIFO preserved");
    }

    fn consumer_step_all(
        th: &mut dyn SchemeThread,
        cpu: &mut Cpu,
        body: &mut stacktrack::OpBody<'_>,
    ) -> u64 {
        th.run_op(cpu, 0, QUEUE_SLOTS, body)
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn empty_queue_edges() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let q = MsQueue::new(heap);
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        assert_eq!(q.peek(th.as_mut(), &mut cpu), None);
        assert_eq!(q.dequeue(th.as_mut(), &mut cpu), None);
        q.enqueue(th.as_mut(), &mut cpu, 9);
        assert_eq!(q.peek(th.as_mut(), &mut cpu), Some(9));
        assert_eq!(q.peek(th.as_mut(), &mut cpu), Some(9), "peek is read-only");
        assert_eq!(q.dequeue(th.as_mut(), &mut cpu), Some(9));
        assert_eq!(q.dequeue(th.as_mut(), &mut cpu), None, "empty again");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_values_rejected() {
        let _ = enqueue_body(
            QueueShape {
                anchor: Addr::from_index(1),
            },
            0,
        );
    }

    #[test]
    fn untimed_population_preserves_order() {
        let (_, heap) = all_scheme_factories(Scheme::None, 1);
        let q = QueueShape::new_untimed(&heap);
        for v in [3u64, 1, 4, 1, 5] {
            q.enqueue_untimed(&heap, v);
        }
        assert_eq!(q.collect_values_untimed(&heap), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn interleaved_half_finished_enqueue_is_helped() {
        // Stop a producer right after it linked its node but before it
        // swung the tail; a dequeuer must help and still see the value.
        let (factory, heap) = all_scheme_factories(Scheme::Epoch, 2);
        let q = MsQueue::new(heap);
        let mut producer = factory.thread(0);
        let mut consumer = factory.thread(1);
        let mut cpu_p = test_cpu(0);
        let mut cpu_c = test_cpu(1);
        let shape = q.shape();

        // Drive the producer exactly one block: under Epoch every MS-queue
        // attempt is a single block, so one step completes the enqueue but
        // may leave the tail lagging only if we stop mid-attempt — instead
        // verify the help path via a lagging tail built by hand.
        q.enqueue(producer.as_mut(), &mut cpu_p, 7);
        let dummy = st_simheap::Addr::from_raw(q.heap().peek(shape.anchor, 0));
        let first = st_simheap::Addr::from_raw(q.heap().peek(dummy, NODE_NEXT));
        // Manufacture a lagging tail: point it back at the dummy.
        q.heap().poke(shape.anchor, 1, dummy.raw());
        let _ = first;

        assert_eq!(
            q.dequeue(consumer.as_mut(), &mut cpu_c),
            Some(7),
            "dequeuer must help advance the lagging tail"
        );
    }
}
