//! The Harris lock-free linked list (Harris, DISC 2001), with Michael's
//! hazard-compatible `find` (PODC 2002): traversals physically unlink
//! marked nodes they encounter, and the thread whose compare-and-swap
//! performs the unlink is the unique retirer of the node.
//!
//! Node layout (2 words): `[key, next]`, with the deletion mark in bit 0
//! of `next`. The list is bracketed by sentinels with keys `0` and
//! `u64::MAX`.

use st_machine::Cpu;
use st_reclaim::SchemeThread;
use st_simheap::{Addr, Heap, TaggedPtr, Word};
use st_simhtm::Abort;
use stacktrack::{OpMem, Step};
use std::sync::Arc;

/// Operation ids (index the split predictor).
pub const OP_CONTAINS: u32 = 0;
/// Insert operation id.
pub const OP_INSERT: u32 = 1;
/// Delete operation id.
pub const OP_DELETE: u32 = 2;

/// Key word offset within a node.
pub const NODE_KEY: u64 = 0;
/// Next-pointer word offset within a node.
pub const NODE_NEXT: u64 = 1;
/// Node size in words.
pub const NODE_WORDS: usize = 2;

/// Shadow-stack slots used by list operations.
pub const LIST_SLOTS: usize = 7;
/// Guard slots used by list operations.
pub const LIST_GUARDS: usize = 3;

// Local slot assignment.
const PHASE: usize = 0;
const PREV: usize = 1;
const CUR: usize = 2;
const NEXT: usize = 3;
const NODE: usize = 4;
const CKEY: usize = 5;
const CONT: usize = 6;

// Guard assignment (rotated with `protect`).
const G_PREV: usize = 0;
const G_CUR: usize = 1;
const G_NEXT: usize = 2;

// Phases.
const P_FIND_START: Word = 0;
const P_FIND_STEP: Word = 1;
const P_INSERT: Word = 2;
const P_DELETE_MARK: Word = 3;
const P_DELETE_UNLINK: Word = 4;
const P_DONE_OK: Word = 5;
const P_FIND_ADVANCE: Word = 6;

/// The shared shape of one Harris list: its sentinel addresses.
///
/// `Copy` so operation bodies can capture it by value and stay `'static`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListShape {
    /// Head sentinel (key 0).
    pub head: Addr,
    /// Tail sentinel (key `u64::MAX`).
    pub tail: Addr,
}

impl ListShape {
    /// Allocates an empty list (untimed; structure setup).
    pub fn new_untimed(heap: &Heap) -> Self {
        let head = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for list sentinels");
        let tail = heap
            .alloc_untimed(NODE_WORDS)
            .expect("heap too small for list sentinels");
        heap.poke(head, NODE_KEY, 0);
        heap.poke(tail, NODE_KEY, u64::MAX);
        heap.poke(head, NODE_NEXT, tail.raw());
        heap.poke(tail, NODE_NEXT, 0);
        Self { head, tail }
    }

    /// Inserts `key` directly, bypassing the concurrency protocol
    /// (untimed; initial population before the measured run).
    pub fn insert_untimed(&self, heap: &Heap, key: u64) -> bool {
        assert!(key > 0 && key < u64::MAX, "key range");
        let mut prev = self.head;
        let mut cur = Addr::from_raw(heap.peek(prev, NODE_NEXT));
        loop {
            let ckey = heap.peek(cur, NODE_KEY);
            if ckey == key {
                return false;
            }
            if ckey > key {
                let node = heap
                    .alloc_untimed(NODE_WORDS)
                    .expect("heap too small for initial population");
                heap.poke(node, NODE_KEY, key);
                heap.poke(node, NODE_NEXT, cur.raw());
                heap.poke(prev, NODE_NEXT, node.raw());
                return true;
            }
            prev = cur;
            cur = Addr::from_raw(heap.peek(cur, NODE_NEXT));
        }
    }

    /// Reads the current key set without charging time (tests/validation).
    /// Marked (logically deleted) nodes are excluded.
    pub fn collect_keys_untimed(&self, heap: &Heap) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = TaggedPtr::from_word(heap.peek(self.head, NODE_NEXT));
        while !cur.is_null() {
            let addr = cur.addr();
            if addr == self.tail {
                break;
            }
            let next = TaggedPtr::from_word(heap.peek(addr, NODE_NEXT));
            if !next.marked() {
                keys.push(heap.peek(addr, NODE_KEY));
            }
            cur = next;
        }
        keys
    }

    /// Checks structural invariants (strictly sorted, ends at the tail).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants_untimed(&self, heap: &Heap) {
        let mut last = 0;
        let mut cur = TaggedPtr::from_word(heap.peek(self.head, NODE_NEXT));
        loop {
            assert!(!cur.is_null(), "chain must end at the tail sentinel");
            let addr = cur.addr();
            if addr == self.tail {
                return;
            }
            assert!(heap.is_live(addr), "reachable node {addr:?} must be live");
            let key = heap.peek(addr, NODE_KEY);
            let next = TaggedPtr::from_word(heap.peek(addr, NODE_NEXT));
            // Order holds across marked nodes too; equal keys only as a
            // marked node followed by its unmarked replacement.
            assert!(
                key > last || (key == last && !next.marked()),
                "key {key} out of order after {last}"
            );
            last = key;
            cur = next;
        }
    }
}

/// One step of Michael's `find`: leaves `PREV`/`CUR`/`NEXT`/`CKEY` locals
/// describing the first unmarked node with key >= `key`, then jumps to the
/// continuation phase stored in `CONT`. Returns the `Step` for this block.
fn find_step(shape: ListShape, key: u64, m: &mut dyn OpMem, cpu: &mut Cpu) -> Result<Step, Abort> {
    let phase = m.get_local(cpu, PHASE);
    if phase == P_FIND_START {
        let head = shape.head;
        let cur = m.load_ptr(cpu, head, NODE_NEXT, G_CUR)?;
        // The head sentinel is never deleted, so its next is unmarked.
        m.protect(cpu, G_PREV, head.raw());
        m.set_local(cpu, PREV, head.raw());
        m.set_local(cpu, CUR, cur);
        m.set_local(cpu, PHASE, P_FIND_STEP);
        return Ok(Step::Continue);
    }
    if phase == P_FIND_ADVANCE {
        // Advance: prev <- cur, cur <- next (guards rotate in the same
        // order). The shuffle runs in its own block, like the compiled
        // code it models: the pointer load is one instruction, the
        // register/stack moves are later ones, and a segment boundary may
        // fall in between. A commit here republishes the frame with `cur`
        // shifted into a lower (possibly already-scanned) slot without
        // touching any heap word a concurrent reclaimer wrote — the
        // torn-snapshot window the scan's consistency re-read rejects.
        let cur = m.get_local(cpu, CUR);
        let next = TaggedPtr::from_word(m.get_local(cpu, NEXT));
        m.protect(cpu, G_PREV, cur);
        m.protect(cpu, G_CUR, next.addr().raw());
        m.set_local(cpu, PREV, cur);
        m.set_local(cpu, CUR, next.addr().raw());
        m.set_local(cpu, PHASE, P_FIND_STEP);
        return Ok(Step::Continue);
    }
    debug_assert_eq!(phase, P_FIND_STEP);

    let prev = Addr::from_raw(m.get_local(cpu, PREV));
    let cur = Addr::from_raw(m.get_local(cpu, CUR));
    let ckey = m.load(cpu, cur, NODE_KEY)?;
    let next = TaggedPtr::from_word(m.load_ptr(cpu, cur, NODE_NEXT, G_NEXT)?);

    if next.marked() {
        // `cur` is logically deleted: help unlink it. The winner of this
        // CAS is the unique retirer.
        match m.cas(cpu, prev, NODE_NEXT, cur.raw(), next.addr().raw())? {
            Ok(_) => {
                m.retire(cpu, cur)?;
                m.protect(cpu, G_CUR, next.addr().raw());
                m.set_local(cpu, CUR, next.addr().raw());
            }
            Err(_) => {
                // prev moved under us: restart the search.
                m.set_local(cpu, PHASE, P_FIND_START);
            }
        }
        return Ok(Step::Continue);
    }

    if ckey >= key {
        m.set_local(cpu, NEXT, next.word());
        m.set_local(cpu, CKEY, ckey);
        let cont = m.get_local(cpu, CONT);
        m.set_local(cpu, PHASE, cont);
        return Ok(Step::Continue);
    }

    // Not found yet: stash the successor and advance in the next block.
    // (`next.addr` stays guarded by G_NEXT across the boundary, so the
    // split is hazard-safe: every retained pointer keeps a guard.)
    m.set_local(cpu, NEXT, next.word());
    m.set_local(cpu, PHASE, P_FIND_ADVANCE);
    Ok(Step::Continue)
}

/// Body of `contains(key)`.
///
/// Uses the same helping `find` as mutators (Michael's variant), so every
/// traversal is hazard-safe under every scheme.
pub fn contains_body(
    shape: ListShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let phase = m.get_local(cpu, PHASE);
        match phase {
            P_FIND_START | P_FIND_STEP | P_FIND_ADVANCE => {
                if phase == P_FIND_START {
                    m.set_local(cpu, CONT, P_DONE_OK);
                }
                find_step(shape, key, m, cpu)
            }
            P_DONE_OK => {
                let found = m.get_local(cpu, CKEY) == key;
                Ok(Step::Done(u64::from(found)))
            }
            other => unreachable!("contains phase {other}"),
        }
    }
}

/// Body of `insert(key)`: returns 1 if the key was inserted, 0 if present.
pub fn insert_body(
    shape: ListShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let phase = m.get_local(cpu, PHASE);
        match phase {
            P_FIND_START | P_FIND_STEP | P_FIND_ADVANCE => {
                if phase == P_FIND_START {
                    m.set_local(cpu, CONT, P_INSERT);
                }
                find_step(shape, key, m, cpu)
            }
            P_INSERT => {
                if m.get_local(cpu, CKEY) == key {
                    // Already present; release a node kept from a failed
                    // attempt (never published, so retire is safe).
                    let node = m.get_local(cpu, NODE);
                    if node != 0 {
                        m.retire(cpu, Addr::from_raw(node))?;
                        m.set_local(cpu, NODE, 0);
                    }
                    return Ok(Step::Done(0));
                }
                let prev = Addr::from_raw(m.get_local(cpu, PREV));
                let cur = m.get_local(cpu, CUR);
                let node = match m.get_local(cpu, NODE) {
                    0 => {
                        let node = m.alloc(cpu, NODE_WORDS);
                        m.store(cpu, node, NODE_KEY, key)?;
                        m.set_local(cpu, NODE, node.raw());
                        node
                    }
                    raw => Addr::from_raw(raw),
                };
                m.store(cpu, node, NODE_NEXT, cur)?;
                match m.cas(cpu, prev, NODE_NEXT, cur, node.raw())? {
                    Ok(_) => Ok(Step::Done(1)),
                    Err(_) => {
                        // Lost the race; search again, keeping the node.
                        m.set_local(cpu, PHASE, P_FIND_START);
                        Ok(Step::Continue)
                    }
                }
            }
            other => unreachable!("insert phase {other}"),
        }
    }
}

/// Body of `delete(key)`: returns 1 if this thread removed the key.
pub fn delete_body(
    shape: ListShape,
    key: u64,
) -> impl FnMut(&mut dyn OpMem, &mut Cpu) -> Result<Step, Abort> + Send + 'static {
    assert!(key > 0 && key < u64::MAX, "key range");
    move |m, cpu| {
        let phase = m.get_local(cpu, PHASE);
        match phase {
            P_FIND_START | P_FIND_STEP | P_FIND_ADVANCE => {
                if phase == P_FIND_START && m.get_local(cpu, CONT) == 0 {
                    m.set_local(cpu, CONT, P_DELETE_MARK);
                }
                find_step(shape, key, m, cpu)
            }
            P_DELETE_MARK => {
                if m.get_local(cpu, CKEY) != key {
                    return Ok(Step::Done(0));
                }
                let cur = Addr::from_raw(m.get_local(cpu, CUR));
                let next = TaggedPtr::from_word(m.get_local(cpu, NEXT));
                debug_assert!(!next.marked());
                match m.cas(
                    cpu,
                    cur,
                    NODE_NEXT,
                    next.word(),
                    next.with_mark(true).word(),
                )? {
                    Ok(_) => {
                        m.set_local(cpu, PHASE, P_DELETE_UNLINK);
                        Ok(Step::Continue)
                    }
                    Err(_) => {
                        // Someone moved `cur.next` (insert after cur, or a
                        // competing delete): search again.
                        m.set_local(cpu, PHASE, P_FIND_START);
                        Ok(Step::Continue)
                    }
                }
            }
            P_DELETE_UNLINK => {
                let prev = Addr::from_raw(m.get_local(cpu, PREV));
                let cur = Addr::from_raw(m.get_local(cpu, CUR));
                let next = TaggedPtr::from_word(m.get_local(cpu, NEXT));
                match m.cas(cpu, prev, NODE_NEXT, cur.raw(), next.addr().raw())? {
                    Ok(_) => {
                        m.retire(cpu, cur)?;
                        Ok(Step::Done(1))
                    }
                    Err(_) => {
                        // Let the helping find unlink it; rerun the search
                        // purely for physical cleanup, then report success.
                        m.set_local(cpu, CONT, P_DONE_OK);
                        m.set_local(cpu, PHASE, P_FIND_START);
                        Ok(Step::Continue)
                    }
                }
            }
            P_DONE_OK => Ok(Step::Done(1)),
            other => unreachable!("delete phase {other}"),
        }
    }
}

/// High-level handle bundling the shape with convenience methods.
#[derive(Debug)]
pub struct LockFreeList {
    shape: ListShape,
    heap: Arc<Heap>,
}

impl LockFreeList {
    /// Creates an empty list on `heap`.
    pub fn new(heap: Arc<Heap>) -> Self {
        let shape = ListShape::new_untimed(&heap);
        Self { shape, heap }
    }

    /// The copyable shape (for building `'static` operation bodies).
    pub fn shape(&self) -> ListShape {
        self.shape
    }

    /// The heap this list lives on.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Membership test through a scheme executor.
    pub fn contains(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = contains_body(self.shape, key);
        th.run_op(cpu, OP_CONTAINS, LIST_SLOTS, &mut body) == 1
    }

    /// Insert through a scheme executor.
    pub fn insert(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = insert_body(self.shape, key);
        th.run_op(cpu, OP_INSERT, LIST_SLOTS, &mut body) == 1
    }

    /// Delete through a scheme executor.
    pub fn delete(&self, th: &mut dyn SchemeThread, cpu: &mut Cpu, key: u64) -> bool {
        let mut body = delete_body(self.shape, key);
        th.run_op(cpu, OP_DELETE, LIST_SLOTS, &mut body) == 1
    }

    /// Current key set (untimed snapshot).
    pub fn collect_keys(&self) -> Vec<u64> {
        self.shape.collect_keys_untimed(&self.heap)
    }

    /// Structural invariant check.
    pub fn check_invariants(&self) {
        self.shape.check_invariants_untimed(&self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_scheme_factories, scheme_env, test_cpu};
    use st_reclaim::Scheme;

    #[test]
    fn untimed_population_and_snapshot() {
        let (heap, _) = scheme_env();
        let shape = ListShape::new_untimed(&heap);
        for k in [5u64, 1, 9, 3] {
            assert!(shape.insert_untimed(&heap, k));
        }
        assert!(!shape.insert_untimed(&heap, 5), "duplicate rejected");
        assert_eq!(shape.collect_keys_untimed(&heap), vec![1, 3, 5, 9]);
        shape.check_invariants_untimed(&heap);
    }

    #[test]
    fn set_semantics_under_every_scheme() {
        for scheme in Scheme::all() {
            let (factory, heap) = all_scheme_factories(scheme, 1);
            let list = LockFreeList::new(heap);
            let mut th = factory.thread(0);
            let mut cpu = test_cpu(0);

            assert!(!list.contains(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(list.insert(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(!list.insert(th.as_mut(), &mut cpu, 7), "{scheme:?} dup");
            assert!(list.contains(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(list.insert(th.as_mut(), &mut cpu, 3), "{scheme:?}");
            assert!(list.insert(th.as_mut(), &mut cpu, 11), "{scheme:?}");
            assert_eq!(list.collect_keys(), vec![3, 7, 11], "{scheme:?}");
            assert!(list.delete(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert!(!list.delete(th.as_mut(), &mut cpu, 7), "{scheme:?} gone");
            assert!(!list.contains(th.as_mut(), &mut cpu, 7), "{scheme:?}");
            assert_eq!(list.collect_keys(), vec![3, 11], "{scheme:?}");
            list.check_invariants();
            th.teardown(&mut cpu);
        }
    }

    #[test]
    fn deleted_nodes_are_reclaimed_by_stacktrack() {
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 1);
        let list = LockFreeList::new(heap.clone());
        let mut th = factory.thread(0);
        let mut cpu = test_cpu(0);

        let live_before = heap.stats().alloc.live_objects;
        for k in 1..=50u64 {
            assert!(list.insert(th.as_mut(), &mut cpu, k));
        }
        for k in 1..=50u64 {
            assert!(list.delete(th.as_mut(), &mut cpu, k));
        }
        th.teardown(&mut cpu);
        assert_eq!(
            heap.stats().alloc.live_objects,
            live_before,
            "all 50 nodes must be reclaimed"
        );
        assert_eq!(list.collect_keys(), Vec::<u64>::new());
    }

    #[test]
    fn interleaved_mutators_keep_the_list_sound() {
        // Two threads stepping operation-by-operation through the same
        // keys under StackTrack; determinism comes from manual stepping.
        let (factory, heap) = all_scheme_factories(Scheme::StackTrack, 2);
        let list = LockFreeList::new(heap);
        let mut a = factory.thread(0);
        let mut b = factory.thread(1);
        let mut cpu_a = test_cpu(0);
        let mut cpu_b = test_cpu(1);

        let shape = list.shape();
        for round in 0..30u64 {
            let ka = round % 10 + 1;
            let kb = round % 7 + 1;
            let mut body_a = insert_body(shape, ka);
            let mut body_b = delete_body(shape, kb);
            while a.idle_work_pending() {
                a.step_idle(&mut cpu_a);
            }
            while b.idle_work_pending() {
                b.step_idle(&mut cpu_b);
            }
            a.begin_op(&mut cpu_a, OP_INSERT, LIST_SLOTS);
            b.begin_op(&mut cpu_b, OP_DELETE, LIST_SLOTS);
            let mut done_a = false;
            let mut done_b = false;
            while !done_a || !done_b {
                if !done_a {
                    done_a = a.step_op(&mut cpu_a, &mut body_a).is_some();
                }
                if !done_b {
                    done_b = b.step_op(&mut cpu_b, &mut body_b).is_some();
                }
            }
            list.check_invariants();
        }
    }
}
